#!/usr/bin/env python
"""Compare every controller scheme on a workload of your choice.

Reproduces one column of Fig. 9 / Fig. 12 and prints the normalized bars.

Run:  python examples/compare_schemes.py [workload]
      (default workload: x264; any evaluation program or mix name works)
"""

import sys

from repro.experiments import (
    COORDINATED_HEURISTIC,
    SCHEMES,
    DesignContext,
    normalize_to,
    run_workload,
)
from repro.experiments.report import render_bars


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "x264"
    print(f"Designing controllers and running {workload!r} under "
          f"{len(SCHEMES)} schemes...")
    context = DesignContext.create(samples_per_program=140)
    results = {}
    for scheme in SCHEMES:
        metrics = run_workload(scheme, workload, context)
        results[scheme] = metrics
        print(f"  {metrics.summary()}")
    print()
    norm = normalize_to(results, COORDINATED_HEURISTIC, "exd")
    print(render_bars(list(norm), list(norm.values()),
                      title=f"Normalized ExD on {workload} (lower is better)"))


if __name__ == "__main__":
    main()
