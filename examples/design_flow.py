#!/usr/bin/env python
"""The Fig. 3 design flow, step by step, with two independent "teams".

Each team declares its layer (Tables II/III), the teams exchange interface
metadata, each identifies its own model from its own training campaign,
synthesizes an SSV controller through D-K iteration, and the results are
validated — including the paper's min(s) robustness interpretation.

Run:  python examples/design_flow.py
"""

from repro.board import default_xu3_spec
from repro.core import (
    characterize_board,
    design_layer,
    hardware_layer_spec,
    software_layer_spec,
)
from repro.signals import exchange_interfaces


def main():
    board = default_xu3_spec()

    # --- Step 1: each team declares its controller -----------------------
    hw_spec = hardware_layer_spec(board)
    sw_spec = software_layer_spec(board)
    print(hw_spec.describe())
    print()
    print(sw_spec.describe())

    # --- Step 2: the interface hand-shake ---------------------------------
    for_hw, for_sw, common = exchange_interfaces(
        hw_spec.interface_record(), sw_spec.interface_record()
    )
    print()
    print("Interface exchange:")
    print(f"  hardware imports {len(for_hw)} signals from software")
    print(f"  software imports {len(for_sw)} signals from hardware")
    print(f"  outputs common to both layers: {sorted(common) or 'none'}")

    # --- Step 3: characterization (each team runs the training programs) --
    print()
    print("Running the training campaign (six programs, two campaigns)...")
    characterization = characterize_board(board, samples_per_program=140)
    print("Observed output ranges:")
    for name, (low, high) in sorted(characterization.output_ranges.items()):
        print(f"  {name:22s} [{low:8.2f}, {high:8.2f}]")

    # --- Step 4: synthesis + validation ------------------------------------
    print()
    for spec, extras in ((hw_spec, dict(effort_scale=5.0, accuracy_boost=10.0)),
                         (sw_spec, dict(effort_scale=1.5, accuracy_boost=8.0))):
        design = design_layer(spec, characterization, reduce_to=20, **extras)
        print(design.summary())
        min_s = design.dk_result.min_s
        if min_s >= 1.0:
            print(f"  min(s) = {min_s:.2f} >= 1: the requested Delta/B/W hold.")
        else:
            print(
                f"  min(s) = {min_s:.2f} < 1: the controller tolerates only "
                f"{100 * min_s:.0f}% of the declared uncertainty at the "
                "declared bounds (the paper's designer would relax B or W)."
            )
        print()


if __name__ == "__main__":
    main()
