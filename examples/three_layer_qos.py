#!/usr/bin/env python
"""Sec. III-D extension: a third (application/QoS) Yukta layer.

Designs an application-layer SSV controller for a work-item stream with an
approximation-quality knob, stacks it on the two-layer Yukta runtime with
neighbour-only communication, and shows:

* at a feasible heartbeat target the stack meets QoS exactly while shaving
  approximation quality only as much as needed;
* at an infeasible target it degrades gracefully (quality shed, heartbeat
  maximized) instead of oscillating.

Run:  python examples/three_layer_qos.py
"""

from repro.experiments import DesignContext, three_layer


def main():
    print("Designing the three-layer stack (HW + OS + application)...")
    context = DesignContext.create(samples_per_program=140)
    result = three_layer.run(context)
    print()
    print(result.render())
    print()
    print("The application controller talks only to its neighbour (the OS")
    print("layer's placement signals) — the Sec. III-D layering argument.")


if __name__ == "__main__":
    main()
