#!/usr/bin/env python
"""Quickstart: design the two Yukta controllers and run one application.

This walks the full pipeline of the paper in ~30 seconds:

1. characterize the (simulated) ODROID XU3 with the training programs;
2. design the hardware and software SSV controllers (system identification,
   generalized plant, D-K iteration);
3. run blackscholes under the full Yukta scheme and under the industry
   coordinated-heuristic baseline;
4. report Energy x Delay for both.

Run:  python examples/quickstart.py
"""

from repro.experiments import (
    COORDINATED_HEURISTIC,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
    run_workload,
)


def main():
    print("Characterizing the board and synthesizing controllers...")
    context = DesignContext.create(samples_per_program=140)
    hw = context.get_hw_design()
    sw = context.get_sw_design()
    print()
    print(hw.summary())
    print()
    print(sw.summary())
    print()
    for scheme in (COORDINATED_HEURISTIC, YUKTA_HW_SSV_OS_SSV):
        metrics = run_workload(scheme, "blackscholes", context)
        print(metrics.summary())
    print()
    print("Done. See repro.experiments.fig9 for the full evaluation sweep.")


if __name__ == "__main__":
    main()
