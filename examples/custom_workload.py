#!/usr/bin/env python
"""Define a custom phase-structured application and control it with Yukta.

Shows the workload API: phases with thread counts, instruction budgets,
memory-boundedness, and barrier semantics — then runs the custom program
under the full Yukta scheme and prints the board trace summary.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.experiments import YUKTA_HW_SSV_OS_SSV, DesignContext, run_workload
from repro.experiments.report import render_series
from repro.workloads import Application, Phase


def make_custom_app():
    """A three-act application: serial setup, bursty compute, memory scan."""
    return Application(
        "my-pipeline",
        [
            Phase("setup", n_threads=1, instructions=15.0, cpi_scale=1.0,
                  mpki=1.0),
            Phase("compute", n_threads=8, instructions=220.0, cpi_scale=0.9,
                  mpki=0.5, activity=1.05),
            Phase("scan", n_threads=4, instructions=60.0, cpi_scale=1.2,
                  mpki=15.0, activity=0.6, barrier=True),
        ],
    )


def main():
    print("Designing controllers...")
    context = DesignContext.create(samples_per_program=140)
    print("Running the custom workload under Yukta HW SSV + OS SSV...")
    metrics = run_workload(
        YUKTA_HW_SSV_OS_SSV, [make_custom_app()], context, record=True
    )
    print(metrics.summary())
    trace = metrics.trace
    print()
    print(render_series(trace["times"], trace["bips_total"],
                        "Total BIPS over the three phases"))
    print()
    print(render_series(trace["times"], trace["power_big"],
                        "Big-cluster power (limit 3.3 W)"))
    temps = np.asarray(trace["temperature"])
    print()
    print(f"Peak temperature: {temps.max():.1f} degC "
          f"(limit {context.spec.temp_limit} degC)")


if __name__ == "__main__":
    main()
