#!/usr/bin/env python
"""Section VI-D: cost out the SSV controller as a fixed-point state machine.

Builds the synthesized hardware controller, quantizes it to 32-bit fixed
point at several Q formats, and reports operation counts, storage, and the
fixed-point error against the floating-point reference.

Run:  python examples/hardware_state_machine.py
"""

import numpy as np

from repro.core import FixedPointController
from repro.experiments import DesignContext
from repro.experiments.report import render_table


def main():
    print("Synthesizing the hardware SSV controller...")
    context = DesignContext.create(samples_per_program=140)
    controller = context.get_hw_design().controller
    sm = controller.state_machine
    print(
        f"Controller: N={sm.n_states} states, I={sm.n_outputs} inputs, "
        f"O+E={sm.n_inputs} signals"
    )
    rng = np.random.default_rng(0)
    dy = rng.uniform(-0.5, 0.5, size=(300, sm.n_inputs))
    rows = []
    for frac_bits in (8, 12, 16, 20, 24):
        fixed = FixedPointController(sm, frac_bits=frac_bits)
        error = fixed.max_output_error(dy)
        rows.append([
            f"Q{31 - frac_bits}.{frac_bits}",
            fixed.cost.macs,
            fixed.cost.storage_bytes / 1024.0,
            error,
        ])
    print()
    print(render_table(
        ["format", "MACs/invocation", "storage (KB)", "max |fixed-float|"],
        rows,
        "Fixed-point implementation cost (paper: ~700 ops, ~2.6 KB)",
    ))
    print()
    print("At a millisecond-level invocation rate this is a few mW of logic —")
    print("the paper measured ~28 us per invocation on a Cortex A7.")


if __name__ == "__main__":
    main()
