"""Benchmark: regenerate Figures 10/11 (blackscholes power and BIPS traces)."""

from conftest import run_once

from repro.experiments import fig10
from repro.experiments.schemes import DECOUPLED_HEURISTIC, YUKTA_HW_SSV_OS_SSV


def test_fig10_fig11(benchmark, context):
    result = run_once(benchmark, fig10.run, context)
    print()
    print(result.render())
    # Shape: the decoupled scheme oscillates more than Yukta SSV+SSV.
    dec = result.power_stats[DECOUPLED_HEURISTIC]
    yukta = result.power_stats[YUKTA_HW_SSV_OS_SSV]
    assert dec["peaks_over_limit"] >= yukta["peaks_over_limit"]
