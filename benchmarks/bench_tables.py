"""Benchmark: regenerate Tables I-IV from the live code objects."""

from conftest import run_once

from repro.experiments import tables


def test_tables(benchmark):
    text = run_once(benchmark, tables.render_all)
    print()
    print(text)
    assert "Table I" in text
    assert "Table II" in text
    assert "Table III" in text
    assert "Table IV" in text
    assert "SSV" in text
