"""Benchmark: observability overhead — phase profiler + campaign events.

The ``repro.obs`` additions ride the same is-``None`` fast path as the
telemetry substrate, so they must obey the same budget: a fully-profiled
session (``TelemetrySession(profile=True)`` pricing every span into
p50/p90/p99 phase histograms) must stay within 5 % of the *plain*
telemetry session on the same deterministic control loop, and a
checkpointed campaign with the ``events.jsonl`` stream must stay within
5 % of the same campaign without it.

Methodology matches ``bench_telemetry.py``: GC disabled inside timed
regions, profiled/plain runs interleave so machine-load drift hits both
modes, each attempt scores ``min(on) / min(off)``, and because noise
only inflates a sample, a noisy attempt is retried and the best attempt
is the verdict.

Runs standalone (the CI bench-trajectory job) as well as under pytest:

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] [--out FILE]
"""

import gc
import json
import sys
import tempfile
import time
from pathlib import Path

OVERHEAD_LIMIT = 0.05  # profiled-vs-plain wall-clock ratio bound
REPEATS = 7  # interleaved pairs per attempt
ATTEMPTS = 3  # re-measure a noise-corrupted attempt; best attempt wins
MAX_SIM_TIME = 60.0  # deterministic fixed-work run
EVENT_CELLS = 24  # cells in the event-stream campaign comparison


def _make_context():
    """A spec-only context: the heuristic scheme needs no synthesis."""
    from repro.board import default_xu3_spec
    from repro.experiments.schemes import DesignContext

    return DesignContext(spec=default_xu3_spec(), characterization=None)


def _timed_run(context, telemetry, max_time):
    from repro.experiments.runner import run_workload

    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        metrics = run_workload(
            "coordinated-heuristic", "gamess", context,
            max_time=max_time, record=False, telemetry=telemetry,
        )
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    assert metrics.execution_time >= max_time - 1.0  # same work both modes
    return elapsed


def _measure_profiler_once(context, repeats, max_time):
    """One attempt: plain session vs profiled session, min-of-N per mode."""
    from repro.telemetry import TelemetrySession

    plain, profiled = [], []
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        for i in range(repeats):
            session = TelemetrySession(f"{tmp}/plain{i}")
            plain.append(_timed_run(context, session, max_time))
            session.close()
            session = TelemetrySession(f"{tmp}/prof{i}", profile=True)
            profiled.append(_timed_run(context, session, max_time))
            session.close()
    t_off = min(plain)
    t_on = min(profiled)
    return t_off, t_on, t_on / t_off - 1.0


def measure_profiler_overhead(repeats=REPEATS, attempts=ATTEMPTS,
                              max_time=MAX_SIM_TIME, verbose=True):
    """Returns (plain_s, profiled_s, overhead_fraction) of the best attempt."""
    context = _make_context()
    _timed_run(context, None, max_time)  # warm-up: imports, caches
    best = None
    for attempt in range(attempts):
        result = _measure_profiler_once(context, repeats, max_time)
        if best is None or result[2] < best[2]:
            best = result
        if verbose:
            t_off, t_on, overhead = result
            print(f"attempt {attempt + 1}/{attempts}: profiled session vs "
                  f"plain, {max_time:.0f}s simulated, best of "
                  f"{repeats} pairs:")
            print(f"  plain telemetry:    {t_off * 1000:8.1f} ms")
            print(f"  + phase profiler:   {t_on * 1000:8.1f} ms "
                  f"(p50/p90/p99 per control phase)")
            print(f"  profiler overhead:  {overhead * 100:+8.2f} % "
                  f"(limit {OVERHEAD_LIMIT * 100:.0f} %)")
        if best[2] < OVERHEAD_LIMIT:
            break  # a clean attempt is conclusive; noise only inflates
    return best


def _campaign(context, checkpoint):
    from repro.experiments.engine import parallel_map

    tasks = [("call", (_cell_work, (i,), {})) for i in range(EVENT_CELLS)]
    return parallel_map(tasks, context, checkpoint=checkpoint)


def _cell_work(context, x):
    # A small deterministic spin so per-cell event cost is measured
    # against real (if tiny) work, not against nothing.
    acc = 0
    for i in range(2000):
        acc += (i * x) % 7
    return acc


def measure_event_overhead(repeats=REPEATS, attempts=ATTEMPTS, verbose=True):
    """Event-stream cost on a checkpointed campaign, reported per event.

    The stream only exists alongside a journal (or telemetry dir), so the
    honest comparison times the same campaign twice — plain vs journal +
    events — and attributes the delta per emitted event line.  This is
    reported (not gated): the absolute per-event cost is what matters,
    and it is microseconds against cells that run for seconds.
    """
    context = _make_context()
    best = None
    for attempt in range(attempts):
        plain, streamed = [], []
        emitted = 0
        for i in range(repeats):
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                _campaign(context, checkpoint=None)
                plain.append(time.perf_counter() - t0)
            finally:
                gc.enable()
            with tempfile.TemporaryDirectory(prefix="bench-obs-ev-") as tmp:
                gc.collect()
                gc.disable()
                try:
                    t0 = time.perf_counter()
                    _campaign(context, checkpoint=tmp)
                    streamed.append(time.perf_counter() - t0)
                finally:
                    gc.enable()
                emitted = sum(
                    1 for _ in open(Path(tmp) / "events.jsonl"))
        result = (min(plain), min(streamed), emitted)
        if best is None or result[1] - result[0] < best[1] - best[0]:
            best = result
        if verbose:
            t_off, t_on, lines = result
            print(f"attempt {attempt + 1}/{attempts}: {EVENT_CELLS}-cell "
                  f"campaign, best of {repeats} pairs:")
            print(f"  plain campaign:       {t_off * 1000:8.2f} ms")
            print(f"  journal + events:     {t_on * 1000:8.2f} ms "
                  f"({lines} event lines)")
            print(f"  per-event cost:       "
                  f"{(t_on - t_off) / max(lines, 1) * 1e6:8.1f} us")
    return best


def run_benchmarks(quick=False, verbose=True):
    """Run both gates; returns the results dict (written to BENCH_obs.json)."""
    repeats = 3 if quick else REPEATS
    attempts = 2 if quick else ATTEMPTS
    max_time = 30.0 if quick else MAX_SIM_TIME
    t_plain, t_prof, overhead = measure_profiler_overhead(
        repeats=repeats, attempts=attempts, max_time=max_time,
        verbose=verbose)
    ev_plain, ev_streamed, ev_lines = measure_event_overhead(
        repeats=repeats, attempts=attempts, verbose=verbose)
    return {
        "bench": "obs",
        "quick": bool(quick),
        "profiler": {
            "plain_ms": t_plain * 1000,
            "profiled_ms": t_prof * 1000,
            "overhead_frac": overhead,
            "limit_frac": OVERHEAD_LIMIT,
            "ok": overhead < OVERHEAD_LIMIT,
        },
        "events": {
            "plain_ms": ev_plain * 1000,
            "streamed_ms": ev_streamed * 1000,
            "event_lines": ev_lines,
            "per_event_us": (ev_streamed - ev_plain) / max(ev_lines, 1) * 1e6,
        },
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_profiler_overhead():
    """The profiled session stays within 5% of the plain session."""
    print()
    _, _, overhead = measure_profiler_overhead()
    assert overhead < OVERHEAD_LIMIT, (
        f"profiler overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}%"
    )


def test_profiler_off_is_nullpath():
    """Without profile=True nothing observability-related is reachable
    from the tracer hot path."""
    from repro.telemetry import TelemetrySession

    session = TelemetrySession()
    assert session.profiler is None
    assert session.tracer.profiler is None


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (smaller budgets)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write results JSON here "
                             "(default BENCH_obs.json at the repo root)")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parents[1] / "BENCH_obs.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if not results["profiler"]["ok"]:
        print(f"FAIL: profiler overhead "
              f"{results['profiler']['overhead_frac'] * 100:.2f}% >= "
              f"{OVERHEAD_LIMIT * 100:.0f}%", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
