"""Benchmark: the Sec. III-D three-layer scalability demonstration."""

from conftest import run_once

from repro.experiments import three_layer


def test_three_layer(benchmark, context):
    result = run_once(benchmark, three_layer.run, context)
    print()
    print(result.render())
    # Shape: at the feasible target the three-layer stack tracks the QoS
    # closely while shedding some quality.
    row = result.by_label("three-layer @ 3.5")
    assert abs(row[2] - 3.5) < 0.8
    assert row[3] <= 1.0
