"""Benchmark: regenerate Figure 14 (heterogeneous workload mixes)."""

from conftest import run_once

from repro.experiments import fig14


def test_fig14(benchmark, context):
    result = run_once(benchmark, fig14.run, context)
    print()
    print(result.render())
    assert set(result.mixes) == {"blmc", "stga", "blst", "mcga"}
