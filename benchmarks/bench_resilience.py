"""Benchmark: fault-matrix resilience sweep under the safe-mode supervisor."""

import pytest
from conftest import run_once

from repro.experiments import resilience
from repro.experiments.schemes import YUKTA_HW_SSV_OS_SSV


@pytest.mark.slow
def test_resilience(benchmark, context):
    result = run_once(benchmark, resilience.run, context, quick=True)
    print()
    print(result.render())
    # Seed-robust checks: no scheme trips on a fault-free run, and the
    # supervised SSV stack detects every quick-matrix fault.  Latencies,
    # time-in-degraded and the ExD penalty are workload- and seed-dependent
    # and are reported rather than asserted.
    for base in result.baselines.values():
        assert not base["false_trip"]
    for row in result.rows:
        if row.scheme == YUKTA_HW_SSV_OS_SSV:
            assert row.detected
    # The acceptance scenario: the permanent heatsink detachment is caught
    # and contained inside the emergency envelope.
    row = result.row("heatsink-detach", YUKTA_HW_SSV_OS_SSV)
    assert row.detected and row.degraded_time > 0.0
