"""Benchmark: regenerate Figure 9 (ExD and execution time, Table IV schemes)."""

from conftest import run_once

from repro.experiments import fig9


def test_fig9(benchmark, context):
    result = run_once(benchmark, fig9.run, context, quick=True)
    print()
    print(result.render())
    averages = result.averages("exd")["Avg"]
    # Shape check: the schemes separate from the baseline.
    assert averages[fig9.TABLE_IV_SCHEMES[0]] == 1.0
    assert all(v > 0 for v in averages.values())
