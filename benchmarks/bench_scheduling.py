"""Benchmark: the Table I Robust-vs-Gain-Scheduling ablation."""

from conftest import run_once

from repro.experiments import scheduling


def test_scheduling(benchmark, context):
    result = run_once(benchmark, scheduling.run, context,
                      workloads=("mcf", "gamess"), samples_per_program=140)
    print()
    print(result.render())
    # Both variants must complete; the measured outcome (scheduling loses
    # on this simulator, confirming the paper's Table I rationale) is
    # recorded in EXPERIMENTS.md rather than asserted as an ordering.
    for workload in result.workloads:
        assert result.single[workload] > 0
        assert result.scheduled[workload] > 0
