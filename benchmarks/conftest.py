"""Shared benchmark fixtures.

One :class:`~repro.experiments.DesignContext` (training campaign + all
controller syntheses) is built per session and reused by every figure
bench; individual benches then measure the experiment regeneration itself.
"""

import pytest


@pytest.fixture(scope="session")
def context():
    from repro.experiments import DesignContext

    ctx = DesignContext.create(samples_per_program=140, seed=1234)
    # Force every lazy design up front so benches measure runs, not synthesis.
    ctx.get_hw_design()
    ctx.get_sw_design()
    ctx.get_lqg_hw()
    ctx.get_lqg_sw()
    ctx.get_lqg_mono()
    return ctx


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
