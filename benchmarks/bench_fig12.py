"""Benchmark: regenerate Figures 12/13 (comparison to LQG designs)."""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_fig13(benchmark, context):
    result = run_once(benchmark, fig12.run, context, quick=True)
    print()
    print(result.render())
    averages = result.averages("exd")
    assert all(v > 0 for v in averages.values())
