"""Benchmark: regenerate Figure 16 (uncertainty guardband sensitivity)."""

from conftest import run_once

from repro.experiments import fig16


def test_fig16(benchmark, context):
    result = run_once(benchmark, fig16.run, context,
                      workloads=("blackscholes",), include_exd=True)
    print()
    print(result.render())
    # Shape: controllers can still be synthesized at very large guardbands,
    # with achieved bounds growing slowly (robust-control headline).
    assert len(result.gamma) == len(result.guardbands)
    assert result.achieved_bounds[result.guardbands[0]] == 1.0
