"""Benchmark: rack-scale throughput and control overhead.

Two gates on the third layer:

* **aggregate throughput** — board-steps per wall-second through a full
  rack campaign (sensing + control + governors + bank stepping) at
  N in {1, 4, 8} boards, banked and scalar; both paths must clear an
  absolute floor and agree bit-exactly (the exactness contract,
  re-checked here because a perf regression that breaks it would
  otherwise hide in the oracle's smaller scenario).  The banked/scalar
  ratio is reported, not gated — at rack scale the fusion window is one
  rack period and per-board budgets make commands diverge, so scalar
  per-board stepping is legitimately competitive;
* **control overhead** — the rack layer's own work (declared sensing,
  cap distribution, budget governors, dispatch, trace bookkeeping) must
  cost < 5 % of plant stepping.  :class:`~repro.rack.rack.Rack` splits
  its wall clock into ``step_wall`` (inside the bank / scalar stepping)
  and ``loop_wall`` (the whole period loop); the gate holds their ratio.

Methodology matches the other benches: a warm-up run swallows import and
plan-cache cold costs, GC is disabled inside timed regions, each gate
takes the best of several attempts (noise only inflates a sample), and
the verdict numbers land in ``BENCH_rack.json`` for the trajectory
ledger.

    PYTHONPATH=src python benchmarks/bench_rack.py [--quick] [--out FILE]
"""

import gc
import json
import sys
import time
from pathlib import Path

OVERHEAD_LIMIT = 0.05  # rack-layer wall time as a fraction of stepping
STEPS_PER_SEC_FLOOR = 2000.0  # very conservative absolute throughput floor
BOARD_COUNTS = (1, 4, 8)
ATTEMPTS = 3
MAX_SIM_TIME = 24.0  # simulated seconds per measured campaign


def _saturated_rack(n_boards):
    """A rack where every board stays busy for the whole horizon."""
    from repro.rack import JobSpec, default_rack_spec

    jobs = tuple(
        JobSpec(name=f"load{i}", workload="blackscholes@0.5", arrival=0.0,
                sla=1e4)
        for i in range(n_boards + 2)
    )
    return default_rack_spec(n_boards=n_boards, jobs=jobs)


def _timed_campaign(n_boards, use_bank, max_time, seed=3):
    from repro.rack import Rack

    rack = Rack(_saturated_rack(n_boards), use_bank=use_bank, seed=seed)
    gc.collect()
    gc.disable()
    try:
        result = rack.run(max_time=max_time)
    finally:
        gc.enable()
    sim_dt = rack.spec.boards[0].sim_dt
    steps = sum(result.board_time) / sim_dt
    return result, steps


def measure_throughput(attempts=ATTEMPTS, max_time=MAX_SIM_TIME,
                       verbose=True):
    """Steps/s banked vs scalar per board count, plus the exactness bit."""
    _timed_campaign(2, True, 4.0)  # warm-up: imports, plan caches
    cells = []
    for n in BOARD_COUNTS:
        best = {}
        identical = True
        for _ in range(attempts):
            banked, steps_b = _timed_campaign(n, True, max_time)
            scalar, steps_s = _timed_campaign(n, False, max_time)
            identical = identical and (
                banked.energy == scalar.energy
                and banked.board_time == scalar.board_time
            )
            rate_b = steps_b / banked.loop_wall
            rate_s = steps_s / scalar.loop_wall
            if not best or rate_b > best["banked_steps_per_sec"]:
                best = {
                    "n_boards": n,
                    "banked_steps_per_sec": rate_b,
                    "scalar_steps_per_sec": rate_s,
                    "bank_speedup": rate_b / rate_s,
                    "periods": banked.periods,
                }
        best["bit_identical"] = identical
        cells.append(best)
        if verbose:
            print(f"n={n}: banked {best['banked_steps_per_sec']:9,.0f} "
                  f"steps/s, scalar {best['scalar_steps_per_sec']:9,.0f}, "
                  f"speedup {best['bank_speedup']:.2f}x, "
                  f"identical={identical}")
    return cells


def measure_control_overhead(attempts=ATTEMPTS, max_time=MAX_SIM_TIME,
                             n_boards=4, verbose=True):
    """Rack-layer wall time over stepping wall time, best attempt."""
    _timed_campaign(n_boards, True, 4.0)  # warm-up
    best = None
    for attempt in range(attempts):
        result, _ = _timed_campaign(n_boards, True, max_time)
        frac = (result.loop_wall - result.step_wall) / result.step_wall
        cand = {
            "n_boards": n_boards,
            "loop_wall_ms": result.loop_wall * 1000,
            "step_wall_ms": result.step_wall * 1000,
            "overhead_frac": frac,
            "limit_frac": OVERHEAD_LIMIT,
        }
        if best is None or frac < best["overhead_frac"]:
            best = cand
        if verbose:
            print(f"attempt {attempt + 1}/{attempts}: loop "
                  f"{cand['loop_wall_ms']:.1f} ms, stepping "
                  f"{cand['step_wall_ms']:.1f} ms, rack-layer overhead "
                  f"{frac * 100:.2f}% (limit {OVERHEAD_LIMIT * 100:.0f}%)")
        if frac < OVERHEAD_LIMIT:
            break  # noise only inflates; a clean attempt is conclusive
    best["ok"] = best["overhead_frac"] < OVERHEAD_LIMIT
    return best


def run_benchmarks(quick=False, verbose=True):
    attempts = 2 if quick else ATTEMPTS
    max_time = 12.0 if quick else MAX_SIM_TIME
    t0 = time.perf_counter()
    cells = measure_throughput(attempts=attempts, max_time=max_time,
                               verbose=verbose)
    overhead = measure_control_overhead(attempts=attempts,
                                        max_time=max_time, verbose=verbose)
    return {
        "bench": "rack",
        "quick": bool(quick),
        "elapsed_s": time.perf_counter() - t0,
        "throughput": {
            "cells": cells,
            "floor_steps_per_sec": STEPS_PER_SEC_FLOOR,
            "bit_identical": all(c["bit_identical"] for c in cells),
        },
        "overhead": overhead,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_rack_control_overhead():
    """The rack layer costs < 5% of plant stepping."""
    print()
    best = measure_control_overhead()
    assert best["ok"], (
        f"rack-layer overhead {best['overhead_frac'] * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% of stepping"
    )


def test_rack_throughput_and_exactness():
    """Both stepping paths clear the floor and stay bit-identical.

    The banked/scalar ratio is reported, not gated: at rack scale the
    fusion window is one rack period and per-board budgets make commands
    diverge, so the scalar per-board fastpath is legitimately
    competitive (the bank's 4x floor lives in ``bench_perf.py`` at
    B=16 with a shared schedule).
    """
    print()
    cells = measure_throughput(attempts=2, max_time=12.0)
    for cell in cells:
        assert cell["bit_identical"]
        assert cell["banked_steps_per_sec"] > STEPS_PER_SEC_FLOOR
        assert cell["scalar_steps_per_sec"] > STEPS_PER_SEC_FLOOR


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (smaller budgets)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write results JSON here "
                             "(default BENCH_rack.json at the repo root)")
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parents[1] / "BENCH_rack.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    failures = []
    if not results["overhead"]["ok"]:
        failures.append(
            f"rack-layer overhead "
            f"{results['overhead']['overhead_frac'] * 100:.2f}% >= "
            f"{OVERHEAD_LIMIT * 100:.0f}%")
    if not results["throughput"]["bit_identical"]:
        failures.append("banked rack diverged from scalar stepping")
    for cell in results["throughput"]["cells"]:
        if cell["banked_steps_per_sec"] < STEPS_PER_SEC_FLOOR:
            failures.append(
                f"throughput at n={cell['n_boards']} "
                f"{cell['banked_steps_per_sec']:.0f} steps/s < "
                f"{STEPS_PER_SEC_FLOOR:.0f}")
    if failures:
        print("FAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
