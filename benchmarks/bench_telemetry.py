"""Benchmark: telemetry overhead on the fig9-style control loop.

The telemetry subsystem must be free when it is off: the instrumented
loop (board steps + coordinator control steps) differs from the
uninstrumented seed loop only by ``is None`` guards, so its cost is
bounded above by the *enabled* overhead, which this bench measures
directly.  Two identical runs of the same deterministic workload — one
with telemetry disabled (the default fast path), one with a full
:class:`~repro.telemetry.TelemetrySession` recording spans, metrics, and
flight snapshots — must stay within 5 % of each other.

Methodology (the runs are ~250 ms, so noise hygiene matters): GC is
disabled inside each timed region, disabled/enabled runs alternate so
machine-load drift hits both modes, and each attempt scores
``min(enabled) / min(disabled)`` — the cleanest sample of each mode.
Because timing noise only ever *inflates* a sample (scheduler steal,
writeback stalls), an attempt can overestimate but not underestimate
the overhead, so a noisy attempt is retried (up to ``ATTEMPTS``) and
the best attempt is the verdict.

Runs standalone (the CI smoke job) as well as under pytest:

    PYTHONPATH=src python benchmarks/bench_telemetry.py
"""

import gc
import sys
import tempfile
import time

OVERHEAD_LIMIT = 0.05  # enabled-vs-disabled wall-clock ratio bound
REPEATS = 7  # interleaved pairs per attempt
ATTEMPTS = 3  # re-measure a noise-corrupted attempt; best attempt wins
MAX_SIM_TIME = 60.0  # deterministic fixed-work run (workload never finishes)


def _make_context():
    """A spec-only context: the heuristic scheme needs no synthesis."""
    from repro.board import default_xu3_spec
    from repro.experiments.schemes import DesignContext

    return DesignContext(spec=default_xu3_spec(), characterization=None)


def _timed_run(context, telemetry):
    from repro.experiments.runner import run_workload

    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        metrics = run_workload(
            "coordinated-heuristic", "gamess", context,
            max_time=MAX_SIM_TIME, record=False, telemetry=telemetry,
        )
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    assert metrics.execution_time >= MAX_SIM_TIME - 1.0  # same work both modes
    return elapsed


def _measure_once(context, repeats):
    """One attempt: interleaved pairs, min-of-N per mode."""
    from repro.telemetry import TelemetrySession

    disabled, enabled = [], []
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as tmp:
        for i in range(repeats):
            disabled.append(_timed_run(context, None))
            session = TelemetrySession(f"{tmp}/run{i}")
            enabled.append(_timed_run(context, session))
            session.close()
    t_off = min(disabled)
    t_on = min(enabled)
    return t_off, t_on, t_on / t_off - 1.0


def measure_overhead(repeats=REPEATS, attempts=ATTEMPTS, verbose=True):
    """Returns (disabled_s, enabled_s, overhead_fraction) of the best attempt."""
    context = _make_context()
    _timed_run(context, None)  # warm-up: imports, allocator, caches
    best = None
    for attempt in range(attempts):
        result = _measure_once(context, repeats)
        if best is None or result[2] < best[2]:
            best = result
        if verbose:
            t_off, t_on, overhead = result
            print(f"attempt {attempt + 1}/{attempts}: fig9-style loop, "
                  f"{MAX_SIM_TIME:.0f}s simulated, best of {repeats} pairs:")
            print(f"  telemetry disabled: {t_off * 1000:8.1f} ms")
            print(f"  telemetry enabled:  {t_on * 1000:8.1f} ms "
                  f"(spans+metrics+flight recorded to disk)")
            print(f"  enabled overhead:   {overhead * 100:+8.2f} % "
                  f"(limit {OVERHEAD_LIMIT * 100:.0f} %)")
        if best[2] < OVERHEAD_LIMIT:
            break  # a clean attempt is conclusive; noise only inflates
    return best


def test_telemetry_overhead():
    """The full-on session stays within 5% of the disabled fast path."""
    print()
    _, _, overhead = measure_overhead()
    assert overhead < OVERHEAD_LIMIT, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}%"
    )


def test_disabled_loop_is_nullpath():
    """With no session, no instrumented object holds a telemetry handle."""
    from repro.board import Board
    from repro.core import MultilayerCoordinator
    from repro.baselines import CoordinatedHeuristicHW, CoordinatedHeuristicOS
    from repro.board import default_xu3_spec
    from repro.workloads import make_application

    spec = default_xu3_spec()
    board = Board(make_application("gamess"), spec=spec, record=False)
    coord = MultilayerCoordinator(
        CoordinatedHeuristicHW(spec), CoordinatedHeuristicOS(spec)
    )
    assert board.telemetry is None
    assert coord.telemetry is None
    assert board.emergency.on_trip is None


def main():
    _, _, overhead = measure_overhead()
    if overhead >= OVERHEAD_LIMIT:
        print(f"FAIL: overhead {overhead * 100:.2f}% >= "
              f"{OVERHEAD_LIMIT * 100:.0f}%", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
