"""Benchmark: fault-tolerance overhead — checkpoint journal + supervision.

The fault-tolerant campaign executor must be cheap enough to leave on.
This benchmark measures what the robustness layer costs and records it in
``BENCH_runtime.json``:

1. **Checkpoint journal throughput** — ``record`` + ``get`` rates for
   RunMetrics-sized payloads (pickle + sha256 + fsynced journal append),
   and the cost of an ``index()`` scan over the full journal.  The floor
   is deliberately loose (>= 50 cells/s): one journal append per
   multi-second simulation cell is noise, but a regression to seconds per
   record would not be.
2. **Supervised executor overhead** — the same task list through the plain
   engine pool and through the supervised worker pool (timeouts + retry
   accounting armed, no faults injected).  Fault-free supervision must
   cost <= 3x the plain pool on a trivially-small workload (on real
   multi-second cells the per-task overhead vanishes); both must return
   identical results.

Runs standalone (the CI chaos-smoke job) as well as manually:

    PYTHONPATH=src python benchmarks/bench_runtime.py [--quick]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path


def _bench_journal(cells, payload_floats):
    import numpy as np

    from repro.cache import MISS
    from repro.runtime import CheckpointJournal

    rng = np.random.default_rng(7)
    payload = {
        "trace": rng.normal(size=payload_floats),
        "notes": {"emergency_trips": 0, "coordinator_records": 123},
        "energy": 512.25,
    }
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as tmp:
        journal = CheckpointJournal(tmp)
        keys = [f"{i:08d}" + "k" * 56 for i in range(cells)]
        t0 = time.perf_counter()
        for key in keys:
            journal.record(key, payload, meta={"label": key[:8]})
        record_sec = time.perf_counter() - t0

        t0 = time.perf_counter()
        index = journal.index()
        index_sec = time.perf_counter() - t0

        reader = CheckpointJournal(tmp)
        t0 = time.perf_counter()
        for key in keys:
            value = reader.get(key, index[key]["sha256"])
            assert value is not MISS
        get_sec = time.perf_counter() - t0
    return {
        "cells": cells,
        "payload_floats": payload_floats,
        "record_per_sec": cells / max(record_sec, 1e-9),
        "get_per_sec": cells / max(get_sec, 1e-9),
        "index_sec": index_sec,
    }


def _sq(context, x):
    return x * x


def _bench_supervision(tasks_n, jobs):
    from repro.experiments import DesignContext
    from repro.experiments.engine import parallel_map
    from repro.runtime import RetryPolicy

    context = DesignContext.create(samples_per_program=24, seed=3)
    tasks = [("call", (_sq, (i,), {})) for i in range(tasks_n)]

    # Warm both pools once (process spawn dominates the first run).
    parallel_map(tasks[:jobs], context, jobs=jobs)

    t0 = time.perf_counter()
    plain = parallel_map(tasks, context, jobs=jobs)
    plain_sec = time.perf_counter() - t0

    t0 = time.perf_counter()
    supervised = parallel_map(
        tasks, context, jobs=jobs, cell_timeout=60.0,
        backoff=RetryPolicy(max_retries=2), on_error="collect")
    supervised_sec = time.perf_counter() - t0

    return {
        "tasks": tasks_n,
        "jobs": jobs,
        "plain_sec": plain_sec,
        "supervised_sec": supervised_sec,
        "overhead_x": supervised_sec / max(plain_sec, 1e-9),
        "identical": plain == supervised,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller budgets")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the supervision bench")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_runtime.json "
                             "next to this script's repo root)")
    args = parser.parse_args(argv)

    cells = 200 if args.quick else 1000
    floats = 2000 if args.quick else 20000
    tasks_n = 16 if args.quick else 48

    results = {"quick": args.quick}

    print(f"[1/2] checkpoint journal ({cells} cells, "
          f"{floats}-float payloads)...")
    results["journal"] = _bench_journal(cells, floats)
    print(f"  record {results['journal']['record_per_sec']:.0f}/s, "
          f"get {results['journal']['get_per_sec']:.0f}/s, "
          f"index {results['journal']['index_sec'] * 1e3:.1f} ms")

    print(f"[2/2] supervised vs plain pool ({tasks_n} tasks, "
          f"jobs={args.jobs})...")
    results["supervision"] = _bench_supervision(tasks_n, args.jobs)
    print(f"  plain {results['supervision']['plain_sec']:.2f}s, "
          f"supervised {results['supervision']['supervised_sec']:.2f}s "
          f"({results['supervision']['overhead_x']:.2f}x), identical: "
          f"{results['supervision']['identical']}")

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    )
    from repro.cache import atomic_write_text

    atomic_write_text(out, json.dumps(results, indent=1))
    print(f"wrote {out}")

    failures = []
    if results["journal"]["record_per_sec"] < 50.0:
        failures.append(
            f"journal record rate "
            f"{results['journal']['record_per_sec']:.0f}/s < 50/s")
    if results["journal"]["get_per_sec"] < 100.0:
        failures.append(
            f"journal get rate "
            f"{results['journal']['get_per_sec']:.0f}/s < 100/s")
    if not results["supervision"]["identical"]:
        failures.append("supervised results differ from the plain pool")
    # Trivial tasks magnify per-task supervision cost; the floor is a
    # regression tripwire, not a performance claim.
    if results["supervision"]["overhead_x"] > 25.0:
        failures.append(
            f"supervision overhead "
            f"{results['supervision']['overhead_x']:.1f}x > 25x on "
            "trivial tasks")
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
