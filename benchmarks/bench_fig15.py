"""Benchmark: regenerate Figure 15 (output deviation bound sensitivity)."""

from conftest import run_once

from repro.experiments import fig15


def test_fig15(benchmark, context):
    result = run_once(benchmark, fig15.run, context,
                      workloads=("blackscholes",), include_exd=True)
    print()
    print(result.render())
    # Shape: the declared bounds are honoured, and satisfaction can only
    # improve as the bounds widen (the cross-seed-robust half of the
    # paper's Fig. 15a claim; see EXPERIMENTS.md for the rms discussion).
    fracs = [result.tracking_stats[s]["within_bound_frac"]
             for s in ("+-20%", "+-30%", "+-50%")]
    assert fracs[0] >= 0.5
    assert fracs[0] <= fracs[1] + 0.05
    assert fracs[1] <= fracs[2] + 0.05
