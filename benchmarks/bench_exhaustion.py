"""Benchmark: guardband-exhaustion detection (Sec. II-B runtime promise)."""

from conftest import run_once

from repro.experiments import exhaustion


def test_exhaustion(benchmark, context):
    result = run_once(benchmark, exhaustion.run, context)
    print()
    print(result.render())
    # Seed-robust checks: a healthy plant never flags; the out-of-guardband
    # heatsink fault flags AND settles safely.  The sensor-bias outcome is
    # workload-dependent (a run with thermal headroom genuinely absorbs it)
    # and is reported rather than asserted.
    assert not result.healthy_flagged
    assert result.heatsink_flagged
    assert result.heatsink_stable
