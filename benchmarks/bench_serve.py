"""Benchmark: the control-plane service — coalescing, batching, capacity.

Measures the three serving-path optimizations ``repro serve`` stacks and
records them in ``BENCH_serve.json``:

1. **Result-store coalescing** — a burst of distinct cold cells, then the
   identical burst warm.  A warm request is a fingerprint lookup plus a
   JSON reply, so its p50 must be >= 10x faster than the cold p50 (the
   floor ``trajectory.py`` re-checks).
2. **Cross-request bank batching** — the same set of unique bankable
   cells fired concurrently at two servers with the *same worker count*:
   one dispatching solo cells (``batch=1``), one packing co-arriving
   cells into shared BoardBank lanes (``batch=B``).  Batched throughput
   must be >= 1.5x solo, and every response must be bit-identical across
   the two servers (the lockstep kernel guarantees it).
3. **Capacity under duplicate-heavy load** — the deterministic open-loop
   generator (``repro loadgen``) at a fixed arrival rate and duplicate
   ratio; records requests/s, p50/p99 latency, and the coalesce
   hit-rate.  Every request must succeed and the hit-rate must match the
   duplicate-heavy mix (>= 0.2).

Runs standalone (the CI serve-smoke job) as well as manually:

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--out FILE]
"""

import argparse
import json
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

COALESCE_FLOOR = 10.0  # warm store hit vs cold execution, p50 ratio
BATCH_FLOOR = 1.5  # banked vs solo throughput at equal workers
HITRATE_FLOOR = 0.2  # duplicate-heavy loadgen coalesce hit-rate


def _build_context(samples, seed):
    from repro.experiments import DesignContext

    return DesignContext.create(samples_per_program=samples, seed=seed)


def _percentile(values, q):
    values = sorted(values)
    index = min(int(round(q / 100.0 * (len(values) - 1))), len(values) - 1)
    return values[index]


def bench_coalesce(context, cells, max_time, store_dir):
    """Cold p50 vs warm (result-store) p50 over the same request set."""
    from repro.serve import ServeClient, serve_background

    requests = [
        {"kind": "run", "scheme": scheme, "workload": workload,
         "seed": seed, "max_time": max_time}
        for scheme, workload, seed in cells
    ]

    def _latencies(client):
        out = []
        sources = []
        for request in requests:
            t0 = time.perf_counter()
            response = client.run(request, timeout=600.0)
            out.append((time.perf_counter() - t0) * 1e3)
            assert response["status"] == 200, response
            sources.append(response["source"])
        return out, sources

    with serve_background(context, jobs=0, batch=1,
                          cache=store_dir) as handle:
        with ServeClient(handle.url, timeout=600.0) as client:
            cold_ms, cold_sources = _latencies(client)
            warm_ms, warm_sources = _latencies(client)
    assert all(s == "executed" for s in cold_sources), cold_sources
    assert all(s == "cache" for s in warm_sources), warm_sources
    cold_p50 = _percentile(cold_ms, 50)
    warm_p50 = _percentile(warm_ms, 50)
    return {
        "cells": len(requests),
        "max_time": max_time,
        "cold_p50_ms": round(cold_p50, 3),
        "cold_p99_ms": round(_percentile(cold_ms, 99), 3),
        "warm_p50_ms": round(warm_p50, 3),
        "warm_p99_ms": round(_percentile(warm_ms, 99), 3),
        "speedup": round(cold_p50 / warm_p50, 2) if warm_p50 else 0.0,
        "floor": COALESCE_FLOOR,
    }


def bench_batching(context, cells, max_time, batch):
    """Concurrent unique bankable cells: batch=1 vs batch=B wall-clock.

    Both servers run jobs=0 (one in-process worker), so the ratio
    isolates what bank packing alone buys at equal compute.
    """
    from repro.serve import ServeClient, serve_background

    requests = [
        {"kind": "run", "scheme": scheme, "workload": workload,
         "seed": seed, "max_time": max_time}
        for scheme, workload, seed in cells
    ]

    def _storm(width, wait):
        with serve_background(context, jobs=0, batch=width,
                              batch_wait=wait, cache=None,
                              queue_limit=len(requests) + 8) as handle:

            def _fire(request):
                with ServeClient(handle.url, timeout=600.0) as client:
                    return client.run(request, timeout=600.0)

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=len(requests)) as pool:
                responses = list(pool.map(_fire, requests))
            elapsed = time.perf_counter() - t0
            with ServeClient(handle.url) as client:
                stats = client.stats()
        assert all(r["status"] == 200 for r in responses), \
            [r.get("status") for r in responses]
        return elapsed, responses, stats

    solo_s, solo_responses, _ = _storm(1, 0.0)
    banked_s, banked_responses, stats = _storm(batch, 0.25)

    bit_identical = all(
        json.dumps(a["result"], sort_keys=True)
        == json.dumps(b["result"], sort_keys=True)
        for a, b in zip(solo_responses, banked_responses)
    )
    return {
        "cells": len(requests),
        "max_time": max_time,
        "batch": batch,
        "solo_sec": round(solo_s, 3),
        "banked_sec": round(banked_s, 3),
        "solo_rps": round(len(requests) / solo_s, 2),
        "banked_rps": round(len(requests) / banked_s, 2),
        "throughput_ratio": round(solo_s / banked_s, 2),
        "bank_batches": stats["bank_batches"],
        "banked_cells": stats["banked_cells"],
        "bank_packing_efficiency": stats["bank_packing_efficiency"],
        "bit_identical": bit_identical,
        "floor": BATCH_FLOOR,
    }


def bench_capacity(context, requests, rate, duplicates, max_time, batch):
    """The deterministic open-loop load: rps, latency tail, hit-rate."""
    from repro.serve import ServeClient, run_loadgen, serve_background

    with serve_background(context, jobs=0, batch=batch, batch_wait=0.02,
                          cache=None,
                          queue_limit=requests + 8) as handle:
        report = run_loadgen(handle.url, requests=requests, rate=rate,
                             duplicates=duplicates, seed=0,
                             max_time=max_time, timeout=600.0)
        with ServeClient(handle.url) as client:
            stats = client.stats()
    body = report.to_dict()
    body.update({
        "max_time": max_time,
        "batch": batch,
        "all_ok": report.all_ok,
        "server_coalesce_hit_rate": stats["coalesce_hit_rate"],
        "server_bank_batches": stats["bank_batches"],
        "hit_rate_floor": HITRATE_FLOOR,
    })
    return body


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (fewer cells, shorter "
                             "horizons)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write results JSON here "
                             "(default BENCH_serve.json at the repo root)")
    args = parser.parse_args(argv)

    samples = 48 if args.quick else 120
    seed = 99
    workloads = ["blackscholes", "mcf", "fluidanimate"]

    # Section 1 cells: heavier horizons so a cold execution is honest
    # work against the ~millisecond warm path.
    coalesce_horizon = 60.0 if args.quick else 120.0
    coalesce_cells = [
        ("coordinated-heuristic", workloads[i % len(workloads)], 500 + i)
        for i in range(8 if args.quick else 16)
    ]

    # Section 2 cells: unique bankable cells across two heuristic schemes.
    # The batch width matches the burst so co-arriving cells pack into one
    # full-width bank (wider banks amortize the per-window planning cost).
    batch = 24 if args.quick else 48
    batch_cells = [
        (["coordinated-heuristic", "decoupled-heuristic"][i % 2],
         workloads[i % len(workloads)], 700 + i)
        for i in range(24 if args.quick else 48)
    ]
    batch_horizon = 120.0 if args.quick else 240.0

    t_start = time.perf_counter()
    print(f"== context: samples={samples}, seed={seed} ==")
    t0 = time.perf_counter()
    context = _build_context(samples, seed)
    print(f"  built in {time.perf_counter() - t0:.2f}s")

    results = {
        "quick": args.quick,
        "samples": samples,
        "seed": seed,
    }

    print(f"== coalesce: {len(coalesce_cells)} cells cold vs warm "
          f"(max_time={coalesce_horizon:g}) ==")
    with tempfile.TemporaryDirectory(prefix="bench-serve-store-") as store:
        results["coalesce"] = bench_coalesce(
            context, coalesce_cells, coalesce_horizon, store)
    print(f"  cold p50 {results['coalesce']['cold_p50_ms']:.1f} ms, warm "
          f"p50 {results['coalesce']['warm_p50_ms']:.2f} ms -> "
          f"{results['coalesce']['speedup']:.1f}x")

    print(f"== batching: {len(batch_cells)} unique cells, batch=1 vs "
          f"batch={batch} (max_time={batch_horizon:g}) ==")
    results["batching"] = bench_batching(
        context, batch_cells, batch_horizon, batch)
    print(f"  solo {results['batching']['solo_sec']:.2f}s "
          f"({results['batching']['solo_rps']:.1f} rps), banked "
          f"{results['batching']['banked_sec']:.2f}s "
          f"({results['batching']['banked_rps']:.1f} rps) -> "
          f"{results['batching']['throughput_ratio']:.2f}x, "
          f"{results['batching']['bank_batches']} banks, packing "
          f"{results['batching']['bank_packing_efficiency']}, "
          f"bit-identical: {results['batching']['bit_identical']}")

    n_load = 60 if args.quick else 200
    rate = 50.0 if args.quick else 100.0
    print(f"== capacity: loadgen {n_load} requests @ {rate:g}/s, "
          f"50% duplicates ==")
    results["loadgen"] = bench_capacity(
        context, n_load, rate, 0.5, 6.0, batch)
    print(f"  {results['loadgen']['ok']}/{results['loadgen']['sent']} ok, "
          f"{results['loadgen']['achieved_rps']:.1f} req/s achieved, p50 "
          f"{results['loadgen']['p50_ms']:.1f} ms, p99 "
          f"{results['loadgen']['p99_ms']:.1f} ms, hit-rate "
          f"{results['loadgen']['coalesce_hit_rate']:.0%}")

    results["elapsed_sec"] = round(time.perf_counter() - t_start, 2)

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    )
    from repro.cache import atomic_write_text

    atomic_write_text(out, json.dumps(results, indent=1))
    print(f"wrote {out}")

    failures = []
    if results["coalesce"]["speedup"] < COALESCE_FLOOR:
        failures.append(
            f"warm coalesced p50 only {results['coalesce']['speedup']:.1f}x"
            f" faster than cold (< {COALESCE_FLOOR:g}x)"
        )
    if results["batching"]["throughput_ratio"] < BATCH_FLOOR:
        failures.append(
            f"batched throughput {results['batching']['throughput_ratio']:.2f}x"
            f" < {BATCH_FLOOR:g}x solo at equal workers"
        )
    if not results["batching"]["bit_identical"]:
        failures.append("banked serving diverged from solo serving")
    if results["batching"]["bank_batches"] < 1:
        failures.append("no bank batch ever formed")
    if not results["loadgen"]["all_ok"]:
        failures.append(
            f"loadgen: {results['loadgen']['ok']}/"
            f"{results['loadgen']['sent']} ok "
            f"({results['loadgen']['errors']} errors, "
            f"{results['loadgen']['rejected']} rejected)"
        )
    if results["loadgen"]["coalesce_hit_rate"] < HITRATE_FLOOR:
        failures.append(
            f"loadgen coalesce hit-rate "
            f"{results['loadgen']['coalesce_hit_rate']:.2f} < "
            f"{HITRATE_FLOOR:g}"
        )
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("PASSED")
    return 0


# Invoked explicitly by the CI serve-smoke job (testpaths excludes
# benchmarks/ from the tier-1 run), mirroring bench_perf.py.
def test_serve_smoke():
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
