"""Benchmark: regenerate the Sec. VI-D hardware implementation analysis."""

from conftest import run_once

from repro.experiments import hwcost


def test_hwimpl(benchmark, context):
    result = run_once(benchmark, hwcost.run, context)
    print()
    print(result.render())
    # Shape: the paper's ballpark (hundreds of MACs, low-KB storage).
    assert 200 <= result.macs <= 1500
    assert result.storage_kb < 8.0
    assert result.fixed_point_error < 1e-2
