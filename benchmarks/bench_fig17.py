"""Benchmark: regenerate Figure 17 (input weight sensitivity)."""

from conftest import run_once

from repro.experiments import fig17


def test_fig17(benchmark, context):
    result = run_once(benchmark, fig17.run, context)
    print()
    print(result.render())
    # All three weight designs must synthesize, stabilize, and produce
    # measurable responses; the eager-vs-sluggish ordering itself is weak
    # in this reproduction (see EXPERIMENTS.md, Fig. 17 discussion).
    for weight in fig17.INPUT_WEIGHTS:
        assert result.stats[weight]["actuation_activity"] >= 0.0
        assert result.stats[weight]["settle_mean"] > 0.5
