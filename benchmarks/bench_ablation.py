"""Benchmark: external-signal coordination-channel ablation."""

from conftest import run_once

from repro.experiments import ablation


def test_ablation(benchmark, context):
    result = run_once(benchmark, ablation.run, context)
    print()
    print(result.render())
    # Both variants must complete and stay in the same ballpark; see
    # EXPERIMENTS.md for the (honest) finding that the frozen-externals
    # variant is near parity in this reproduction.
    for workload in result.workloads:
        assert 0.5 < result.exd_ratio[workload] < 2.0
