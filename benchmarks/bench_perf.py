"""Benchmark: the perf tentpole — fast stepping, banking, cache, matrix.

Measures the optimizations this repo's experiment harness stacks and
records them in ``BENCH_perf.json``:

1. **Vectorized period stepping** — ``Board.run_period`` vs scalar
   ``Board.step`` on the same deterministic workload, in steps/sec.  The
   fast path must be >= 2x scalar (it hoists the per-tick placement,
   execution-rate, and power-constant computation out of the loop) while
   remaining bit-identical — equality of final time/energy/temperature is
   asserted here too.
2. **Board bank** — B=16 lockstep aggregate steps/s vs one fast-path
   board (floor: >= 4x), then the **fused-schedule B-sweep**:
   ``run_schedule_bank`` over B in {4, 16, 64, 256}, whose best width
   must beat the per-period bank rate by >= 3x.
3. **Banked characterization** — the full excitation campaign (24
   campaigns, heavy per-period hotplug/placement churn) banked vs
   scalar, bit-identical and >= 1.5x.
4. **Persistent design cache** — cold vs warm ``DesignContext.create`` +
   ``prime_designs`` wall-clock.  Warm must hit the cache for every
   artifact (characterization + all synthesized controllers).
5. **Matrix speedup** — a (schemes x workloads) sweep: the *baseline* is
   what the seed harness did (cold context, scalar stepping, serial); the
   *optimized* path is a warm cache + ``run_period`` + ``--jobs N``.  The
   quick CI mode shrinks the matrix but still asserts the stack wins.

Runs standalone (the CI perf-smoke job) as well as manually:

    PYTHONPATH=src python benchmarks/bench_perf.py [--quick] [--jobs N]
"""

import argparse
import gc
import json
import os
import sys
import tempfile
import time
from pathlib import Path

MAX_SIM_TIME = 60.0  # fixed-work stepping run (workload never finishes)
CELL_MAX_TIME = 120.0  # per-cell cap for the matrix sweep


def _stepping_run(fast, sim_time=MAX_SIM_TIME):
    """One deterministic fixed-work run; returns (steps, seconds, board)."""
    from repro.board import Board, default_xu3_spec
    from repro.workloads import make_mix

    spec = default_xu3_spec()
    board = Board(make_mix("blmc"), spec, seed=13, record=False)
    board.enable_fast_path = fast
    period_steps = spec.period_steps()
    freqs = [1.6, 2.0, 1.2, 0.8, 1.8]
    steps = 0
    i = 0
    gc.disable()
    t0 = time.perf_counter()
    try:
        while not board.done and board.time < sim_time:
            board.set_cluster_frequency("big", freqs[i % len(freqs)])
            board.set_cluster_frequency(
                "little", round(1.0 + 0.2 * (i % 3), 1)
            )
            if fast:
                steps += board.run_period(period_steps)
            else:
                for _ in range(period_steps):
                    if board.done:
                        break
                    board.step()
                    steps += 1
            i += 1
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return steps, elapsed, board


def bench_stepping():
    """Scalar vs fast-path steps/sec, with a bit-identity check."""
    scalar_steps, scalar_s, scalar_board = _stepping_run(False)
    fast_steps, fast_s, fast_board = _stepping_run(True)
    assert scalar_steps == fast_steps, "step counts diverged"
    assert scalar_board.time == fast_board.time, "board time diverged"
    assert scalar_board.energy == fast_board.energy, "energy diverged"
    assert (
        scalar_board.thermal.temperature == fast_board.thermal.temperature
    ), "temperature diverged"
    return {
        "steps": scalar_steps,
        "scalar_steps_per_sec": scalar_steps / scalar_s,
        "fast_steps_per_sec": fast_steps / fast_s,
        "speedup": scalar_s / fast_s,
    }


BANK_BOARDS = 16  # the ISSUE-pinned bank width for the speedup floor


def _bank_actuate(board, p):
    """The shared per-period DVFS schedule (snapped to the platform grid)."""
    board.set_cluster_frequency("big", 0.8 + 0.1 * (p % 5))
    board.set_cluster_frequency("little", 0.5 + 0.05 * (p % 4))


def _bank_run(n_boards, periods):
    """Drive ``n_boards`` through the bank; returns (board-ticks, sec, boards)."""
    from repro.board import Board, BoardBank, default_xu3_spec
    from repro.workloads import make_mix

    spec = default_xu3_spec()
    boards = [Board(make_mix("blmc"), spec, seed=7 + i, record=False)
              for i in range(n_boards)]
    bank = BoardBank(boards, telemetry=None)
    period_steps = spec.period_steps()
    ticks = 0
    gc.disable()
    t0 = time.perf_counter()
    try:
        for p in range(periods):
            if bank.done:
                break
            for board in boards:
                _bank_actuate(board, p)
            ticks += sum(bank.run_period_bank(period_steps))
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return ticks, elapsed, boards


def _single_run(periods):
    """The same schedule on one board via the fast path (the reference)."""
    from repro.board import Board, default_xu3_spec
    from repro.workloads import make_mix

    spec = default_xu3_spec()
    board = Board(make_mix("blmc"), spec, seed=7, record=False)
    period_steps = spec.period_steps()
    steps = 0
    gc.disable()
    t0 = time.perf_counter()
    try:
        for p in range(periods):
            if board.done:
                break
            _bank_actuate(board, p)
            steps += board.run_period(period_steps)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return steps, elapsed, board


def bench_bank(reps=3, periods=300):
    """Bank aggregate steps/s at B=16 vs single-board fast path.

    Both sides repeat ``reps`` times and keep their best rate (the floors
    measure the code, not scheduler noise).  Board 0 of the bank shares
    the single board's seed and schedule, so bit-identity of the final
    state rides along for free.  The horizon is the same in quick mode:
    the bank's plan/schedule caches warm over the first operating-point
    cycle, so short runs understate the steady-state rate the floor pins,
    and 300 periods still costs only ~2 s of wall clock.
    """
    single_rate = 0.0
    single_board = None
    for _ in range(reps):
        steps, elapsed, board = _single_run(periods)
        single_rate = max(single_rate, steps / elapsed)
        single_board = board
    bank_rate = 0.0
    bank_boards = None
    for _ in range(reps):
        ticks, elapsed, boards = _bank_run(BANK_BOARDS, periods)
        bank_rate = max(bank_rate, ticks / elapsed)
        bank_boards = boards
    lane0 = bank_boards[0]
    assert lane0.time == single_board.time, "bank lane 0 time diverged"
    assert lane0.energy == single_board.energy, "bank lane 0 energy diverged"
    assert (
        lane0.thermal.temperature == single_board.thermal.temperature
    ), "bank lane 0 temperature diverged"
    return {
        "boards": BANK_BOARDS,
        "periods": periods,
        "single_steps_per_sec": single_rate,
        "bank_steps_per_sec": bank_rate,
        "speedup": bank_rate / single_rate,
    }


SWEEP_WIDTHS = (4, 16, 64, 256)  # the ISSUE-pinned B-sweep
SWEEP_QUICK_WIDTHS = (4, 16, 64)  # CI smoke drops the 256-lane point
SWEEP_FLOOR = 3.0  # best-B fused aggregate vs the per-period B=16 bank


def _sweep_schedule(periods):
    """``_bank_actuate``'s schedule as explicit per-period command lists."""
    fb = [0.8 + 0.1 * (p % 5) for p in range(periods)]
    fl = [0.5 + 0.05 * (p % 4) for p in range(periods)]
    return fb, fl


def bench_bank_sweep(reps=3, periods=300, widths=SWEEP_WIDTHS):
    """Fused-kernel aggregate steps/s across bank widths.

    ``BoardBank.run_schedule_bank`` fuses whole blocks of the same DVFS
    schedule ``bench_bank`` drives period-by-period, so lane 0 at every
    width must finish bit-identical to the single fast-path reference —
    asserted here along with ``fused_ticks`` actually covering the run
    (a silently never-fusing kernel would still pass the identity check).
    The floor is *relative*: the best width must beat the per-period
    B=16 bank rate by ``SWEEP_FLOOR``x on the same machine, which holds
    on a single core because fusion removes interpreted per-period
    driver work rather than adding parallelism.
    """
    from repro.board import Board, BoardBank, default_xu3_spec
    from repro.workloads import make_mix

    steps_ref, _, ref_board = _single_run(periods)
    fb, fl = _sweep_schedule(periods)
    spec = default_xu3_spec()
    points = []
    for width in widths:
        rate = 0.0
        fused_frac = 0.0
        lane0 = None
        for _ in range(reps):
            boards = [Board(make_mix("blmc"), spec, seed=7 + i,
                            record=False) for i in range(width)]
            bank = BoardBank(boards, telemetry=None)
            gc.disable()
            t0 = time.perf_counter()
            try:
                executed = bank.run_schedule_bank(fb, fl)
                elapsed = time.perf_counter() - t0
            finally:
                gc.enable()
            rate = max(rate, sum(executed) / elapsed)
            fused_frac = bank.fused_ticks / max(1, bank.vector_ticks)
            lane0 = boards[0]
        assert lane0.time == ref_board.time, \
            f"B={width} lane 0 time diverged"
        assert lane0.energy == ref_board.energy, \
            f"B={width} lane 0 energy diverged"
        assert (
            lane0.thermal.temperature == ref_board.thermal.temperature
        ), f"B={width} lane 0 temperature diverged"
        assert sum(executed) == steps_ref * width, \
            f"B={width} step counts diverged"
        assert fused_frac > 0.9, \
            f"B={width} fused kernel covered only {fused_frac:.1%} of ticks"
        points.append({"boards": width, "steps_per_sec": rate,
                       "fused_frac": fused_frac})
    best = max(points, key=lambda pt: pt["steps_per_sec"])
    return {
        "periods": periods,
        "points": points,
        "best_boards": best["boards"],
        "best_steps_per_sec": best["steps_per_sec"],
        "bit_identical": True,
        "floor": SWEEP_FLOOR,
    }


CHAR_FLOOR = 1.5  # banked characterization vs the scalar campaign loop


def bench_characterize(samples=96, reps=2):
    """Banked vs scalar excitation campaigns, bit-identity asserted.

    Doubling the program list gives 24 concurrent campaigns (B=24) with
    distinct seeds per duplicate — the bank's design regime — while
    ``samples=96`` keeps both sides around a second and amortizes the
    bank's plan-cache warmup (shorter campaigns understate the
    steady-state rate the floor pins).  The excitation
    actuates cores *and* placement every period, so this measures the
    churn-tolerant per-lane re-plan path, not the fused DVFS kernel.
    """
    import numpy as np
    from repro.board import default_xu3_spec
    from repro.core.characterize import characterize_board

    programs = ("swaptions", "vips", "astar", "perlbench", "milc",
                "namd") * 2
    spec = default_xu3_spec()
    scalar_s = float("inf")
    banked_s = float("inf")
    scalar_res = banked_res = None
    for _ in range(reps):
        gc.disable()
        t0 = time.perf_counter()
        try:
            scalar_res = characterize_board(
                spec, programs, samples_per_program=samples, banked=False
            )
            scalar_s = min(scalar_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            banked_res = characterize_board(
                spec, programs, samples_per_program=samples, banked=True
            )
            banked_s = min(banked_s, time.perf_counter() - t0)
        finally:
            gc.enable()
    identical = all(
        np.array_equal(getattr(scalar_res, f).inputs,
                       getattr(banked_res, f).inputs)
        and np.array_equal(getattr(scalar_res, f).outputs,
                           getattr(banked_res, f).outputs)
        for f in ("hw_data", "sw_data", "joint_data")
    )
    return {
        "campaigns": 2 * len(programs),
        "samples": samples,
        "scalar_sec": scalar_s,
        "banked_sec": banked_s,
        "speedup": scalar_s / banked_s,
        "bit_identical": identical,
        "floor": CHAR_FLOOR,
    }


def bench_cache(samples, seed, cache_dir):
    """Cold vs warm context construction through the persistent cache."""
    from repro.experiments import DesignContext, prime_designs

    t0 = time.perf_counter()
    cold = DesignContext.create(samples_per_program=samples, seed=seed,
                                cache=cache_dir)
    prime_designs(cold)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = DesignContext.create(samples_per_program=samples, seed=seed,
                                cache=cache_dir)
    prime_designs(warm)
    warm_s = time.perf_counter() - t0
    return {
        "cold_context_sec": cold_s,
        "warm_context_sec": warm_s,
        "speedup": cold_s / max(warm_s, 1e-9),
        "warm_hits": warm.cache.hits,
        "warm_misses": warm.cache.misses,
    }, warm


def bench_matrix(schemes, workloads, samples, seed, cache_dir, jobs):
    """Seed-style baseline vs the optimized stack on one matrix."""
    from repro.board import Board
    from repro.experiments import DesignContext, prime_designs, run_scheme_matrix

    # Baseline: what the harness did before this PR — build the context
    # from scratch (no cache), scalar stepping, serial cells.
    t0 = time.perf_counter()
    base_ctx = DesignContext.create(samples_per_program=samples, seed=seed,
                                    cache=None)
    prime_designs(base_ctx, schemes)
    Board.enable_fast_path = False
    try:
        baseline = run_scheme_matrix(schemes, workloads, base_ctx,
                                     max_time=CELL_MAX_TIME)
    finally:
        Board.enable_fast_path = True
    baseline_s = time.perf_counter() - t0

    # Optimized: warm persistent cache + run_period + worker pool.
    t0 = time.perf_counter()
    opt_ctx = DesignContext.create(samples_per_program=samples, seed=seed,
                                   cache=cache_dir)
    prime_designs(opt_ctx, schemes)
    optimized = run_scheme_matrix(schemes, workloads, opt_ctx,
                                  max_time=CELL_MAX_TIME, jobs=jobs)
    optimized_s = time.perf_counter() - t0

    identical = all(
        baseline[w][s].execution_time == optimized[w][s].execution_time
        and baseline[w][s].energy == optimized[w][s].energy
        for w in baseline
        for s in baseline[w]
    )
    cells = len(schemes) * len(workloads)
    return {
        "schemes": list(schemes),
        "workloads": list(workloads),
        "jobs": jobs,
        "cells": cells,
        "baseline_sec": baseline_s,
        "baseline_sec_per_cell": baseline_s / cells,
        "optimized_sec": optimized_s,
        "optimized_sec_per_cell": optimized_s / cells,
        "speedup": baseline_s / optimized_s,
        "bit_identical": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small matrix, relaxed floors")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the optimized matrix "
                             "(default: min(4, cpu count))")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_perf.json "
                             "next to this script's repo root)")
    args = parser.parse_args(argv)

    jobs = args.jobs or min(4, os.cpu_count() or 1)
    if args.quick:
        samples, seed = 40, 3
        schemes = ["coordinated-heuristic", "yukta-hwssv-osssv"]
        workloads = ["blackscholes", "gamess"]
    else:
        samples, seed = 120, 99
        schemes = ["coordinated-heuristic", "decoupled-heuristic",
                   "yukta-hwssv-osheur", "yukta-hwssv-osssv"]
        workloads = ["mcf", "gamess", "blackscholes", "x264"]

    results = {"quick": args.quick, "jobs": jobs, "cpu_count": os.cpu_count()}

    print("== stepping: scalar vs run_period ==")
    results["stepping"] = bench_stepping()
    print(f"  scalar {results['stepping']['scalar_steps_per_sec']:,.0f} "
          f"steps/s, fast {results['stepping']['fast_steps_per_sec']:,.0f} "
          f"steps/s -> {results['stepping']['speedup']:.2f}x")

    print(f"== bank: B={BANK_BOARDS} lockstep vs single-board fast path ==")
    results["bank"] = bench_bank()
    print(f"  single {results['bank']['single_steps_per_sec']:,.0f} steps/s, "
          f"bank {results['bank']['bank_steps_per_sec']:,.0f} aggregate "
          f"steps/s -> {results['bank']['speedup']:.2f}x")

    widths = SWEEP_QUICK_WIDTHS if args.quick else SWEEP_WIDTHS
    print(f"== bank sweep: fused schedule kernel, B in {widths} ==")
    results["bank_sweep"] = bench_bank_sweep(widths=widths)
    for pt in results["bank_sweep"]["points"]:
        print(f"  B={pt['boards']:>3}: {pt['steps_per_sec']:,.0f} aggregate "
              f"steps/s (fused {pt['fused_frac']:.1%})")
    sweep_x = (results["bank_sweep"]["best_steps_per_sec"]
               / results["bank"]["bank_steps_per_sec"])
    results["bank_sweep"]["speedup_vs_bank"] = sweep_x
    print(f"  best B={results['bank_sweep']['best_boards']} -> "
          f"{sweep_x:.2f}x the per-period B={BANK_BOARDS} bank")

    print("== characterize: banked vs scalar campaigns ==")
    results["characterize"] = bench_characterize()
    print(f"  scalar {results['characterize']['scalar_sec']:.2f}s, banked "
          f"{results['characterize']['banked_sec']:.2f}s -> "
          f"{results['characterize']['speedup']:.2f}x, bit-identical: "
          f"{results['characterize']['bit_identical']}")

    with tempfile.TemporaryDirectory(prefix="bench-perf-cache-") as cache_dir:
        print("== design cache: cold vs warm context ==")
        results["cache"], _ = bench_cache(samples, seed, cache_dir)
        print(f"  cold {results['cache']['cold_context_sec']:.2f}s, warm "
              f"{results['cache']['warm_context_sec']:.3f}s -> "
              f"{results['cache']['speedup']:.0f}x "
              f"({results['cache']['warm_hits']} cache hits)")

        print(f"== matrix: serial cold scalar vs jobs={jobs} warm fast ==")
        results["matrix"] = bench_matrix(schemes, workloads, samples, seed,
                                         cache_dir, jobs)
        print(f"  baseline {results['matrix']['baseline_sec']:.1f}s, "
              f"optimized {results['matrix']['optimized_sec']:.1f}s -> "
              f"{results['matrix']['speedup']:.2f}x, bit-identical: "
              f"{results['matrix']['bit_identical']}")

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    )
    # Atomic write: an interrupted benchmark must never leave a truncated
    # BENCH_perf.json for CI artifact collection to trip over.
    from repro.cache import atomic_write_text

    atomic_write_text(out, json.dumps(results, indent=1))
    print(f"wrote {out}")

    failures = []
    if results["stepping"]["speedup"] < 2.0:
        failures.append(
            f"run_period speedup {results['stepping']['speedup']:.2f}x < 2x"
        )
    if results["bank"]["speedup"] < 4.0:
        failures.append(
            f"bank speedup {results['bank']['speedup']:.2f}x < 4x at "
            f"B={results['bank']['boards']}"
        )
    if results["bank_sweep"]["speedup_vs_bank"] < SWEEP_FLOOR:
        failures.append(
            f"fused sweep best {results['bank_sweep']['speedup_vs_bank']:.2f}x"
            f" < {SWEEP_FLOOR}x the per-period bank "
            f"(B={results['bank_sweep']['best_boards']})"
        )
    if not results["characterize"]["bit_identical"]:
        failures.append("banked characterization diverged from scalar")
    if results["characterize"]["speedup"] < CHAR_FLOOR:
        failures.append(
            f"banked characterization {results['characterize']['speedup']:.2f}x"
            f" < {CHAR_FLOOR}x"
        )
    if results["cache"]["warm_misses"] != 0:
        failures.append(
            f"warm context missed the cache "
            f"{results['cache']['warm_misses']} time(s)"
        )
    if not results["matrix"]["bit_identical"]:
        failures.append("optimized matrix diverged from the baseline")
    # The matrix floor measures pool parallelism: a box with fewer cores
    # than requested workers cannot exhibit it, so the check is *skipped*
    # (recorded as such) rather than silently passed against a lower bar.
    cpu_count = os.cpu_count() or 1
    if cpu_count < jobs:
        results["matrix"]["floor"] = None
        results["matrix"]["floor_skipped"] = (
            f"cpu_count {cpu_count} < jobs {jobs}: no parallelism to measure"
        )
        print(f"  matrix floor SKIPPED: {results['matrix']['floor_skipped']}")
    else:
        matrix_floor = 1.5 if (args.quick or cpu_count < 4) else 3.0
        results["matrix"]["floor"] = matrix_floor
        results["matrix"]["floor_skipped"] = None
        if results["matrix"]["speedup"] < matrix_floor:
            failures.append(
                f"matrix speedup {results['matrix']['speedup']:.2f}x < "
                f"{matrix_floor}x"
            )
    atomic_write_text(out, json.dumps(results, indent=1))
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("PASSED")
    return 0


# Keep pytest collection from double-running the sweep; this file is a
# standalone script like bench_telemetry.py's CI mode.
def test_perf_smoke():
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
