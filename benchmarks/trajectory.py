"""Bench trajectory: append BENCH_*.json to a history log, hold the floors.

Each benchmark (``bench_perf.py``, ``bench_runtime.py``, ``bench_obs.py``)
writes a ``BENCH_*.json`` artifact and enforces its own floors when it
runs.  This tool is the cross-run ledger: it folds whatever artifacts are
present into one timestamped line of ``BENCH_history.jsonl`` (the CI
bench-trajectory job caches that file across runs, so the log accumulates
a performance trajectory), then re-checks every documented floor against
the collected numbers — a second tripwire that also catches a stale or
hand-edited artifact sneaking past its generator.

    PYTHONPATH=src python benchmarks/trajectory.py [--root DIR]
        [--history FILE] [--no-append]
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

ARTIFACTS = ("BENCH_perf.json", "BENCH_runtime.json", "BENCH_obs.json",
             "BENCH_rack.json", "BENCH_serve.json")
HISTORY = "BENCH_history.jsonl"


def _floors_perf(perf):
    if perf["stepping"]["speedup"] < 2.0:
        yield (f"perf: run_period speedup "
               f"{perf['stepping']['speedup']:.2f}x < 2x")
    if perf["bank"]["speedup"] < 4.0:
        yield f"perf: bank speedup {perf['bank']['speedup']:.2f}x < 4x"
    sweep = perf.get("bank_sweep", {})
    if sweep:
        if not sweep.get("bit_identical", True):
            yield "perf: fused bank sweep diverged from the fast path"
        floor = sweep.get("floor", 3.0)
        if sweep["speedup_vs_bank"] < floor:
            yield (f"perf: fused sweep best {sweep['speedup_vs_bank']:.2f}x"
                   f" < {floor}x the per-period bank")
    char = perf.get("characterize", {})
    if char:
        if not char.get("bit_identical", True):
            yield "perf: banked characterization diverged from scalar"
        floor = char.get("floor", 1.5)
        if char["speedup"] < floor:
            yield (f"perf: banked characterization "
                   f"{char['speedup']:.2f}x < {floor}x")
    if perf["cache"].get("warm_misses", 0) != 0:
        yield (f"perf: warm context missed the cache "
               f"{perf['cache']['warm_misses']} time(s)")
    matrix = perf.get("matrix", {})
    if matrix and not matrix.get("bit_identical", True):
        yield "perf: optimized matrix diverged from the baseline"
    floor = matrix.get("floor")
    if floor and matrix["speedup"] < floor:
        yield f"perf: matrix speedup {matrix['speedup']:.2f}x < {floor}x"


def _floors_runtime(runtime):
    if runtime["journal"]["record_per_sec"] < 50.0:
        yield (f"runtime: journal record rate "
               f"{runtime['journal']['record_per_sec']:.0f}/s < 50/s")
    if runtime["journal"]["get_per_sec"] < 100.0:
        yield (f"runtime: journal get rate "
               f"{runtime['journal']['get_per_sec']:.0f}/s < 100/s")
    if not runtime["supervision"]["identical"]:
        yield "runtime: supervised results differ from the plain pool"
    if runtime["supervision"]["overhead_x"] > 25.0:
        yield (f"runtime: supervision overhead "
               f"{runtime['supervision']['overhead_x']:.1f}x > 25x")


def _floors_obs(obs):
    profiler = obs["profiler"]
    limit = profiler.get("limit_frac", 0.05)
    if profiler["overhead_frac"] >= limit:
        yield (f"obs: profiler overhead "
               f"{profiler['overhead_frac'] * 100:.2f}% >= "
               f"{limit * 100:.0f}%")


def _floors_rack(rack):
    overhead = rack["overhead"]
    limit = overhead.get("limit_frac", 0.05)
    if overhead["overhead_frac"] >= limit:
        yield (f"rack: control overhead "
               f"{overhead['overhead_frac'] * 100:.2f}% >= "
               f"{limit * 100:.0f}% of stepping")
    throughput = rack["throughput"]
    if not throughput.get("bit_identical", True):
        yield "rack: banked campaign diverged from scalar stepping"
    floor = throughput.get("floor_steps_per_sec", 2000.0)
    for cell in throughput["cells"]:
        if cell["banked_steps_per_sec"] < floor:
            yield (f"rack: banked throughput at n={cell['n_boards']} "
                   f"{cell['banked_steps_per_sec']:.0f} steps/s < "
                   f"{floor:.0f}")
        if cell["scalar_steps_per_sec"] < floor:
            yield (f"rack: scalar throughput at n={cell['n_boards']} "
                   f"{cell['scalar_steps_per_sec']:.0f} steps/s < "
                   f"{floor:.0f}")


def _floors_serve(serve):
    coalesce = serve["coalesce"]
    floor = coalesce.get("floor", 10.0)
    if coalesce["speedup"] < floor:
        yield (f"serve: warm coalesced p50 only {coalesce['speedup']:.1f}x "
               f"faster than cold (< {floor:g}x)")
    batching = serve["batching"]
    floor = batching.get("floor", 1.5)
    if batching["throughput_ratio"] < floor:
        yield (f"serve: batched throughput "
               f"{batching['throughput_ratio']:.2f}x < {floor:g}x solo "
               f"at equal workers")
    if not batching.get("bit_identical", True):
        yield "serve: banked serving diverged from solo serving"
    if batching.get("bank_batches", 0) < 1:
        yield "serve: no bank batch ever formed"
    loadgen = serve["loadgen"]
    if not loadgen.get("all_ok", False):
        yield (f"serve: loadgen {loadgen['ok']}/{loadgen['sent']} ok "
               f"({loadgen.get('errors', '?')} errors, "
               f"{loadgen.get('rejected', '?')} rejected)")
    floor = loadgen.get("hit_rate_floor", 0.2)
    if loadgen["coalesce_hit_rate"] < floor:
        yield (f"serve: loadgen coalesce hit-rate "
               f"{loadgen['coalesce_hit_rate']:.2f} < {floor:g}")


FLOORS = {
    "BENCH_perf.json": _floors_perf,
    "BENCH_runtime.json": _floors_runtime,
    "BENCH_obs.json": _floors_obs,
    "BENCH_rack.json": _floors_rack,
    "BENCH_serve.json": _floors_serve,
}


def _git_sha(root):
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=root,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except OSError:
        return None


def collect(root):
    """Load every present BENCH artifact; returns ``{name: dict}``."""
    root = Path(root)
    found = {}
    for name in ARTIFACTS:
        path = root / name
        if not path.is_file():
            continue
        try:
            found[name] = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise SystemExit(f"unreadable benchmark artifact {path}: {exc}")
    return found


def check_floors(artifacts):
    """Every floor violation across the collected artifacts."""
    failures = []
    for name, payload in artifacts.items():
        try:
            failures.extend(FLOORS[name](payload))
        except KeyError as exc:
            failures.append(f"{name}: missing expected field {exc}")
    return failures


def append_history(artifacts, history_path, root):
    entry = {
        "t": round(time.time(), 1),
        "sha": _git_sha(root),
        "benches": {name.removeprefix("BENCH_").removesuffix(".json"): data
                    for name, data in artifacts.items()},
    }
    history_path = Path(history_path)
    with open(history_path, "a") as fh:
        fh.write(json.dumps(entry) + "\n")
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="directory holding BENCH_*.json "
                             "(default: repo root)")
    parser.add_argument("--history", default=None,
                        help=f"history file (default <root>/{HISTORY})")
    parser.add_argument("--no-append", action="store_true",
                        help="check floors only; do not extend the history")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parents[1]
    artifacts = collect(root)
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {root}; run the benchmarks "
              "first", file=sys.stderr)
        return 2

    for name in artifacts:
        print(f"collected {name}")
    if not args.no_append:
        history = args.history or (root / HISTORY)
        entry = append_history(artifacts, history, root)
        count = sum(1 for _ in open(history))
        print(f"appended to {history} (sha={entry['sha']}, "
              f"{count} entries)")

    failures = check_floors(artifacts)
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(f"PASSED: all floors hold across {len(artifacts)} artifact(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
