"""The fault injector: replays a campaign against a live board.

The injector owns every mutation a fault makes — sensor hooks, actuator
flags, and (revertible) plant-parameter changes — so transient faults can
be cleanly undone and experiment code never edits board state by hand.
Call :meth:`FaultInjector.advance` after each simulator step (or at least
once per control period); it applies events whose start time has passed
and reverts transient events whose window has closed.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..board.specs import BIG, LITTLE
from .events import FaultCampaign, FaultEvent
from .hooks import ActuatorFaultState, SensorFault

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`~repro.faults.events.FaultCampaign` to a board.

    Parameters
    ----------
    board:
        The live :class:`~repro.board.Board`.
    campaign:
        The fault schedule; a bare :class:`FaultEvent` is promoted to a
        one-event campaign.
    seed:
        Seeds the per-event RNGs of ``temp-noise`` faults, so two
        identically-seeded injectors produce identical noisy traces.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySession`; defaults to
        the process-wide session.  Each apply/revert edge is counted,
        marked in the span trace, and triggers a flight-recorder dump.
    """

    def __init__(self, board, campaign, seed=0, telemetry=None):
        if isinstance(campaign, FaultEvent):
            campaign = FaultCampaign([campaign])
        self.board = board
        self.campaign = campaign
        self.seed = int(seed)
        if telemetry is None:
            from ..telemetry import active_session

            telemetry = active_session()
        self.telemetry = telemetry
        # Reuse an actuator-fault state another injector already installed
        # so stacked injectors (e.g. the legacy one-shot helpers) compose.
        if isinstance(getattr(board, "fault_hooks", None), ActuatorFaultState):
            self._actuators = board.fault_hooks
        else:
            self._actuators = ActuatorFaultState()
            board.fault_hooks = self._actuators
        self._reverters = {}  # event -> callable undoing its effect
        self._done = set()  # transient events already applied and reverted

    # ------------------------------------------------------------------
    @property
    def active_events(self):
        return [e for e in self._reverters]

    def advance(self):
        """Apply newly-due events; revert transient events whose window closed."""
        now = self.board.time
        for index, event in enumerate(self.campaign):
            applied = event in self._reverters
            if not applied and event not in self._done and event.active_at(now):
                self._reverters[event] = self._apply(event, index)
                self._note(event, "applied")
            elif applied and not event.active_at(now):
                self._reverters.pop(event)()
                self._done.add(event)
                self._note(event, "reverted")
        return self

    def _note(self, event, phase):
        """Publish one fault edge through telemetry (no-op when disabled)."""
        tel = self.telemetry
        if tel is None:
            return
        tel.fault_events.labels(kind=event.kind, phase=phase).inc()
        tel.instant(f"fault.{phase}", cat="fault", kind=event.kind,
                    cluster=event.cluster, board_time=self.board.time)
        tel.dump_flight(f"fault-{phase}-{event.kind}",
                        extra={"event": event.describe()})

    def detach(self):
        """Revert every active event and unhook from the board."""
        for event in list(self._reverters):
            self._reverters.pop(event)()
            self._done.add(event)
        if self.board.fault_hooks is self._actuators and not self._actuators.any_active:
            self.board.fault_hooks = None
        return self

    # ------------------------------------------------------------------
    # Per-kind application (each returns a reverter closure)
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent, index):
        kind = event.kind
        if kind.startswith("temp-"):
            fault = self._sensor_fault(kind[len("temp-"):], event, index)
            return _install_sensor_hook(self.board.temp_sensor, fault)
        if kind.startswith("power-"):
            fault = self._sensor_fault(kind[len("power-"):], event, index)
            return _install_sensor_hook(
                self.board.power_sensors[event.cluster], fault
            )
        if kind == "dvfs-ignored":
            self._actuators.set_dvfs_ignored(event.cluster, True)
            return lambda: self._actuators.set_dvfs_ignored(event.cluster, False)
        if kind == "hotplug-stuck":
            self._actuators.set_hotplug_stuck(event.cluster, True)
            return lambda: self._actuators.set_hotplug_stuck(event.cluster, False)
        if kind == "placement-stuck":
            self._actuators.set_placement_stuck(True)
            return lambda: self._actuators.set_placement_stuck(False)
        if kind == "heatsink-detach":
            thermal = self.board.thermal
            original = thermal.resistance
            thermal.resistance = original * event.magnitude
            def revert():
                thermal.resistance = original
            return revert
        if kind == "capacitance-aging":
            spec = self.board.spec
            original = spec.cluster(event.cluster)
            aged = replace(
                original, ceff_dynamic=original.ceff_dynamic * event.magnitude
            )
            self._set_cluster_spec(event.cluster, aged)
            return lambda: self._set_cluster_spec(event.cluster, original)
        raise ValueError(f"unhandled fault kind {kind!r}")  # pragma: no cover

    def _sensor_fault(self, mode, event, index):
        rng = None
        if mode == "noise":
            rng = np.random.default_rng(self.seed + index)
        return SensorFault(mode, magnitude=event.magnitude or 0.0, rng=rng)

    def _set_cluster_spec(self, cluster_name, cluster_spec):
        if cluster_name == BIG:
            self.board.spec.big = cluster_spec
        else:
            self.board.spec.little = cluster_spec


def _install_sensor_hook(sensor, fault):
    """Chain a fault hook onto a sensor; returns the reverter."""
    previous = sensor.fault_hook
    if previous is None:
        sensor.fault_hook = fault
    else:
        sensor.fault_hook = lambda value: fault(previous(value))

    def revert():
        sensor.fault_hook = previous

    return revert
