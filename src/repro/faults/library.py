"""Named fault campaigns plus the legacy one-shot injection helpers.

The campaign constructors are the vocabulary the resilience experiment
sweeps over; ``inject_heatsink_fault`` / ``inject_sensor_fault`` are the
original ad-hoc helpers from ``experiments/exhaustion.py``, reimplemented
on top of the campaign machinery (immediate, permanent events) with
byte-identical board effects so the exhaustion results are unchanged.
"""

from __future__ import annotations

from ..board.specs import BIG
from .events import FaultCampaign, FaultEvent
from .injector import FaultInjector

__all__ = [
    "heatsink_detachment",
    "sensor_miscalibration",
    "default_fault_matrix",
    "inject_heatsink_fault",
    "inject_sensor_fault",
]


def heatsink_detachment(start=0.0, duration=None, resistance_factor=2.0,
                        capacitance_factor=1.6):
    """Detached heatsink plus silicon aging (the Sec. II-B plant fault).

    Thermal resistance jumps by ``resistance_factor`` and the big cluster's
    switched capacitance by ``capacitance_factor`` — far outside any
    reasonable modelling guardband, but still stabilizable at a degraded
    operating point.
    """
    events = [
        FaultEvent("heatsink-detach", start=start, duration=duration,
                   magnitude=resistance_factor),
    ]
    if capacitance_factor and capacitance_factor != 1.0:
        events.append(
            FaultEvent("capacitance-aging", start=start, duration=duration,
                       cluster=BIG, magnitude=capacitance_factor)
        )
    life = "transient" if duration is not None else "permanent"
    return FaultCampaign(events, name=f"heatsink-detach ({life})")


def sensor_miscalibration(start=0.0, duration=None, bias=-15.0):
    """Temperature sensor under-reads by ``|bias|`` degC (TMU miscalibration)."""
    return FaultCampaign(
        [FaultEvent("temp-bias", start=start, duration=duration, magnitude=bias)],
        name="temp-sensor miscalibration",
    )


def default_fault_matrix(fault_time=60.0, quick=False):
    """The resilience sweep's fault matrix: (name, campaign) pairs.

    ``quick=True`` keeps the three scenarios that exercise every monitor
    class (plant fault, transient plant fault, actuator fault) — the
    reduced matrix the benchmark and CI run.
    """
    t = float(fault_time)
    # The permanent detach (x2 resistance) is the stealthy case: the SSV
    # controller absorbs it thermally, so only the deviation monitor fires.
    # The transient detach is made harsher (x3) so the stock firmware trips
    # and the fast override path is exercised too.
    matrix = [
        ("heatsink-detach", heatsink_detachment(start=t)),
        ("heatsink-detach-transient",
         heatsink_detachment(start=t, duration=30.0, resistance_factor=3.0)),
        ("dvfs-ignored-transient", FaultCampaign(
            [FaultEvent("dvfs-ignored", start=t, duration=25.0, cluster=BIG)],
            name="dvfs-ignored (transient)")),
    ]
    if quick:
        return matrix
    matrix += [
        ("temp-bias", sensor_miscalibration(start=t)),
        ("temp-stuck-transient", FaultCampaign(
            [FaultEvent("temp-stuck", start=t, duration=20.0)],
            name="temp-stuck (transient)")),
        ("power-dropout-transient", FaultCampaign(
            [FaultEvent("power-dropout", start=t, duration=20.0, cluster=BIG)],
            name="big-power dropout (transient)")),
        ("hotplug-stuck", FaultCampaign(
            [FaultEvent("hotplug-stuck", start=t, cluster=BIG)],
            name="big-hotplug stuck (permanent)")),
        ("capacitance-aging", FaultCampaign(
            [FaultEvent("capacitance-aging", start=t, cluster=BIG,
                        magnitude=1.5)],
            name="capacitance aging (permanent)")),
    ]
    return matrix


# ----------------------------------------------------------------------
# Legacy helpers (formerly in experiments/exhaustion.py)
# ----------------------------------------------------------------------
def inject_heatsink_fault(board, resistance_factor=2.0, capacitance_factor=1.6):
    """Degrade the thermal path and raise switching capacitance, immediately.

    Models a detached heatsink plus silicon aging — a plant far outside
    any reasonable modelling guardband, but one a robust controller can
    still *stabilize* (at a lower operating point).  Implemented as a
    permanent :func:`heatsink_detachment` campaign applied at the board's
    current time; returns the installed :class:`FaultInjector`.
    """
    campaign = heatsink_detachment(
        start=board.time,
        resistance_factor=resistance_factor,
        capacitance_factor=capacitance_factor,
    )
    return FaultInjector(board, campaign).advance()


def inject_sensor_fault(board, bias=-15.0):
    """Miscalibrate the temperature sensor: it under-reads by ``bias`` degC.

    The controller then regulates the *measured* temperature to its target
    while the true die temperature runs ~12 degC hotter — until the stock
    firmware (which reads the true thermal state) intervenes.  The
    controller cannot absorb this: the sustained firmware override is the
    OS-visible exhaustion signal.  Implemented as a permanent ``temp-bias``
    event applied at the board's current time; returns the injector.
    """
    campaign = sensor_miscalibration(start=board.time, bias=bias)
    return FaultInjector(board, campaign).advance()
