"""Declarative fault events and campaigns.

A :class:`FaultEvent` names *what* breaks (a sensor, an actuator, or the
plant itself), *when* it breaks (board time), and *for how long* (transient
faults revert; permanent ones do not).  A :class:`FaultCampaign` is an
ordered set of events that the
:class:`~repro.faults.injector.FaultInjector` replays against a live board
through the hook layer — no experiment code ever edits board internals by
hand.

Fault taxonomy (see docs/RESILIENCE.md):

===================  ==========================================  =========
kind                 effect                                      target
===================  ==========================================  =========
``temp-bias``        temperature sensor reads +magnitude degC    board
``temp-stuck``       temperature sensor latches its next value   board
``temp-dropout``     temperature sensor returns the sentinel     board
``temp-noise``       extra Gaussian noise (rms = magnitude)      board
``power-bias``       power sensor reads +magnitude W             cluster
``power-stuck``      power sensor latches its next value         cluster
``power-dropout``    power sensor returns the sentinel           cluster
``dvfs-ignored``     frequency writes are silently dropped       cluster
``hotplug-stuck``    core-count writes are silently dropped      cluster
``placement-stuck``  placement-knob writes are silently dropped  board
``heatsink-detach``  thermal resistance scales by magnitude      board
``capacitance-aging``  switched capacitance scales by magnitude  cluster
===================  ==========================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..board.specs import BIG, LITTLE

__all__ = ["FaultEvent", "FaultCampaign", "FAULT_KINDS", "CLUSTER_KINDS"]

FAULT_KINDS = frozenset(
    {
        "temp-bias",
        "temp-stuck",
        "temp-dropout",
        "temp-noise",
        "power-bias",
        "power-stuck",
        "power-dropout",
        "dvfs-ignored",
        "hotplug-stuck",
        "placement-stuck",
        "heatsink-detach",
        "capacitance-aging",
    }
)

# Kinds that target one cluster (and therefore require ``cluster=``).
CLUSTER_KINDS = frozenset(
    {
        "power-bias",
        "power-stuck",
        "power-dropout",
        "dvfs-ignored",
        "hotplug-stuck",
        "capacitance-aging",
    }
)

# Kinds whose effect needs a magnitude (bias in degC/W, noise rms, or a
# multiplicative plant factor); the rest are pure on/off modes.
_MAGNITUDE_KINDS = frozenset(
    {"temp-bias", "temp-noise", "power-bias", "heatsink-detach",
     "capacitance-aging"}
)

_DEFAULT_MAGNITUDE = {"heatsink-detach": 2.0, "capacitance-aging": 1.6}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start:
        Board time (s) at which the fault becomes active.
    duration:
        Seconds the fault stays active; ``None`` means permanent.
    cluster:
        ``"big"`` or ``"little"`` for cluster-targeted kinds, else ``None``.
    magnitude:
        Bias (degC / W), extra-noise rms, or multiplicative plant factor,
        depending on ``kind``.
    """

    kind: str
    start: float = 0.0
    duration: float = None
    cluster: str = None
    magnitude: float = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive or None, got {self.duration}")
        if self.kind in CLUSTER_KINDS:
            if self.cluster not in (BIG, LITTLE):
                raise ValueError(
                    f"{self.kind!r} targets a cluster; cluster must be "
                    f"{BIG!r} or {LITTLE!r}, got {self.cluster!r}"
                )
        elif self.cluster is not None:
            raise ValueError(f"{self.kind!r} is board-wide; cluster must be None")
        if self.magnitude is None and self.kind in _MAGNITUDE_KINDS:
            default = _DEFAULT_MAGNITUDE.get(self.kind)
            if default is None:
                raise ValueError(f"{self.kind!r} requires a magnitude")
            object.__setattr__(self, "magnitude", default)

    @property
    def permanent(self):
        return self.duration is None

    @property
    def end(self):
        """Board time at which the fault reverts (``inf`` if permanent)."""
        return float("inf") if self.permanent else self.start + self.duration

    def active_at(self, time):
        return self.start <= time < self.end

    def describe(self):
        target = f" [{self.cluster}]" if self.cluster else ""
        life = "permanent" if self.permanent else f"for {self.duration:g}s"
        mag = f" x{self.magnitude:g}" if self.magnitude is not None else ""
        return f"{self.kind}{target}{mag} @ t={self.start:g}s ({life})"


@dataclass
class FaultCampaign:
    """An ordered schedule of :class:`FaultEvent` instances."""

    events: list = field(default_factory=list)
    name: str = ""

    def __post_init__(self):
        self.events = sorted(self.events, key=lambda e: e.start)
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"campaign entries must be FaultEvent, got {event!r}")

    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)

    def active_at(self, time):
        """Events active at a board time."""
        return [e for e in self.events if e.active_at(time)]

    def first_onset(self):
        """Start time of the earliest event (None for an empty campaign)."""
        return self.events[0].start if self.events else None

    @property
    def transient(self):
        """True when every event eventually reverts."""
        return bool(self.events) and all(not e.permanent for e in self.events)

    def describe(self):
        title = self.name or "fault campaign"
        lines = [f"{title} ({len(self.events)} event(s)):"]
        lines.extend(f"  - {event.describe()}" for event in self.events)
        return "\n".join(lines)
