"""The board hook layer: sensor-fault callables and actuator-fault state.

Sensors expose a ``fault_hook`` attribute (see
:mod:`repro.board.sensors`): when set, every ``read()`` passes the healthy
value through the hook.  :class:`SensorFault` is the standard hook — bias,
stuck-at, dropout, and extra-noise modes.

The board's actuation API consults ``board.fault_hooks`` (duck-typed; see
:class:`ActuatorFaultState`) before applying a command, which is how DVFS
writes get ignored, hotplug gets stuck, and placement knobs freeze without
any experiment code reaching into board internals.
"""

from __future__ import annotations

import numpy as np

from ..board.specs import BIG, LITTLE

__all__ = ["SensorFault", "ActuatorFaultState", "DROPOUT_SENTINEL"]

# The documented dropout sentinel: a dropped-out sensor reads NaN, exactly
# like an I2C read failure surfacing as an invalid register value.  The
# supervisor treats non-finite readings as a sensor-dropout signal.
DROPOUT_SENTINEL = float("nan")


class SensorFault:
    """A callable sensor-fault hook.

    Modes
    -----
    ``"bias"``
        Reads are offset by ``magnitude`` (degC or W).
    ``"stuck"``
        The first faulty read latches the healthy value; every later read
        returns that latched value regardless of the true signal.
    ``"dropout"``
        Reads return :data:`DROPOUT_SENTINEL` (NaN).
    ``"noise"``
        Reads gain zero-mean Gaussian noise with rms ``magnitude`` drawn
        from ``rng`` — pass an explicitly seeded generator for
        reproducible faulty traces.
    """

    MODES = ("bias", "stuck", "dropout", "noise")

    def __init__(self, mode, magnitude=0.0, rng=None):
        if mode not in self.MODES:
            raise ValueError(f"unknown sensor-fault mode {mode!r}; known: {self.MODES}")
        if mode == "noise" and rng is None:
            rng = np.random.default_rng(0)
        self.mode = mode
        self.magnitude = float(magnitude)
        self._rng = rng
        self._latched = None

    def __call__(self, value):
        if self.mode == "bias":
            return value + self.magnitude
        if self.mode == "stuck":
            if self._latched is None:
                self._latched = value
            return self._latched
        if self.mode == "dropout":
            return DROPOUT_SENTINEL
        return value + self._rng.normal(scale=self.magnitude)

    def __repr__(self):
        return f"SensorFault(mode={self.mode!r}, magnitude={self.magnitude!r})"


class ActuatorFaultState:
    """Actuator-fault flags the board's actuation API consults.

    Installed as ``board.fault_hooks`` by the
    :class:`~repro.faults.injector.FaultInjector`.  The board only calls
    the three ``blocks_*`` predicates, so any object with the same methods
    can serve as a custom hook.
    """

    def __init__(self):
        self._dvfs_ignored = {BIG: 0, LITTLE: 0}
        self._hotplug_stuck = {BIG: 0, LITTLE: 0}
        self._placement_stuck = 0

    # --- predicates the board calls -----------------------------------
    def blocks_dvfs(self, cluster_name):
        return self._dvfs_ignored[cluster_name] > 0

    def blocks_hotplug(self, cluster_name):
        return self._hotplug_stuck[cluster_name] > 0

    def blocks_placement(self):
        return self._placement_stuck > 0

    # --- setters the injector calls (counted, so overlapping transient
    # faults of the same kind compose correctly) -----------------------
    def set_dvfs_ignored(self, cluster_name, active):
        self._dvfs_ignored[cluster_name] += 1 if active else -1

    def set_hotplug_stuck(self, cluster_name, active):
        self._hotplug_stuck[cluster_name] += 1 if active else -1

    def set_placement_stuck(self, active):
        self._placement_stuck += 1 if active else -1

    @property
    def any_active(self):
        return (
            any(v > 0 for v in self._dvfs_ignored.values())
            or any(v > 0 for v in self._hotplug_stuck.values())
            or self._placement_stuck > 0
        )
