"""Fault-injection subsystem: declarative campaigns over a board hook layer.

Faults are declared as :class:`FaultEvent` schedules in a
:class:`FaultCampaign` and applied by a :class:`FaultInjector` through the
board's sensor/actuator hooks — never by hand-editing board internals.
:mod:`repro.core.supervisor` closes the loop on the other side: it detects
the injected damage at runtime and degrades/recovers gracefully.

See docs/RESILIENCE.md for the fault taxonomy and campaign how-to.
"""

from .events import CLUSTER_KINDS, FAULT_KINDS, FaultCampaign, FaultEvent
from .hooks import DROPOUT_SENTINEL, ActuatorFaultState, SensorFault
from .injector import FaultInjector
from .library import (
    default_fault_matrix,
    heatsink_detachment,
    inject_heatsink_fault,
    inject_sensor_fault,
    sensor_miscalibration,
)

__all__ = [
    "FAULT_KINDS",
    "CLUSTER_KINDS",
    "FaultEvent",
    "FaultCampaign",
    "SensorFault",
    "ActuatorFaultState",
    "DROPOUT_SENTINEL",
    "FaultInjector",
    "heatsink_detachment",
    "sensor_miscalibration",
    "default_fault_matrix",
    "inject_heatsink_fault",
    "inject_sensor_fault",
]
