"""Runtime invariant monitor for the board and control stack.

The monitor audits, every control period, the physical and control-law
invariants the Yukta reproduction depends on:

* **Physics** — every power component non-negative and below the ceiling
  the spec can physically produce; the hot-spot temperature inside the RC
  model's reachable band; board time strictly increasing and energy
  non-decreasing.
* **Firmware envelope** — temperature above the emergency trip point only
  while the TMU reports itself tripped; trip counts and throttle time
  monotone; emergency caps actually engaged while throttled.
* **Actuation legality** — cluster frequencies on the DVFS grid and core
  counts on the hotplug grid exactly as declared through
  :mod:`repro.signals.interface`; no thread placed on a hotplugged-out
  core; no thread placed twice; pending stalls non-negative.
* **Optimizer sanity** — every ExD target inside its declared channel
  envelope, and the accept/revert bookkeeping consistent with the walk's
  own model (``0 <= moves - (accepts + reverts) <= 1``, all monotone).

Integration follows the telemetry pattern: instrumented code holds a
monitor reference or ``None`` (one attribute check when disabled), and a
process-wide monitor can be installed with :func:`activate_monitor` so the
``repro verify`` CLI reaches every layer without threading a parameter
through the call graph.  Violations are recorded as structured
:class:`Violation` events; when a telemetry session is active they also
increment ``invariant_violations_total`` and trigger one flight-recorder
dump per distinct check, preserving the lead-up.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from ..board.power import _REFERENCE_TEMP
from ..board.specs import BIG, LITTLE

__all__ = [
    "Violation",
    "InvariantMonitor",
    "activate_monitor",
    "deactivate_monitor",
    "active_monitor",
    "power_ceiling",
    "temperature_ceiling",
]

_ACTIVE_MONITOR = None

# Leakage grows with temperature and temperature grows with power, so the
# ceiling pair is a fixed point; evaluating leakage at this generous die
# temperature breaks the cycle with a strict over-estimate.
_TEMP_GUARD = 150.0
# Phase activity factors may exceed 1.0 slightly (e.g. gamess at 1.05), so
# the dynamic term gets headroom beyond the nominal all-cores-busy draw.
_ACTIVITY_GUARD = 1.25


def activate_monitor(monitor):
    """Install a process-wide invariant monitor; returns it."""
    global _ACTIVE_MONITOR
    _ACTIVE_MONITOR = monitor
    return monitor


def deactivate_monitor():
    """Clear the process-wide invariant monitor."""
    global _ACTIVE_MONITOR
    _ACTIVE_MONITOR = None


def active_monitor():
    """The process-wide monitor, or ``None`` (monitoring disabled)."""
    return _ACTIVE_MONITOR


def power_ceiling(cluster):
    """A strict upper bound (W) on what one cluster can physically draw."""
    freq = cluster.freq_range.high
    voltage = cluster.voltage(freq)
    dynamic = (
        cluster.ceff_dynamic * voltage**2 * freq * cluster.n_cores
        * _ACTIVITY_GUARD
    )
    temp_factor = 1.0 + cluster.leak_temp_coeff * (_TEMP_GUARD - _REFERENCE_TEMP)
    leakage = cluster.n_cores * cluster.leak_coeff * voltage * max(temp_factor, 0.2)
    idle = cluster.n_cores * cluster.idle_power
    return dynamic + leakage + idle


def temperature_ceiling(spec):
    """RC-model reachable temperature bound for a board spec (degC)."""
    effective = power_ceiling(spec.big) + spec.thermal_weight_little * power_ceiling(
        spec.little
    )
    return spec.ambient_temp + spec.thermal_resistance * effective


@dataclass
class Violation:
    """One structured invariant-violation event."""

    check: str  # dotted check id, e.g. "power.ceiling"
    message: str
    board_time: float = 0.0
    value: object = None
    bound: object = None

    def as_dict(self):
        return {
            "check": self.check,
            "message": self.message,
            "board_time": self.board_time,
            "value": self.value,
            "bound": self.bound,
        }

    def __str__(self):
        return f"[{self.check}] t={self.board_time:.2f}s: {self.message}"


@dataclass
class _BoardBookkeeping:
    """Per-board monotonicity state the monitor tracks between checks."""

    time: float = float("-inf")
    energy: float = float("-inf")
    trip_count: int = 0
    throttle_time: float = 0.0


@dataclass
class _OptimizerBookkeeping:
    moves: int = 0
    accepts: int = 0
    reverts: int = 0


@dataclass
class InvariantMonitor:
    """Checks physical and control invariants against live run state.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.TelemetrySession`; when present, violations
    increment the ``invariant_violations_total`` counter and the *first*
    violation of each distinct check triggers a flight-recorder dump.
    ``max_violations`` bounds memory on a badly broken run — past the cap
    only the counters advance.
    """

    telemetry: object = None
    tolerance: float = 1e-6
    noise_sigmas: float = 8.0  # band allowed for noisy sensor readings
    max_violations: int = 1000
    violations: list = field(default_factory=list)
    periods_checked: int = 0
    counts: dict = field(default_factory=dict)  # check id -> violation count

    def __post_init__(self):
        self._boards = weakref.WeakKeyDictionary()
        self._optimizers = weakref.WeakKeyDictionary()
        self._dumped_checks = set()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_violations(self):
        return sum(self.counts.values())

    @property
    def ok(self):
        return not self.counts

    def summary(self):
        if self.ok:
            return (
                f"invariants: OK ({self.periods_checked} periods checked, "
                "0 violations)"
            )
        lines = [
            f"invariants: {self.total_violations} violation(s) over "
            f"{self.periods_checked} periods"
        ]
        for check in sorted(self.counts):
            lines.append(f"  {check}: {self.counts[check]}")
        for violation in self.violations[:10]:
            lines.append(f"  first: {violation}")
        return "\n".join(lines)

    def _emit(self, check, message, board_time=0.0, value=None, bound=None):
        violation = Violation(check, message, board_time, value, bound)
        self.counts[check] = self.counts.get(check, 0) + 1
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        tel = self.telemetry
        if tel is not None:
            tel.invariant_violations.labels(check=check).inc()
            if check not in self._dumped_checks:
                self._dumped_checks.add(check)
                tel.dump_flight(f"invariant-{check}", extra=violation.as_dict())
        return violation

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def check_period(self, board, coordinator=None, signals=None):
        """Audit one control period; returns the violations found now."""
        before = len(self.violations)
        count_before = self.total_violations
        self.periods_checked += 1
        self.check_board(board, _count=False)
        if signals is not None:
            self._check_signals(board, signals)
        if coordinator is not None:
            for layer, opt in (
                ("hw", getattr(coordinator, "hw_optimizer", None)),
                ("sw", getattr(coordinator, "sw_optimizer", None)),
            ):
                if opt is not None:
                    self.check_optimizer(opt, layer=layer,
                                         board_time=board.time)
        # Violations past the storage cap still count.
        return self.violations[before:] if count_before < self.max_violations else []

    def check_board(self, board, _count=True):
        """Audit the board's physical state (usable without a coordinator)."""
        if _count:
            self.periods_checked += 1
        before = len(self.violations)
        spec = board.spec
        t = board.time
        book = self._boards.get(board)
        if book is None:
            book = self._boards[board] = _BoardBookkeeping()

        # --- time / energy monotonicity --------------------------------
        if t < book.time - self.tolerance:
            self._emit("board.time-monotone",
                       f"board time went backwards: {book.time} -> {t}",
                       t, value=t, bound=book.time)
        if board.energy < book.energy - self.tolerance:
            self._emit("board.energy-monotone",
                       f"energy decreased: {book.energy} -> {board.energy}",
                       t, value=board.energy, bound=book.energy)
        book.time = max(book.time, t)
        book.energy = max(book.energy, board.energy)

        # --- power physicality ------------------------------------------
        for name in (BIG, LITTLE):
            ceiling = power_ceiling(spec.cluster(name))
            instant = board._instant_power[name]
            if instant < -self.tolerance:
                self._emit("power.nonnegative",
                           f"{name} instantaneous power negative: {instant}",
                           t, value=instant, bound=0.0)
            if instant > ceiling + self.tolerance:
                self._emit("power.ceiling",
                           f"{name} power {instant:.3f} W exceeds physical "
                           f"ceiling {ceiling:.3f} W", t,
                           value=instant, bound=ceiling)
            sensed = board.power_sensors[name].read()
            if sensed == sensed:  # NaN (sensor dropout fault) is not physics
                if sensed < -self.tolerance or sensed > ceiling + self.tolerance:
                    self._emit("power.sensor-band",
                               f"{name} power sensor reads {sensed:.3f} W "
                               f"outside [0, {ceiling:.3f}]", t,
                               value=sensed, bound=ceiling)

        # --- thermal envelope -------------------------------------------
        temp = board.thermal.temperature
        t_max = temperature_ceiling(spec)
        if temp < spec.ambient_temp - self.tolerance:
            self._emit("thermal.floor",
                       f"temperature {temp:.2f} below ambient "
                       f"{spec.ambient_temp:.2f}", t,
                       value=temp, bound=spec.ambient_temp)
        if temp > t_max + self.tolerance:
            self._emit("thermal.rc-ceiling",
                       f"temperature {temp:.2f} above RC-reachable bound "
                       f"{t_max:.2f}", t, value=temp, bound=t_max)
        if (
            temp > spec.emergency_temp_trip + self.tolerance
            and not board.emergency.state.thermal_throttled
        ):
            self._emit("thermal.trip-consistency",
                       f"temperature {temp:.2f} above trip point "
                       f"{spec.emergency_temp_trip:.2f} but TMU not tripped",
                       t, value=temp, bound=spec.emergency_temp_trip)

        # --- firmware state machine -------------------------------------
        state = board.emergency.state
        if state.trip_count < book.trip_count:
            self._emit("tmu.trips-monotone",
                       f"trip count decreased: {book.trip_count} -> "
                       f"{state.trip_count}", t,
                       value=state.trip_count, bound=book.trip_count)
        if state.throttle_time < book.throttle_time - self.tolerance:
            self._emit("tmu.throttle-monotone",
                       f"throttle time decreased: {book.throttle_time} -> "
                       f"{state.throttle_time}", t,
                       value=state.throttle_time, bound=book.throttle_time)
        book.trip_count = max(book.trip_count, state.trip_count)
        book.throttle_time = max(book.throttle_time, state.throttle_time)
        if state.thermal_throttled and board.emergency.frequency_cap(BIG) is None:
            self._emit("tmu.cap-engaged",
                       "thermal throttle active but no big-cluster "
                       "frequency cap engaged", t)

        # --- actuation legality (declared interface grids) ---------------
        for name in (BIG, LITTLE):
            cluster = spec.cluster(name)
            runtime = board.clusters[name]
            if not cluster.freq_range.contains(runtime.frequency, tol=1e-9):
                self._emit("actuation.freq-grid",
                           f"{name} frequency {runtime.frequency} off the "
                           f"declared DVFS grid", t,
                           value=runtime.frequency)
            cores = runtime.cores_on
            if cores != int(cores) or not (1 <= cores <= cluster.n_cores):
                self._emit("actuation.core-grid",
                           f"{name} cores_on {cores} outside "
                           f"[1, {cluster.n_cores}]", t,
                           value=cores, bound=cluster.n_cores)
            if runtime.pending_hotplug_stall < -self.tolerance:
                self._emit("actuation.stall-nonnegative",
                           f"{name} pending hotplug stall negative: "
                           f"{runtime.pending_hotplug_stall}", t,
                           value=runtime.pending_hotplug_stall, bound=0.0)
            eff = board._effective_frequency(name)
            if eff > runtime.frequency + self.tolerance:
                self._emit("actuation.effective-freq",
                           f"{name} effective frequency {eff} exceeds the "
                           f"actuated {runtime.frequency}", t,
                           value=eff, bound=runtime.frequency)

        # --- placement consistency ---------------------------------------
        seen = set()
        for name in (BIG, LITTLE):
            cores_on = board.clusters[name].cores_on
            assignment = board.placement.assignment.get(name, [])
            for idx, core in enumerate(assignment):
                if idx >= cores_on and core:
                    self._emit("placement.hotplug-consistency",
                               f"{len(core)} thread(s) on powered-off core "
                               f"{name}[{idx}] (cores_on={cores_on})", t,
                               value=len(core))
                for thread in core:
                    key = id(thread)
                    if key in seen:
                        self._emit("placement.duplicate-thread",
                                   f"thread {thread} placed on more than "
                                   "one core", t)
                    seen.add(key)
        return self.violations[before:]

    # ------------------------------------------------------------------
    # Sampled-signal and optimizer checks
    # ------------------------------------------------------------------
    def _check_signals(self, board, signals):
        """Audit one period's sampled signal dict (controller inputs)."""
        spec = board.spec
        t = board.time
        noise_band = self.noise_sigmas * spec.temp_sensor_noise
        temp = signals.get("temperature")
        if temp is not None and temp == temp:
            t_max = temperature_ceiling(spec) + noise_band
            t_min = spec.ambient_temp - noise_band
            if temp < t_min - self.tolerance or temp > t_max + self.tolerance:
                self._emit("signals.temperature-band",
                           f"sampled temperature {temp:.2f} outside "
                           f"[{t_min:.2f}, {t_max:.2f}]", t,
                           value=temp, bound=t_max)
        for key in ("bips_total", "bips_big", "bips_little"):
            value = signals.get(key)
            if value is not None and value == value and value < -self.tolerance:
                self._emit("signals.bips-nonnegative",
                           f"{key} negative: {value}", t, value=value,
                           bound=0.0)

    def check_optimizer(self, optimizer, layer="hw", board_time=0.0):
        """Audit one ExD optimizer against its own declared model."""
        before = len(self.violations)
        book = self._optimizers.get(optimizer)
        if book is None:
            book = self._optimizers[optimizer] = _OptimizerBookkeeping()
        targets = optimizer.targets
        for i, channel in enumerate(optimizer.channels):
            if channel.role == "fixed":
                continue
            value = float(targets[i])
            if (
                value < channel.low - self.tolerance
                or value > channel.high + self.tolerance
            ):
                self._emit(f"optimizer.{layer}.envelope",
                           f"target {channel.name}={value} outside "
                           f"[{channel.low}, {channel.high}]", board_time,
                           value=value, bound=(channel.low, channel.high))
        moves, accepts, reverts = (
            optimizer.moves, optimizer.accepts, optimizer.reverts,
        )
        if moves < book.moves or accepts < book.accepts or reverts < book.reverts:
            self._emit(f"optimizer.{layer}.counters-monotone",
                       f"walk counters went backwards: moves {book.moves}->"
                       f"{moves}, accepts {book.accepts}->{accepts}, "
                       f"reverts {book.reverts}->{reverts}", board_time)
        # Every move is judged exactly once (accept or revert) at the next
        # move boundary, so at most one move is ever pending judgement.
        if not (0 <= moves - (accepts + reverts) <= 1):
            self._emit(f"optimizer.{layer}.judgement-balance",
                       f"moves={moves} vs accepts+reverts="
                       f"{accepts + reverts}: walk bookkeeping broken",
                       board_time, value=moves, bound=accepts + reverts)
        book.moves, book.accepts, book.reverts = moves, accepts, reverts
        return self.violations[before:]

    def check_rack(self, time=0.0, budgets=(), floors=(), cap=0.0,
                   online=(), admitted=0, queued=0, running=0, completed=0):
        """Audit one rack control period (the third layer's invariants).

        Three conservation laws, checked live by :class:`~repro.rack.rack.
        Rack` whenever a monitor is active:

        * distributed budgets never exceed the effective rack cap;
        * no online board's budget falls below its declared floor (and no
          budget is ever negative; offline boards hold exactly zero);
        * jobs are conserved — every admitted job is queued, running, or
          completed, exactly once.
        """
        self.periods_checked += 1
        before = len(self.violations)
        tol = self.tolerance
        budgets = list(budgets)
        floors = list(floors)
        online = list(online) if online else [True] * len(budgets)
        total = sum(budgets)
        if total > cap + tol:
            self._emit("rack.cap",
                       f"distributed budgets {total:.6f} W exceed the "
                       f"effective cap {cap:.6f} W", time,
                       value=total, bound=cap)
        for i, budget in enumerate(budgets):
            if budget < -tol:
                self._emit("rack.budget-nonnegative",
                           f"board {i} budget negative: {budget}", time,
                           value=budget, bound=0.0)
            if online[i]:
                floor = floors[i] if i < len(floors) else 0.0
                if budget < floor - tol:
                    self._emit("rack.floor",
                               f"board {i} budget {budget:.6f} W below its "
                               f"declared floor {floor:.6f} W", time,
                               value=budget, bound=floor)
            elif budget > tol:
                self._emit("rack.offline-budget",
                           f"offline board {i} holds budget {budget}", time,
                           value=budget, bound=0.0)
        accounted = queued + running + completed
        if admitted != accounted:
            self._emit("rack.job-accounting",
                       f"{admitted} admitted != {queued} queued + {running} "
                       f"running + {completed} completed", time,
                       value=accounted, bound=admitted)
        return self.violations[before:]
