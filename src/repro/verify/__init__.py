"""Correctness verification: invariant monitoring, oracles, golden traces.

Three pillars keep the growing stack honest (docs/VERIFICATION.md):

``repro.verify.invariants``
    A runtime :class:`InvariantMonitor` that audits the board, emergency
    firmware, coordinator, and ExD optimizers every control period against
    physical and control-law invariants.  Hooked in with the same
    ``is None`` fast path as telemetry, so un-monitored runs pay a single
    attribute check.
``repro.verify.oracles``
    Differential oracles replaying identical inputs through pairs of
    implementations that must agree — fastpath vs scalar stepping, the
    parallel engine vs the serial matrix, cached vs fresh synthesis, and
    the LQG synthesis vs an independent textbook Riccati recursion — with
    first-divergence and ULP-distance reporting.
``repro.verify.golden``
    A golden-trace regression suite: canonical control-period traces
    checked into ``tests/golden/`` and a tolerance-aware comparator, so
    behavioral drift becomes a reviewed diff instead of a silent change.

``python -m repro verify [--quick] [--regen-golden]`` runs all three.
"""

from .golden import (
    GOLDEN_DIR,
    GOLDEN_MATRIX,
    TraceMismatch,
    capture_trace,
    compare_traces,
    golden_path,
    load_golden,
    verify_goldens,
    write_golden,
)
from .invariants import (
    InvariantMonitor,
    Violation,
    activate_monitor,
    active_monitor,
    deactivate_monitor,
    power_ceiling,
    temperature_ceiling,
)
from .oracles import (
    OracleResult,
    oracle_cache,
    oracle_fastpath,
    oracle_lqg_reference,
    oracle_parallel_matrix,
    ulp_distance,
)
from .runner import VerifyReport, run_verify

__all__ = [
    "InvariantMonitor",
    "Violation",
    "activate_monitor",
    "active_monitor",
    "deactivate_monitor",
    "power_ceiling",
    "temperature_ceiling",
    "OracleResult",
    "oracle_fastpath",
    "oracle_parallel_matrix",
    "oracle_cache",
    "oracle_lqg_reference",
    "ulp_distance",
    "GOLDEN_DIR",
    "GOLDEN_MATRIX",
    "TraceMismatch",
    "capture_trace",
    "compare_traces",
    "golden_path",
    "load_golden",
    "write_golden",
    "verify_goldens",
    "VerifyReport",
    "run_verify",
]
