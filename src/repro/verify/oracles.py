"""Differential oracles: implementation pairs that must agree.

Each oracle replays identical inputs through two implementations of the
same computation and reports the first divergence — step index, signal
name, both values, and the ULP distance between them:

* :func:`oracle_fastpath` — vectorized window stepping
  (:mod:`repro.board.fastpath`) vs scalar :meth:`Board.step`, under a
  randomized-but-legal actuation schedule.  Must be **bit-exact**.
* :func:`oracle_parallel_matrix` — the process-pool experiment engine vs
  the serial matrix loop.  Must be **bit-exact**.
* :func:`oracle_resume` — a matrix campaign interrupted mid-run (chaos
  harness) and then resumed from its checkpoint journal vs an
  uninterrupted serial run.  Must be **bit-exact**.
* :func:`oracle_cache` — a design context rebuilt from the persistent
  cache vs the same artifacts computed fresh.  Must be **bit-exact**
  (pickle round-trips preserve float bits).
* :func:`oracle_serve` — the control-plane service answering concurrent
  requests (coalescing, bank batching, JSON wire round-trip, warm result
  store) vs direct in-process :func:`run_workload` calls.  Must be
  **bit-exact** — JSON's shortest-round-trip float repr preserves every
  bit.
* :func:`oracle_lqg_reference` — the production LQG synthesis
  (:mod:`repro.lqg.synthesis`, scipy Riccati solvers) vs an independent
  textbook fixed-point Riccati recursion.  Agrees within a documented
  tolerance (iterative vs direct solvers).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "OracleResult",
    "ulp_distance",
    "oracle_fastpath",
    "oracle_bank",
    "oracle_bank_matrix",
    "oracle_bank_schedule",
    "oracle_parallel_matrix",
    "oracle_resume",
    "oracle_cache",
    "oracle_serve",
    "oracle_lqg_reference",
]


def _ordered_bits(x):
    """Map a float64 onto the integers so ULP distance is subtraction."""
    (bits,) = struct.unpack("<q", struct.pack("<d", float(x)))
    return bits if bits >= 0 else (-0x8000000000000000) - bits


def ulp_distance(a, b):
    """Units-in-the-last-place distance between two float64 values.

    Identical values (including ``-0.0`` vs ``+0.0``) are 0 ULP apart;
    adjacent representable doubles are 1 apart.  A single NaN is
    infinitely far from everything; two NaNs count as equal.
    """
    a, b = float(a), float(b)
    if np.isnan(a) or np.isnan(b):
        return 0 if (np.isnan(a) and np.isnan(b)) else float("inf")
    return abs(_ordered_bits(a) - _ordered_bits(b))


@dataclass
class Divergence:
    """Where two implementations first disagreed."""

    step: object  # step index, or a (workload, scheme, field) locator
    signal: str
    value_a: float
    value_b: float
    ulp: float

    def __str__(self):
        return (
            f"first divergence at {self.step} signal {self.signal!r}: "
            f"{self.value_a!r} vs {self.value_b!r} ({self.ulp} ULP)"
        )


@dataclass
class OracleResult:
    """Outcome of one differential-oracle run."""

    name: str
    agree: bool
    compared: int  # scalar comparisons performed
    max_ulp: float = 0.0
    tolerance_ulp: float = 0.0  # 0 = bit-exactness required
    divergence: Divergence = None
    details: dict = field(default_factory=dict)

    def render(self):
        status = "OK" if self.agree else "FAIL"
        if self.tolerance_ulp != self.tolerance_ulp:  # NaN: relative tol
            tol = f"tol rtol={self.details.get('rtol', '?')}"
        elif self.tolerance_ulp == 0:
            tol = "bit-exact"
        else:
            tol = f"tol {self.tolerance_ulp:g} ULP"
        line = (
            f"oracle {self.name:18s} {status}  "
            f"({self.compared} comparisons, max {self.max_ulp:g} ULP, {tol})"
        )
        if self.divergence is not None:
            line += f"\n  {self.divergence}"
        return line


class _Comparator:
    """Accumulates comparisons, tracking the first and worst divergence."""

    def __init__(self, tolerance_ulp=0.0):
        self.tolerance_ulp = tolerance_ulp
        self.compared = 0
        self.max_ulp = 0.0
        self.first = None

    def check(self, step, signal, a, b):
        self.compared += 1
        ulp = ulp_distance(a, b)
        if ulp > self.max_ulp:
            self.max_ulp = ulp
        if ulp > self.tolerance_ulp and self.first is None:
            self.first = Divergence(step, signal, float(a), float(b), ulp)

    def check_array(self, signal, a, b, step_offset=0):
        a = np.asarray(a, dtype=float).ravel()
        b = np.asarray(b, dtype=float).ravel()
        if a.size != b.size:
            self.compared += 1
            if self.first is None:
                self.first = Divergence(
                    step_offset, signal, float(a.size), float(b.size),
                    float("inf"),
                )
            return
        for i in range(a.size):
            self.check(step_offset + i, signal, a[i], b[i])

    def result(self, name, details=None):
        return OracleResult(
            name=name,
            agree=self.first is None,
            compared=self.compared,
            max_ulp=self.max_ulp,
            tolerance_ulp=self.tolerance_ulp,
            divergence=self.first,
            details=details or {},
        )


# ---------------------------------------------------------------------------
# Oracle 1: fastpath vs scalar stepping
# ---------------------------------------------------------------------------
def _actuation_schedule(spec, periods, seed):
    """A deterministic, grid-legal actuation schedule for both boards."""
    rng = np.random.default_rng(seed)
    schedule = []
    for _ in range(periods):
        schedule.append({
            "freq_big": float(rng.choice(spec.big.freq_range.levels)),
            "freq_little": float(rng.choice(spec.little.freq_range.levels)),
            "cores_big": int(rng.integers(1, spec.big.n_cores + 1)),
            "cores_little": int(rng.integers(1, spec.little.n_cores + 1)),
            "placement": (
                float(rng.integers(0, 9)),
                float(rng.choice([1.0, 1.5, 2.0, 3.0])),
                float(rng.choice([1.0, 1.5, 2.0, 3.0])),
            ),
        })
    return schedule


def oracle_fastpath(spec=None, workload="blackscholes", seed=3, periods=40,
                    schedule_seed=11):
    """Replay one run through fastpath and scalar stepping; must be 0 ULP."""
    from ..board import BIG, LITTLE, Board, default_xu3_spec
    from ..workloads import make_application

    spec = spec or default_xu3_spec()
    period_steps = spec.period_steps()
    schedule = _actuation_schedule(spec, periods, schedule_seed)

    def _run(enable_fast_path):
        board = Board(make_application(workload), spec=spec, seed=seed,
                      record=True, telemetry=None)
        board.enable_fast_path = enable_fast_path
        for command in schedule:
            if board.done:
                break
            board.set_cluster_frequency(BIG, command["freq_big"])
            board.set_cluster_frequency(LITTLE, command["freq_little"])
            board.set_active_cores(BIG, command["cores_big"])
            board.set_active_cores(LITTLE, command["cores_little"])
            board.set_placement_knobs(*command["placement"])
            board.run_period(period_steps)
        return board

    fast = _run(True)
    scalar = _run(False)
    cmp = _Comparator(tolerance_ulp=0.0)
    cmp.check("final", "time", fast.time, scalar.time)
    cmp.check("final", "energy", fast.energy, scalar.energy)
    cmp.check("final", "temperature", fast.thermal.temperature,
              scalar.thermal.temperature)
    for name in (BIG, LITTLE):
        cmp.check("final", f"instructions_{name}",
                  fast.perf_counters[name].read_cumulative(),
                  scalar.perf_counters[name].read_cumulative())
        cmp.check("final", f"power_sensor_{name}",
                  fast.power_sensors[name].read(),
                  scalar.power_sensors[name].read())
    cmp.check("final", "temp_sensor", fast.temp_sensor.read(),
              scalar.temp_sensor.read())
    fast_trace = fast.trace.as_arrays()
    scalar_trace = scalar.trace.as_arrays()
    for signal in sorted(fast_trace):
        cmp.check_array(signal, fast_trace[signal], scalar_trace[signal])
    return cmp.result("fastpath-vs-scalar", details={
        "workload": workload, "periods": periods,
        "steps": len(fast_trace["times"]),
    })


# ---------------------------------------------------------------------------
# Oracle 1b: the lockstep board bank vs per-board stepping
# ---------------------------------------------------------------------------
def oracle_bank(spec=None, workloads=("blackscholes", "mcf", "fluidanimate",
                                      "gamess"), seed0=3, periods=30,
                schedule_seed=11):
    """Replay one bank run against per-board ``run_period``; must be 0 ULP.

    Every board gets its own workload, seed, and actuation schedule; the
    bank advances them in vectorized lockstep while the reference boards
    advance one at a time through the scalar/fastpath machinery.  The
    first divergence is located by (board, step, signal) with its ULP
    distance.
    """
    from ..board import BIG, LITTLE, Board, BoardBank, default_xu3_spec
    from ..workloads import make_application

    spec = spec or default_xu3_spec()
    period_steps = spec.period_steps()
    n = len(workloads)
    schedules = [
        _actuation_schedule(spec, periods, schedule_seed + 13 * k)
        for k in range(n)
    ]

    def _make_boards():
        return [
            Board(make_application(w), spec=spec, seed=seed0 + k, record=True,
                  telemetry=None)
            for k, w in enumerate(workloads)
        ]

    def _actuate(board, command):
        board.set_cluster_frequency(BIG, command["freq_big"])
        board.set_cluster_frequency(LITTLE, command["freq_little"])
        board.set_active_cores(BIG, command["cores_big"])
        board.set_active_cores(LITTLE, command["cores_little"])
        board.set_placement_knobs(*command["placement"])

    banked = _make_boards()
    bank = BoardBank(banked, telemetry=None)
    for p in range(periods):
        live = [k for k in range(n) if not banked[k].done]
        if not live:
            break
        for k in live:
            _actuate(banked[k], schedules[k][p])
        bank.run_period_bank(period_steps, only=live)

    reference = _make_boards()
    for k, board in enumerate(reference):
        for p in range(periods):
            if board.done:
                break
            _actuate(board, schedules[k][p])
            board.run_period(period_steps)

    cmp = _Comparator(tolerance_ulp=0.0)
    for k, (a, b) in enumerate(zip(banked, reference)):
        loc = f"board {k}"
        cmp.check(loc, "time", a.time, b.time)
        cmp.check(loc, "energy", a.energy, b.energy)
        cmp.check(loc, "temperature", a.thermal.temperature,
                  b.thermal.temperature)
        cmp.check(loc, "temp_sensor", a.temp_sensor.read(),
                  b.temp_sensor.read())
        for name in (BIG, LITTLE):
            cmp.check(loc, f"instructions_{name}",
                      a.perf_counters[name].read_cumulative(),
                      b.perf_counters[name].read_cumulative())
            cmp.check(loc, f"power_sensor_{name}",
                      a.power_sensors[name].read(),
                      b.power_sensors[name].read())
        cmp.check(loc, "emergency_trips", a.emergency.state.trip_count,
                  b.emergency.state.trip_count)
        trace_a = a.trace.as_arrays()
        trace_b = b.trace.as_arrays()
        for signal in sorted(trace_a):
            cmp.check_array(f"{loc}/{signal}", trace_a[signal],
                            trace_b[signal])
    return cmp.result("bank-vs-scalar", details={
        "boards": n, "periods": periods,
        "counters": bank.counters(),
    })


def oracle_bank_schedule(spec=None, workloads=("blackscholes", "mcf",
                                               "mix:blmc", "gamess",
                                               "fluidanimate", "x264"),
                         seed0=5, periods=40, schedule_seed=23,
                         block_periods=16):
    """Fused ``run_schedule_bank`` vs per-board fastpath; must be 0 ULP.

    One shared DVFS schedule drives every lane through the fused
    multi-period kernel.  The schedule deliberately includes
    out-of-range commands (which must clamp *and* count as rejected on
    every board) and one non-finite entry (which must fall back to the
    exact per-period path so the previous frequency carries forward).
    The reference boards replay the identical commands one period at a
    time through ``run_period``.
    """
    from ..board import BIG, LITTLE, Board, BoardBank, default_xu3_spec
    from ..workloads import make_application, make_mix

    spec = spec or default_xu3_spec()
    period_steps = spec.period_steps()
    rng = np.random.default_rng(schedule_seed)
    rb = spec.cluster(BIG).freq_range
    rl = spec.cluster(LITTLE).freq_range
    # Stay in the lower half of the grid so blocks are provably quiet
    # (a hot operating point forces the exact per-period path — correct,
    # but then the fused kernel itself would go untested); the below-low
    # excursions exercise clamp-and-count inside fused blocks.
    fb = [float(f) for f in rng.uniform(
        rb.low - 0.3, rb.low + 0.55 * (rb.high - rb.low), periods)]
    fl = [float(f) for f in rng.uniform(
        rl.low - 0.3, rl.low + 0.55 * (rl.high - rl.low), periods)]
    fb[periods // 2] = float("nan")  # carry-forward must stay exact

    def _make_boards():
        return [
            Board(make_mix(w[4:]) if w.startswith("mix:")
                  else make_application(w),
                  spec=spec, seed=seed0 + k, record=True, telemetry=None)
            for k, w in enumerate(workloads)
        ]

    banked = _make_boards()
    bank = BoardBank(banked, telemetry=None)
    bank.run_schedule_bank(fb, fl, block_periods=block_periods)

    reference = _make_boards()
    for board in reference:
        for p in range(periods):
            if board.done:
                break
            board.set_cluster_frequency(BIG, fb[p])
            board.set_cluster_frequency(LITTLE, fl[p])
            board.run_period(period_steps)

    cmp = _Comparator(tolerance_ulp=0.0)
    for k, (a, b) in enumerate(zip(banked, reference)):
        loc = f"board {k}"
        cmp.check(loc, "time", a.time, b.time)
        cmp.check(loc, "energy", a.energy, b.energy)
        cmp.check(loc, "temperature", a.thermal.temperature,
                  b.thermal.temperature)
        cmp.check(loc, "temp_sensor", a.temp_sensor.read(),
                  b.temp_sensor.read())
        cmp.check(loc, "rejected_frequency",
                  a.rejected_actuations["frequency"],
                  b.rejected_actuations["frequency"])
        cmp.check(loc, "nonfinite_frequency",
                  a.nonfinite_commands["frequency"],
                  b.nonfinite_commands["frequency"])
        for name in (BIG, LITTLE):
            cmp.check(loc, f"instructions_{name}",
                      a.perf_counters[name].read_cumulative(),
                      b.perf_counters[name].read_cumulative())
            cmp.check(loc, f"power_sensor_{name}",
                      a.power_sensors[name].read(),
                      b.power_sensors[name].read())
            cmp.check(loc, f"frequency_{name}",
                      a.clusters[name].frequency, b.clusters[name].frequency)
        trace_a = a.trace.as_arrays()
        trace_b = b.trace.as_arrays()
        for signal in sorted(trace_a):
            cmp.check_array(f"{loc}/{signal}", trace_a[signal],
                            trace_b[signal])
    # Agreement without coverage proves nothing: a kernel that silently
    # never fuses would pass every comparison above.
    cmp.check("schedule", "fused_kernel_engaged",
              float(bank.fused_ticks > 0), 1.0)
    return cmp.result("bank-schedule", details={
        "boards": len(workloads), "periods": periods,
        "block_periods": block_periods,
        "fused_blocks": bank.fused_blocks,
        "fused_ticks": bank.fused_ticks,
        "counters": bank.counters(),
    })


def oracle_bank_matrix(context, schemes=None, workloads=None, seed=7,
                       max_time=10.0, batch=8):
    """Run the same matrix serially and banked (``--batch``); must be 0 ULP."""
    from ..experiments.runner import run_scheme_matrix

    schemes = list(schemes or ["coordinated-heuristic", "decoupled-heuristic"])
    workloads = list(workloads or ["blackscholes"])
    serial = run_scheme_matrix(schemes, workloads, context, seed=seed,
                               max_time=max_time, record=True, jobs=None)
    banked = run_scheme_matrix(schemes, workloads, context, seed=seed,
                               max_time=max_time, record=True, jobs=None,
                               batch=batch)
    cmp = _Comparator(tolerance_ulp=0.0)
    for wname, per_scheme in serial.items():
        for scheme, a in per_scheme.items():
            b = banked[wname][scheme]
            loc = (wname, scheme)
            cmp.check(loc, "execution_time", a.execution_time,
                      b.execution_time)
            cmp.check(loc, "energy", a.energy, b.energy)
            cmp.check(loc, "completed", float(a.completed),
                      float(b.completed))
            cmp.check(loc, "emergency_trips",
                      float(a.notes["emergency_trips"]),
                      float(b.notes["emergency_trips"]))
            for signal in sorted(a.trace):
                cmp.check_array(f"{wname}/{scheme}/{signal}",
                                a.trace[signal], b.trace[signal])
    return cmp.result("bank-matrix-vs-serial", details={
        "schemes": schemes, "workloads": workloads, "batch": batch,
    })


# ---------------------------------------------------------------------------
# Oracle 2: parallel engine vs serial matrix
# ---------------------------------------------------------------------------
def oracle_parallel_matrix(context, schemes=None, workloads=None, seed=7,
                           max_time=10.0, jobs=2):
    """Run the same matrix serially and through the pool; must be 0 ULP."""
    from ..experiments.runner import run_scheme_matrix

    schemes = list(schemes or ["coordinated-heuristic", "decoupled-heuristic"])
    workloads = list(workloads or ["blackscholes"])
    serial = run_scheme_matrix(schemes, workloads, context, seed=seed,
                               max_time=max_time, record=True, jobs=None)
    parallel = run_scheme_matrix(schemes, workloads, context, seed=seed,
                                 max_time=max_time, record=True, jobs=jobs)
    cmp = _Comparator(tolerance_ulp=0.0)
    for wname, per_scheme in serial.items():
        for scheme, a in per_scheme.items():
            b = parallel[wname][scheme]
            loc = (wname, scheme)
            cmp.check(loc, "execution_time", a.execution_time,
                      b.execution_time)
            cmp.check(loc, "energy", a.energy, b.energy)
            cmp.check(loc, "completed", float(a.completed),
                      float(b.completed))
            for signal in sorted(a.trace):
                cmp.check_array(f"{wname}/{scheme}/{signal}",
                                a.trace[signal], b.trace[signal])
    return cmp.result("parallel-vs-serial", details={
        "schemes": schemes, "workloads": workloads, "jobs": jobs,
    })


# ---------------------------------------------------------------------------
# Oracle 2b: interrupted + resumed campaign vs uninterrupted serial
# ---------------------------------------------------------------------------
def oracle_resume(context, schemes=None, workloads=None, seed=7,
                  max_time=10.0, jobs=2, checkpoint_dir=None):
    """Interrupt a matrix mid-campaign, resume it, compare; must be 0 ULP.

    Pass 1 runs the matrix under a chaos policy that fails every other
    cell with no retry budget (``on_error="collect"``), leaving the
    checkpoint journal genuinely partial — the "interrupted" campaign.
    Pass 2 resumes against the same journal: completed cells come back
    from disk, missing cells run fresh.  The stitched result must match
    an uninterrupted serial run bit-exactly, and the oracle refuses to
    pass vacuously — it fails unless the interruption dropped at least
    one cell *and* the resume actually replayed journaled cells.
    """
    import tempfile

    from ..experiments.engine import run_matrix
    from ..experiments.runner import run_scheme_matrix
    from ..runtime import (
        CellFailure,
        ChaosPolicy,
        CheckpointJournal,
        RetryPolicy,
    )

    schemes = list(schemes or ["coordinated-heuristic", "decoupled-heuristic"])
    workloads = list(workloads or ["blackscholes"])
    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-resume-oracle-")
        checkpoint_dir = tmp.name
    try:
        serial = run_scheme_matrix(schemes, workloads, context, seed=seed,
                                   max_time=max_time, record=True, jobs=None)
        n_cells = len(schemes) * len(workloads)
        journal = CheckpointJournal(checkpoint_dir)
        chaos = ChaosPolicy(error_cells=tuple(range(1, n_cells, 2)))
        interrupted = run_matrix(
            schemes, workloads, context, seed=seed, max_time=max_time,
            record=True, jobs=jobs, checkpoint=journal, chaos=chaos,
            backoff=RetryPolicy(max_retries=0), on_error="collect")
        dropped = sum(
            1 for per_scheme in interrupted.values()
            for cell in per_scheme.values() if isinstance(cell, CellFailure)
        )
        resumption = CheckpointJournal(checkpoint_dir)
        resumed = run_matrix(
            schemes, workloads, context, seed=seed, max_time=max_time,
            record=True, jobs=jobs, checkpoint=resumption, resume=True)
        cmp = _Comparator(tolerance_ulp=0.0)
        for wname, per_scheme in serial.items():
            for scheme, a in per_scheme.items():
                b = resumed[wname][scheme]
                loc = (wname, scheme)
                if isinstance(b, CellFailure):
                    cmp.compared += 1
                    if cmp.first is None:
                        cmp.first = Divergence(loc, "cell", 1.0, 0.0,
                                               float("inf"))
                    continue
                cmp.check(loc, "execution_time", a.execution_time,
                          b.execution_time)
                cmp.check(loc, "energy", a.energy, b.energy)
                cmp.check(loc, "completed", float(a.completed),
                          float(b.completed))
                for signal in sorted(a.trace):
                    cmp.check_array(f"{wname}/{scheme}/{signal}",
                                    a.trace[signal], b.trace[signal])
        result = cmp.result("resume-vs-fresh", details={
            "schemes": schemes, "workloads": workloads, "jobs": jobs,
            "interrupted_cells": dropped,
            "resumed_cells": resumption.resumed,
        })
        if dropped == 0 or resumption.resumed == 0:
            result.agree = False  # the interruption/resume never happened
        return result
    finally:
        if tmp is not None:
            tmp.cleanup()


# ---------------------------------------------------------------------------
# Oracle 3: cached vs fresh synthesis
# ---------------------------------------------------------------------------
def _controller_matrices(controller):
    sm = getattr(controller, "state_machine", controller)
    return [np.asarray(sm.A), np.asarray(sm.B), np.asarray(sm.C),
            np.asarray(sm.D)]


def oracle_cache(cache_dir, samples=24, seed=321):
    """Build a context fresh, then again through the cache; must be 0 ULP."""
    from ..experiments.schemes import DesignContext

    fresh = DesignContext.create(samples_per_program=samples, seed=seed,
                                 cache=None)
    primed = DesignContext.create(samples_per_program=samples, seed=seed,
                                  cache=cache_dir)
    primed.get_lqg_hw()  # compute once, populating the cache
    cached = DesignContext.create(samples_per_program=samples, seed=seed,
                                  cache=cache_dir)
    cached.get_lqg_hw()  # must come back from disk
    cmp = _Comparator(tolerance_ulp=0.0)
    for label, attr in (("hw", "hw_data"), ("sw", "sw_data")):
        a = getattr(fresh.characterization, attr)
        b = getattr(cached.characterization, attr)
        cmp.check_array(f"characterization.{label}.inputs", a.inputs, b.inputs)
        cmp.check_array(f"characterization.{label}.outputs", a.outputs,
                        b.outputs)
    for i, (ma, mb) in enumerate(zip(
        _controller_matrices(fresh.get_lqg_hw()[0]),
        _controller_matrices(cached.lqg_hw[0]),
    )):
        cmp.check_array(f"lqg_hw.controller.{'ABCD'[i]}", ma, mb)
    return cmp.result("cache-vs-fresh", details={
        "samples": samples,
        "cache_hits": cached.cache.hits if cached.cache else 0,
        "cache_misses": cached.cache.misses if cached.cache else 0,
    })


# ---------------------------------------------------------------------------
# Oracle 3b: the control-plane service vs direct in-process execution
# ---------------------------------------------------------------------------
def oracle_serve(context, schemes=None, workloads=None, seed=7,
                 max_time=10.0, batch=3, cache_dir=None):
    """Answer a concurrent request burst through ``repro serve`` and
    compare every response against a direct :func:`run_workload` call;
    must be **0 ULP** across the JSON wire.

    The burst is fired from parallel client threads so the service's
    concurrent machinery genuinely engages: cells queue together, the
    batcher packs bankable cells from *different* requests into shared
    BoardBank lanes, and a duplicated request exercises the coalescing /
    result-store path.  Afterwards one cell is re-requested warm and must
    come back from the store bit-identical.  The oracle refuses to pass
    vacuously: it fails unless at least one response was answered without
    a fresh execution and at least one bank batch actually formed.
    """
    import tempfile
    import threading

    from ..experiments.runner import run_workload
    from ..serve import ServeClient, serve_background
    from ..serve.protocol import metrics_from_wire

    schemes = list(schemes or ["coordinated-heuristic",
                               "decoupled-heuristic",
                               "yukta-hwssv-osheur"])
    workloads = list(workloads or ["blackscholes", "mcf"])
    cells = [(s, w) for s in schemes for w in workloads]

    direct = {
        (s, w): run_workload(s, w, context, seed=seed, max_time=max_time,
                             record=True)
        for s, w in cells
    }

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-oracle-")
        cache_dir = tmp.name
    try:
        with serve_background(context, jobs=0, batch=batch,
                              batch_wait=0.25, cache=cache_dir) as handle:
            # The burst: every cell once, plus the first cell duplicated —
            # its twin must coalesce onto the in-flight execution (or hit
            # the store if it raced past completion; both are non-fresh).
            burst = cells + [cells[0]]
            responses = [None] * len(burst)

            def _fire(i, scheme, workload):
                request = {"kind": "run", "scheme": scheme,
                           "workload": workload, "seed": seed,
                           "max_time": max_time, "record": True}
                with ServeClient(handle.url, timeout=600.0) as client:
                    responses[i] = client.run(request, timeout=600.0)

            threads = [
                threading.Thread(target=_fire, args=(i, s, w), daemon=True)
                for i, (s, w) in enumerate(burst)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(600.0)

            with ServeClient(handle.url) as client:
                warm = client.run({"kind": "run", "scheme": cells[0][0],
                                   "workload": cells[0][1], "seed": seed,
                                   "max_time": max_time, "record": True})
                stats = client.stats()

        cmp = _Comparator(tolerance_ulp=0.0)
        sources = {}
        checked = list(zip(burst, responses)) + [(cells[0], warm)]
        for (scheme, workload), response in checked:
            loc = (workload, scheme)
            status = response.get("status", -1) \
                if isinstance(response, dict) else -1
            if status != 200:
                cmp.compared += 1
                if cmp.first is None:
                    cmp.first = Divergence(loc, "http_status", 200.0,
                                           float(status), float("inf"))
                continue
            source = response.get("source", "?")
            sources[source] = sources.get(source, 0) + 1
            a = direct[(scheme, workload)]
            b = metrics_from_wire(response["result"])
            cmp.check(loc, "execution_time", a.execution_time,
                      b.execution_time)
            cmp.check(loc, "energy", a.energy, b.energy)
            cmp.check(loc, "completed", float(a.completed),
                      float(b.completed))
            for signal in sorted(a.trace):
                cmp.check_array(f"{workload}/{scheme}/{signal}",
                                a.trace[signal], b.trace[signal])
        serve_stats = stats if isinstance(stats, dict) else {}
        result = cmp.result("serve-vs-direct", details={
            "schemes": schemes, "workloads": workloads, "batch": batch,
            "sources": sources,
            "bank_batches": serve_stats.get("bank_batches", 0),
            "banked_cells": serve_stats.get("banked_cells", 0),
        })
        non_fresh = sources.get("coalesced", 0) + sources.get("cache", 0)
        if non_fresh == 0 or serve_stats.get("bank_batches", 0) == 0:
            result.agree = False  # coalescing / batching never engaged
        return result
    finally:
        if tmp is not None:
            tmp.cleanup()


# ---------------------------------------------------------------------------
# Oracle 4: LQG synthesis vs the textbook Riccati recursion
# ---------------------------------------------------------------------------
def _riccati_recursion(A, B, Q, R, iterations=20000, tol=1e-13):
    """Textbook DARE fixed point: P = Q + A'PA - A'PB (R+B'PB)^-1 B'PA."""
    P = Q.copy()
    for _ in range(iterations):
        BtP = B.T @ P
        gain = np.linalg.solve(R + BtP @ B, BtP @ A)
        P_next = Q + A.T @ P @ (A - B @ gain)
        P_next = 0.5 * (P_next + P_next.T)
        if np.max(np.abs(P_next - P)) <= tol * max(np.max(np.abs(P)), 1.0):
            return P_next
        P = P_next
    return P


def _reference_lqg_gains(model, n_u, output_weights, input_weights,
                         integral_weight=0.05, process_noise=1e-2,
                         measurement_noise=1e-2):
    """Independent re-derivation of the LQG gains by value iteration.

    Replicates the documented augmentation of
    :func:`repro.lqg.synthesis.lqg_synthesize` (leaky output-error
    integrators, weight construction) but solves both Riccati equations by
    the textbook recursion instead of scipy's direct solver.
    """
    A = np.asarray(model.A)
    B = np.asarray(model.B)[:, :n_u]
    C = np.asarray(model.C)
    n, n_y = A.shape[0], C.shape[0]
    output_weights = np.asarray(output_weights, dtype=float)
    input_weights = np.asarray(input_weights, dtype=float)
    rho = 0.985
    A_aug = np.block([[A, np.zeros((n, n_y))], [C, rho * np.eye(n_y)]])
    B_aug = np.vstack([B, np.asarray(model.D)[:, :n_u]])
    Q = np.block([
        [C.T @ np.diag(output_weights) @ C, np.zeros((n, n_y))],
        [np.zeros((n_y, n)), integral_weight * np.eye(n_y)],
    ]) + 1e-9 * np.eye(n + n_y)
    R = np.diag(input_weights**2) + 1e-9 * np.eye(n_u)
    P = _riccati_recursion(A_aug, B_aug, Q, R)
    K_full = np.linalg.solve(R + B_aug.T @ P @ B_aug, B_aug.T @ P @ A_aug)
    W = process_noise * np.eye(n)
    V = measurement_noise * np.eye(n_y)
    S = _riccati_recursion(A.T, C.T, W, V)
    L = S @ C.T @ np.linalg.inv(C @ S @ C.T + V)
    return K_full[:, :n], K_full[:, n:], L


def _default_lqg_model(seed=5, n=4, n_u=2, n_y=2, dt=0.5):
    from ..lti import StateSpace

    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    A *= 0.7 / max(np.max(np.abs(np.linalg.eigvals(A))), 1e-9)
    return StateSpace(A, rng.normal(size=(n, n_u)),
                      rng.normal(size=(n_y, n)),
                      np.zeros((n_y, n_u)), dt=dt)


def oracle_lqg_reference(model=None, n_u=None, output_weights=None,
                         input_weights=None, rtol=1e-6):
    """Compare :func:`lqg_synthesize` gains against the textbook recursion.

    The production path uses scipy's direct DARE solver; the reference is
    a fixed-point value iteration, so agreement is within ``rtol``
    relative (documented tolerance), not bit-exact.
    """
    from ..lqg import lqg_synthesize

    if model is None:
        model = _default_lqg_model()
    n_u = n_u if n_u is not None else model.n_inputs
    output_weights = (
        output_weights if output_weights is not None
        else [1.0] * model.n_outputs
    )
    input_weights = (
        input_weights if input_weights is not None else [1.0] * n_u
    )
    result = lqg_synthesize(model, n_u=n_u, output_weights=output_weights,
                            input_weights=input_weights)
    K_x_ref, K_i_ref, L_ref = _reference_lqg_gains(
        model, n_u, output_weights, input_weights
    )
    # Express the tolerance in ULP relative to each matrix's scale so the
    # shared comparator machinery applies: |a-b| <= rtol*max(|a|,|b|,1).
    cmp = _Comparator(tolerance_ulp=0.0)
    worst_rel = 0.0
    first = None
    compared = 0
    for name, got, ref in (
        ("lqr_gain", result.lqr_gain, K_x_ref),
        ("integral_gain", result.integral_gain, K_i_ref),
        ("kalman_gain", result.kalman_gain, L_ref),
    ):
        got = np.asarray(got, dtype=float)
        ref = np.asarray(ref, dtype=float)
        for idx in np.ndindex(got.shape):
            compared += 1
            a, b = got[idx], ref[idx]
            rel = abs(a - b) / max(abs(a), abs(b), 1.0)
            cmp.check((name, idx), name, a, b)
            if rel > worst_rel:
                worst_rel = rel
            if rel > rtol and first is None:
                first = Divergence((name, idx), name, float(a), float(b),
                                   ulp_distance(a, b))
    return OracleResult(
        name="lqg-vs-textbook",
        agree=first is None and bool(result.closed_loop_stable),
        compared=compared,
        max_ulp=cmp.max_ulp,
        tolerance_ulp=float("nan"),  # tolerance is relative, not ULP
        divergence=first,
        details={"rtol": rtol, "worst_rel_error": worst_rel,
                 "closed_loop_stable": result.closed_loop_stable},
    )


# ---------------------------------------------------------------------------
# Rack oracles: the third layer on the bank vs on scalar boards
# ---------------------------------------------------------------------------
def oracle_rack(seed=3, max_time=120.0, n_boards=4):
    """Rack-on-BoardBank vs rack-on-scalar-boards; must be 0 ULP.

    One heterogeneous rack (mixed board specs), a job stream, and both
    fault kinds (a board dropping offline, a power sensor dropping out)
    run twice: once with the fused-schedule bank underneath, once
    stepping each board through scalar ``run_period``.  Every rack trace
    signal, every per-board budget row, and every board's physical end
    state must agree to the bit.  Non-vacuity: the banked run must have
    actually fused (fused_ticks > 0), the rack must actually be
    heterogeneous (≥ 2 distinct specs), and both faults must have fired.
    """
    from ..board.specs import BIG, LITTLE
    from ..rack import (
        JobSpec,
        Rack,
        RackBoardFault,
        SSVRackController,
        heterogeneous_rack_spec,
    )

    workloads = ("blackscholes@0.08", "mcf@0.1", "streamcluster@0.08",
                 "x264@0.08", "canneal@0.08", "bodytrack@0.1")
    jobs = tuple(
        JobSpec(name=f"j{i}", workload=workloads[i % len(workloads)],
                arrival=3.0 * i, sla=70.0)
        for i in range(6)
    )
    faults = (
        RackBoardFault(board=1, start=10.0, duration=14.0, kind="offline"),
        RackBoardFault(board=2, start=8.0, duration=10.0,
                       kind="power-sensor"),
    )
    spec = heterogeneous_rack_spec(n_boards=n_boards, jobs=jobs,
                                   faults=faults)

    def _run(use_bank):
        rack = Rack(spec, controller=SSVRackController(spec),
                    use_bank=use_bank, record=True, record_boards=True,
                    seed=seed, telemetry=None)
        return rack, rack.run(max_time=max_time)

    rack_banked, banked = _run(True)
    rack_scalar, scalar = _run(False)

    cmp = _Comparator(tolerance_ulp=0.0)
    a_arrays = banked.trace.as_arrays()
    b_arrays = scalar.trace.as_arrays()
    for signal in sorted(a_arrays):
        cmp.check_array(f"rack/{signal}", a_arrays[signal],
                        b_arrays[signal])
    for k, (a, b) in enumerate(zip(rack_banked.boards, rack_scalar.boards)):
        loc = f"board {k}"
        cmp.check(loc, "time", a.time, b.time)
        cmp.check(loc, "energy", a.energy, b.energy)
        cmp.check(loc, "temperature", a.thermal.temperature,
                  b.thermal.temperature)
        for name in (BIG, LITTLE):
            cmp.check(loc, f"power_sensor_{name}",
                      a.power_sensors[name].read(),
                      b.power_sensors[name].read())
            cmp.check(loc, f"frequency_{name}",
                      a.clusters[name].frequency, b.clusters[name].frequency)
        trace_a = a.trace.as_arrays()
        trace_b = b.trace.as_arrays()
        for signal in sorted(trace_a):
            cmp.check_array(f"{loc}/{signal}", trace_a[signal],
                            trace_b[signal])
    cmp.check("rack", "jobs_completed", float(banked.jobs_completed),
              float(scalar.jobs_completed))
    cmp.check("rack", "sla_misses", float(banked.sla_misses),
              float(scalar.sla_misses))
    cmp.check("rack", "requeues", float(banked.requeues),
              float(scalar.requeues))

    # Agreement without coverage proves nothing.
    counters = banked.bank_counters or {}
    cmp.check("coverage", "fused_kernel_engaged",
              float(counters.get("fused_ticks", 0) > 0), 1.0)
    distinct_specs = len({id(b) for b in spec.boards})
    cmp.check("coverage", "heterogeneous_rack",
              float(distinct_specs >= 2), 1.0)
    cmp.check("coverage", "offline_fault_fired",
              float(banked.requeues > 0), 1.0)
    sensor_scalars = counters.get("events", {}).get("plan_refused", 0)
    cmp.check("coverage", "sensor_fault_forced_scalar",
              float(sensor_scalars > 0), 1.0)
    return cmp.result("rack-bank-vs-scalar", details={
        "boards": n_boards, "jobs": len(jobs),
        "distinct_specs": distinct_specs,
        "counters": counters,
        "requeues": banked.requeues,
    })


def oracle_rack_resume(seed=5, max_time=200.0, jobs=2, checkpoint_dir=None):
    """Interrupt a rack campaign, resume it, compare; must be 0 ULP.

    The rack job-stream cells run as engine ``("call", ...)`` tasks under
    a chaos policy that fails every other cell with no retry budget,
    journaling the survivors (the PR 6 checkpoint machinery).  The resume
    pass must stitch journaled + fresh cells into results bit-identical
    to an uninterrupted serial run.  Non-vacuous: fails unless the chaos
    actually dropped at least one cell and the resume actually replayed
    journaled cells from disk.
    """
    import tempfile

    from ..experiments.engine import parallel_map
    from ..experiments.rack import CONTROLLERS, _stream_cell
    from ..runtime import (
        CellFailure,
        ChaosPolicy,
        CheckpointJournal,
        RetryPolicy,
    )

    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-rack-resume-")
        checkpoint_dir = tmp.name
    try:
        tasks = [
            ("call", (_stream_cell, (controller, 4, 6, True, True, seed,
                                     max_time), {}))
            for controller in CONTROLLERS
        ]
        fresh = parallel_map(tasks, None, jobs=None, prime=())
        journal = CheckpointJournal(checkpoint_dir)
        chaos = ChaosPolicy(error_cells=tuple(range(1, len(tasks), 2)))
        interrupted = parallel_map(
            tasks, None, jobs=jobs, prime=(), checkpoint=journal,
            chaos=chaos, backoff=RetryPolicy(max_retries=0),
            on_error="collect")
        dropped = sum(1 for cell in interrupted
                      if isinstance(cell, CellFailure))
        resumption = CheckpointJournal(checkpoint_dir)
        resumed = parallel_map(tasks, None, jobs=jobs, prime=(),
                               checkpoint=resumption, resume=True)
        cmp = _Comparator(tolerance_ulp=0.0)
        for controller, a, b in zip(CONTROLLERS, fresh, resumed):
            if isinstance(b, CellFailure):
                cmp.compared += 1
                if cmp.first is None:
                    cmp.first = Divergence(controller, "cell", 1.0, 0.0,
                                           float("inf"))
                continue
            for key in sorted(a):
                if isinstance(a[key], str):
                    cmp.check(controller, key, float(a[key] == b[key]), 1.0)
                else:
                    cmp.check(controller, key, float(a[key]), float(b[key]))
        result = cmp.result("rack-resume-vs-fresh", details={
            "controllers": list(CONTROLLERS), "jobs": jobs,
            "interrupted_cells": dropped,
            "resumed_cells": resumption.resumed,
        })
        if dropped == 0 or resumption.resumed == 0:
            result.agree = False  # the interruption/resume never happened
        return result
    finally:
        if tmp is not None:
            tmp.cleanup()
