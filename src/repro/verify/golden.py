"""Golden-trace regression suite: canonical runs as reviewed artifacts.

A *golden trace* is the recorded behavior of one canonical
(scheme, workload) cell — sub-sampled board trace plus run summary —
checked into ``tests/golden/`` as JSON.  The comparator replays the cell
and diffs the fresh trace against the golden one with per-signal
tolerances, so any behavioral drift (a model change, a solver change, an
accidental semantics change in the fastpath) shows up as a reviewable
diff instead of silently shifting every downstream figure.

The canonical matrix uses the heuristic schemes only: they need no
synthesized artifacts, so the goldens exercise the full board physics and
control loop while staying fast and independent of scipy solver details.

Regenerate after an *intentional* behavior change with::

    python -m repro verify --regen-golden

and commit the resulting JSON diff alongside the code change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .oracles import ulp_distance

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_MATRIX",
    "GOLDEN_SIGNALS",
    "TraceMismatch",
    "capture_trace",
    "capture_traces_batched",
    "compare_traces",
    "golden_path",
    "load_golden",
    "write_golden",
    "verify_goldens",
    "regen_goldens",
    "RACK_GOLDEN_MATRIX",
    "RACK_GOLDEN_SIGNALS",
    "capture_rack_trace",
    "regen_rack_goldens",
    "verify_rack_goldens",
]

GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

# The canonical scheme x workload matrix (kept deliberately small: these
# run on every CI push).  max_time bounds the simulated horizon so a cell
# costs well under a second of wall clock.
GOLDEN_MATRIX = (
    ("coordinated-heuristic", "blackscholes"),
    ("coordinated-heuristic", "mcf"),
    ("decoupled-heuristic", "blackscholes"),
)

# Which BoardTrace signals are pinned, sub-sampled every ``stride`` steps.
GOLDEN_SIGNALS = (
    "times", "power_big", "power_little", "temperature", "bips_total",
    "freq_big", "freq_little", "cores_big", "cores_little",
)

_FORMAT = 1
_DEFAULT_RTOL = 1e-9
_DEFAULT_ATOL = 1e-12


@dataclass
class TraceMismatch:
    """One golden-vs-fresh disagreement beyond tolerance."""

    location: str  # e.g. "signals.power_big[12]" or "summary.energy"
    golden: float
    fresh: float
    ulp: float

    def __str__(self):
        return (
            f"{self.location}: golden {self.golden!r} vs fresh "
            f"{self.fresh!r} ({self.ulp} ULP)"
        )


def golden_path(scheme, workload, golden_dir=None):
    root = Path(golden_dir) if golden_dir is not None else GOLDEN_DIR
    return root / f"{scheme}__{workload}.json"


def _package_trace(metrics, scheme, workload, context, seed, max_time,
                   stride):
    """Shape one run's metrics into the golden-trace JSON dict."""
    signals = {}
    for name in GOLDEN_SIGNALS:
        arr = np.asarray(metrics.trace.get(name, ()), dtype=float)
        signals[name] = [float(v) for v in arr[::stride]]
    return {
        "format": _FORMAT,
        "meta": {
            "scheme": scheme,
            "workload": workload,
            "seed": seed,
            "max_time": max_time,
            "stride": stride,
            "sim_dt": context.spec.sim_dt,
            "control_period": context.spec.control_period,
        },
        "summary": {
            "execution_time": float(metrics.execution_time),
            "energy": float(metrics.energy),
            "completed": bool(metrics.completed),
            "emergency_trips": int(metrics.notes.get("emergency_trips", 0)),
        },
        "signals": signals,
    }


def capture_trace(scheme, workload, context, seed=7, max_time=20.0,
                  stride=10):
    """Run one canonical cell and package its trace as a JSON-able dict."""
    from ..experiments.runner import run_workload

    metrics = run_workload(scheme, workload, context, seed=seed,
                           max_time=max_time, record=True, telemetry=None)
    return _package_trace(metrics, scheme, workload, context, seed, max_time,
                          stride)


def capture_traces_batched(matrix, context, seed=7, max_time=20.0,
                           stride=10):
    """Run canonical cells as one lockstep board bank; ordered trace dicts.

    The banked runner is bit-identical to :func:`capture_trace`'s serial
    path per cell, so the returned dicts match the serial captures (and
    the pinned goldens) exactly — :func:`verify_goldens` with
    ``batched=True`` asserts precisely that.
    """
    from ..experiments.bank_runner import run_cells_banked

    cells = [(scheme, workload, seed) for scheme, workload in matrix]
    results = run_cells_banked(cells, context, max_time=max_time,
                               record=True, telemetry=None)
    return [
        _package_trace(metrics, scheme, workload, context, seed, max_time,
                       stride)
        for (scheme, workload), metrics in zip(matrix, results)
    ]


def compare_traces(golden, fresh, rtol=_DEFAULT_RTOL, atol=_DEFAULT_ATOL,
                   max_mismatches=20):
    """Diff two trace dicts; returns a list of :class:`TraceMismatch`.

    ``rtol``/``atol`` absorb harmless last-bit float drift (e.g. a libm
    difference between the machine that minted the golden and the one
    verifying it) while still catching any genuine model change, which
    moves signals by orders of magnitude more.
    """
    mismatches = []

    def _check(location, a, b):
        if len(mismatches) >= max_mismatches:
            return
        if isinstance(a, bool) or isinstance(b, bool):
            if bool(a) != bool(b):
                mismatches.append(TraceMismatch(location, float(a), float(b),
                                                float("inf")))
            return
        a, b = float(a), float(b)
        if a == b:
            return
        if not (np.isfinite(a) and np.isfinite(b)):
            if not (np.isnan(a) and np.isnan(b)):
                mismatches.append(
                    TraceMismatch(location, a, b, ulp_distance(a, b))
                )
            return
        if abs(a - b) > atol + rtol * max(abs(a), abs(b)):
            mismatches.append(TraceMismatch(location, a, b, ulp_distance(a, b)))

    for key in sorted(set(golden.get("summary", {})) | set(fresh.get("summary", {}))):
        ga = golden.get("summary", {}).get(key)
        fa = fresh.get("summary", {}).get(key)
        if ga is None or fa is None:
            mismatches.append(TraceMismatch(f"summary.{key}",
                                            float("nan"), float("nan"),
                                            float("inf")))
            continue
        _check(f"summary.{key}", ga, fa)
    golden_signals = golden.get("signals", {})
    fresh_signals = fresh.get("signals", {})
    for name in sorted(set(golden_signals) | set(fresh_signals)):
        ga = golden_signals.get(name)
        fa = fresh_signals.get(name)
        if ga is None or fa is None or len(ga) != len(fa):
            mismatches.append(TraceMismatch(
                f"signals.{name}.length",
                float(len(ga)) if ga is not None else float("nan"),
                float(len(fa)) if fa is not None else float("nan"),
                float("inf"),
            ))
            continue
        for i, (a, b) in enumerate(zip(ga, fa)):
            if len(mismatches) >= max_mismatches:
                break
            _check(f"signals.{name}[{i}]", a, b)
    return mismatches


def write_golden(trace, scheme, workload, golden_dir=None):
    """Serialize one golden trace (full float precision); returns its path."""
    path = golden_path(scheme, workload, golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=1, sort_keys=True) + "\n")
    return path


def load_golden(scheme, workload, golden_dir=None):
    """Load one golden trace, or ``None`` if it has not been minted."""
    path = golden_path(scheme, workload, golden_dir)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def regen_goldens(context, golden_dir=None, matrix=None, log=None):
    """Re-mint every golden trace in the canonical matrix."""
    paths = []
    for scheme, workload in (matrix or GOLDEN_MATRIX):
        trace = capture_trace(scheme, workload, context)
        paths.append(write_golden(trace, scheme, workload, golden_dir))
        if log is not None:
            log(f"golden regenerated: {paths[-1]}")
    return paths


def verify_goldens(context, golden_dir=None, matrix=None, rtol=_DEFAULT_RTOL,
                   atol=_DEFAULT_ATOL, batched=False):
    """Replay the canonical matrix against the checked-in goldens.

    Returns ``{cell_name: [TraceMismatch, ...]}``; a missing golden file is
    reported as a single synthetic mismatch so CI fails loudly rather than
    skipping silently.  ``batched=True`` replays the cells through the
    lockstep board bank (the engine's ``--batch`` path) instead of the
    serial runner — the goldens pin both paths to the same behavior.
    """
    matrix = list(matrix or GOLDEN_MATRIX)
    results = {}
    goldens = {}
    groups = {}  # (seed, max_time, stride) -> [(scheme, workload)]
    for scheme, workload in matrix:
        cell = f"{scheme}/{workload}"
        golden = load_golden(scheme, workload, golden_dir)
        if golden is None:
            results[cell] = [TraceMismatch(
                "golden-file-missing", float("nan"), float("nan"),
                float("inf"),
            )]
            continue
        goldens[(scheme, workload)] = golden
        meta = golden.get("meta", {})
        params = (meta.get("seed", 7), meta.get("max_time", 20.0),
                  meta.get("stride", 10))
        if batched:
            groups.setdefault(params, []).append((scheme, workload))
        else:
            fresh = capture_trace(scheme, workload, context, seed=params[0],
                                  max_time=params[1], stride=params[2])
            results[cell] = compare_traces(golden, fresh, rtol=rtol,
                                           atol=atol)
    for (seed, max_time, stride), cells in groups.items():
        fresh_traces = capture_traces_batched(cells, context, seed=seed,
                                              max_time=max_time,
                                              stride=stride)
        for (scheme, workload), fresh in zip(cells, fresh_traces):
            results[f"{scheme}/{workload}"] = compare_traces(
                goldens[(scheme, workload)], fresh, rtol=rtol, atol=atol
            )
    return results


# ---------------------------------------------------------------------------
# Rack goldens: canonical third-layer campaigns as reviewed artifacts
# ---------------------------------------------------------------------------
# controller x scenario; "fault" drops board 1 offline mid-campaign.
RACK_GOLDEN_MATRIX = (
    ("rack-ssv", "stream"),
    ("rack-uniform", "stream"),
    ("rack-ssv", "fault"),
)

RACK_GOLDEN_SIGNALS = (
    "times", "cap_eff", "power_true", "budget_total", "inlet",
    "queue_depth", "churn", "online",
)


def _rack_scenario(scenario, seed):
    """The canonical rack plant for one golden scenario."""
    from ..rack import JobSpec, RackBoardFault, heterogeneous_rack_spec

    workloads = ("blackscholes@0.08", "mcf@0.1", "streamcluster@0.08",
                 "x264@0.08", "canneal@0.08", "bodytrack@0.1")
    jobs = tuple(
        JobSpec(name=f"j{i}", workload=workloads[i % len(workloads)],
                arrival=3.0 * i, sla=70.0)
        for i in range(6)
    )
    faults = ()
    if scenario == "fault":
        faults = (RackBoardFault(board=1, start=10.0, duration=12.0,
                                 kind="offline"),)
    elif scenario != "stream":
        raise ValueError(f"unknown rack golden scenario {scenario!r}")
    return heterogeneous_rack_spec(n_boards=4, jobs=jobs, faults=faults)


def capture_rack_trace(controller, scenario, seed=7, max_time=200.0):
    """Run one canonical rack cell and package it as a JSON-able dict."""
    from ..experiments.rack import make_rack_controller
    from ..rack import Rack

    spec = _rack_scenario(scenario, seed)
    rack = Rack(spec, controller=make_rack_controller(controller, spec),
                use_bank=True, record=True, seed=seed, telemetry=None)
    result = rack.run(max_time=max_time)
    arrays = result.trace.as_arrays()
    signals = {
        name: [float(v) for v in arrays[name]]
        for name in RACK_GOLDEN_SIGNALS
    }
    for k in range(spec.n_boards):
        signals[f"budget_{k}"] = [float(v) for v in arrays["budgets"][:, k]]
    return {
        "format": _FORMAT,
        "meta": {
            "controller": controller,
            "scenario": scenario,
            "seed": seed,
            "max_time": max_time,
            "boards": spec.n_boards,
            "rack_period": spec.rack_period,
            "power_cap": spec.power_cap,
        },
        "summary": {
            "periods": int(result.periods),
            "energy": float(result.energy),
            "makespan": float(result.makespan),
            "jobs_completed": int(result.jobs_completed),
            "sla_misses": int(result.sla_misses),
            "requeues": int(result.requeues),
        },
        "signals": signals,
    }


def regen_rack_goldens(golden_dir=None, matrix=None, log=None):
    """Re-mint every rack golden trace in the canonical matrix."""
    paths = []
    for controller, scenario in (matrix or RACK_GOLDEN_MATRIX):
        trace = capture_rack_trace(controller, scenario)
        paths.append(write_golden(trace, controller, scenario, golden_dir))
        if log is not None:
            log(f"golden regenerated: {paths[-1]}")
    return paths


def verify_rack_goldens(golden_dir=None, matrix=None, rtol=_DEFAULT_RTOL,
                        atol=_DEFAULT_ATOL):
    """Replay the rack matrix against its goldens; missing files are loud."""
    results = {}
    for controller, scenario in (matrix or RACK_GOLDEN_MATRIX):
        cell = f"{controller}/{scenario}"
        golden = load_golden(controller, scenario, golden_dir)
        if golden is None:
            results[cell] = [TraceMismatch(
                "golden-file-missing", float("nan"), float("nan"),
                float("inf"),
            )]
            continue
        fresh = capture_rack_trace(controller, scenario)
        results[cell] = compare_traces(golden, fresh, rtol=rtol, atol=atol)
    return results
