"""The ``repro verify`` orchestrator: monitor + oracles + goldens.

One entry point, :func:`run_verify`, exercises all three verification
pillars and folds the outcomes into a :class:`VerifyReport`:

1. **Invariant monitoring** — nominal fault-free runs (heuristic always;
   plus the full Yukta SSV scheme when not ``--quick``) execute under an
   active :class:`~repro.verify.invariants.InvariantMonitor`; any
   violation fails the report.
2. **Differential oracles** — fastpath vs scalar, parallel vs serial,
   interrupted+resumed vs uninterrupted, cached vs fresh synthesis, the
   control-plane service (coalescing + bank batching + JSON wire) vs
   direct execution (all bit-exact), and LQG vs the textbook Riccati
   recursion (documented relative tolerance).
3. **Golden traces** — the canonical matrix replayed against
   ``tests/golden/`` (or re-minted with ``regen_golden=True``).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

from .golden import (
    GOLDEN_DIR,
    regen_goldens,
    regen_rack_goldens,
    verify_goldens,
    verify_rack_goldens,
)
from .invariants import InvariantMonitor, activate_monitor, deactivate_monitor
from .oracles import (
    oracle_bank,
    oracle_bank_matrix,
    oracle_bank_schedule,
    oracle_cache,
    oracle_fastpath,
    oracle_lqg_reference,
    oracle_parallel_matrix,
    oracle_rack,
    oracle_rack_resume,
    oracle_resume,
    oracle_serve,
)

__all__ = ["VerifyReport", "run_verify"]


@dataclass
class VerifyReport:
    """Aggregated outcome of one verification pass."""

    quick: bool
    monitor: InvariantMonitor = None
    monitored_runs: list = field(default_factory=list)  # (scheme, workload)
    oracles: list = field(default_factory=list)  # [OracleResult]
    golden: dict = field(default_factory=dict)  # cell -> [TraceMismatch]
    regenerated: list = field(default_factory=list)  # paths, if regen ran
    elapsed: float = 0.0

    @property
    def ok(self):
        if self.monitor is not None and not self.monitor.ok:
            return False
        if any(not oracle.agree for oracle in self.oracles):
            return False
        if any(self.golden.values()):
            return False
        return True

    def render(self):
        mode = "quick" if self.quick else "full"
        lines = [f"repro verify ({mode} mode, {self.elapsed:.1f}s)", ""]
        if self.monitor is not None:
            runs = ", ".join(f"{s}/{w}" for s, w in self.monitored_runs)
            lines.append(f"[1/3] invariant monitor over nominal runs: {runs}")
            lines.append("  " + self.monitor.summary().replace("\n", "\n  "))
            lines.append("")
        lines.append("[2/3] differential oracles")
        for oracle in self.oracles:
            lines.append("  " + oracle.render().replace("\n", "\n  "))
        lines.append("")
        if self.regenerated:
            lines.append(f"[3/3] golden traces: regenerated "
                         f"{len(self.regenerated)} file(s)")
            lines.extend(f"  {path}" for path in self.regenerated)
        else:
            lines.append("[3/3] golden traces")
            for cell in sorted(self.golden):
                mismatches = self.golden[cell]
                if not mismatches:
                    lines.append(f"  {cell}: OK")
                else:
                    lines.append(f"  {cell}: {len(mismatches)} mismatch(es)")
                    lines.extend(f"    {m}" for m in mismatches[:5])
        lines.append("")
        lines.append("VERIFY: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_verify(quick=True, regen_golden=False, golden_dir=None, samples=None,
               seed=99, jobs=2, telemetry=None, log=None):
    """Run the full verification pass; returns a :class:`VerifyReport`.

    ``quick`` trims the characterization budget, skips the (synthesis-
    heavy) SSV monitored run, and shortens the simulated horizons —
    the CI smoke configuration.  ``regen_golden`` re-mints the golden
    files instead of comparing against them.
    """
    from ..experiments.runner import run_workload
    from ..experiments.schemes import DesignContext

    def _log(message):
        if log is not None:
            log(message)

    t0 = time.perf_counter()
    report = VerifyReport(quick=quick)
    golden_dir = golden_dir if golden_dir is not None else GOLDEN_DIR
    samples = samples if samples is not None else (48 if quick else 120)

    _log("verify: building design context "
         f"(samples_per_program={samples}, seed={seed})...")
    context = DesignContext.create(samples_per_program=samples, seed=seed)

    # --- pillar 1: invariant monitor over nominal fault-free runs -------
    monitor = InvariantMonitor(telemetry=telemetry)
    report.monitor = monitor
    monitored = [("coordinated-heuristic", "blackscholes"),
                 ("decoupled-heuristic", "mcf")]
    if not quick:
        monitored.append(("yukta-hwssv-osssv", "blackscholes"))
    horizon = 20.0 if quick else 60.0
    activate_monitor(monitor)
    try:
        for scheme, workload in monitored:
            _log(f"verify: monitored nominal run {scheme}/{workload}...")
            run_workload(scheme, workload, context, seed=7,
                         max_time=horizon, record=False)
            report.monitored_runs.append((scheme, workload))
        # The rack layer checks its conservation invariants through the
        # same active monitor (sum of budgets <= cap, floors respected,
        # jobs neither lost nor duplicated).
        _log("verify: monitored nominal rack campaign...")
        from ..rack import JobSpec, Rack, default_rack_spec

        rack_jobs = tuple(
            JobSpec(name=f"j{i}", workload="mcf@0.08", arrival=3.0 * i,
                    sla=60.0)
            for i in range(3)
        )
        rack = Rack(default_rack_spec(n_boards=2, jobs=rack_jobs), seed=7,
                    telemetry=None)
        rack.run(max_time=60.0 if quick else 120.0)
        report.monitored_runs.append(("rack-ssv", "job-stream"))
    finally:
        deactivate_monitor()
    _log("verify: " + monitor.summary().splitlines()[0])

    # --- pillar 2: differential oracles ---------------------------------
    _log("verify: oracle fastpath-vs-scalar...")
    report.oracles.append(
        oracle_fastpath(spec=context.spec, periods=20 if quick else 60)
    )
    _log("verify: oracle bank-vs-scalar...")
    report.oracles.append(
        oracle_bank(spec=context.spec, periods=15 if quick else 40)
    )
    _log("verify: oracle bank-schedule-vs-fastpath...")
    report.oracles.append(
        oracle_bank_schedule(spec=context.spec,
                             periods=20 if quick else 48)
    )
    _log("verify: oracle bank-matrix-vs-serial...")
    report.oracles.append(
        oracle_bank_matrix(context, max_time=8.0 if quick else 20.0)
    )
    _log("verify: oracle parallel-vs-serial...")
    report.oracles.append(
        oracle_parallel_matrix(context, max_time=8.0 if quick else 20.0,
                               jobs=jobs)
    )
    _log("verify: oracle resume-vs-fresh...")
    with tempfile.TemporaryDirectory(prefix="repro-verify-ckpt-") as tmp:
        report.oracles.append(
            oracle_resume(context, max_time=8.0 if quick else 20.0,
                          jobs=jobs, checkpoint_dir=tmp)
        )
    _log("verify: oracle serve-vs-direct...")
    with tempfile.TemporaryDirectory(prefix="repro-verify-serve-") as tmp:
        report.oracles.append(
            oracle_serve(context, max_time=8.0 if quick else 20.0,
                         cache_dir=tmp)
        )
    _log("verify: oracle rack-bank-vs-scalar...")
    report.oracles.append(
        oracle_rack(max_time=80.0 if quick else 160.0)
    )
    _log("verify: oracle rack-resume-vs-fresh...")
    with tempfile.TemporaryDirectory(prefix="repro-verify-rack-") as tmp:
        report.oracles.append(
            oracle_rack_resume(max_time=120.0 if quick else 240.0,
                               jobs=jobs, checkpoint_dir=tmp)
        )
    _log("verify: oracle cache-vs-fresh...")
    with tempfile.TemporaryDirectory(prefix="repro-verify-cache-") as tmp:
        report.oracles.append(
            oracle_cache(tmp, samples=24 if quick else 48)
        )
    _log("verify: oracle lqg-vs-textbook...")
    report.oracles.append(oracle_lqg_reference())
    for oracle in report.oracles:
        _log("verify: " + oracle.render().splitlines()[0])

    # --- pillar 3: golden traces ----------------------------------------
    if regen_golden:
        _log("verify: regenerating golden traces...")
        report.regenerated = regen_goldens(context, golden_dir, log=_log)
        _log("verify: regenerating rack golden traces...")
        report.regenerated.extend(regen_rack_goldens(golden_dir, log=_log))
    else:
        _log("verify: comparing golden traces...")
        report.golden = verify_goldens(context, golden_dir)
        _log("verify: comparing golden traces (banked --batch path)...")
        batched = verify_goldens(context, golden_dir, batched=True)
        report.golden.update({
            f"{cell} [batch]": mismatches
            for cell, mismatches in batched.items()
        })
        _log("verify: comparing rack golden traces...")
        report.golden.update(verify_rack_goldens(golden_dir))

    report.elapsed = time.perf_counter() - t0
    return report
