"""H-infinity output-feedback synthesis (two-Riccati central controller).

The synthesis runs in continuous time (the augmented plants built by
:mod:`repro.robust.augmentation` are continuous by construction) under the
standard regularity assumptions:

* ``D11 = 0`` and ``D22 = 0`` (guaranteed by the plant builder's strictly
  proper weights and filtered measurements);
* ``D12`` full column rank, ``D21`` full row rank;
* orthogonality ``D12' C1 = 0`` and ``B1 D21' = 0`` (again by construction).

Under these assumptions the suboptimal-gamma central controller is given by
the classical two-Riccati (DGKF) formulas.  Feasibility of a given gamma is
checked three ways: the two Riccati equations admit stabilizing PSD
solutions, the spectral-radius coupling condition holds, and — because we do
not merely trust formulas — the resulting controller is validated by closing
the loop and computing the achieved H-infinity norm.  A bisection then finds
(approximately) the smallest achievable gamma.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import PartitionedSystem, StateSpace, hinf_norm, lft_lower
from .riccati import RiccatiError, solve_hinf_riccati

__all__ = ["HinfResult", "hinf_synthesize", "SynthesisError"]


class SynthesisError(RuntimeError):
    """Raised when no stabilizing controller can be synthesized."""


@dataclass
class HinfResult:
    """Outcome of an H-infinity synthesis."""

    controller: StateSpace  # continuous-time controller
    gamma: float  # gamma the design was accepted at
    achieved_norm: float  # verified closed-loop H-infinity norm
    closed_loop: StateSpace
    bisection_steps: int

    def summary(self):
        return (
            f"Hinf controller: order {self.controller.n_states}, "
            f"gamma={self.gamma:.4f}, achieved ||Tzw||={self.achieved_norm:.4f}"
        )


def _check_assumptions(plant: PartitionedSystem, tol=1e-7):
    A, B1, B2, C1, C2, D11, D12, D21, D22 = plant.blocks()
    scale = max(1.0, np.abs(plant.system.D).max())
    if np.abs(D11).max() > tol * scale:
        raise SynthesisError("plant violates D11 = 0 (use strictly proper weights)")
    if np.abs(D22).max() > tol * scale:
        raise SynthesisError("plant violates D22 = 0 (filter the measurements)")
    if np.linalg.matrix_rank(D12) < D12.shape[1]:
        raise SynthesisError("D12 is column-rank deficient (add input weights)")
    if np.linalg.matrix_rank(D21) < D21.shape[0]:
        raise SynthesisError("D21 is row-rank deficient (add measurement noise)")
    cross_u = np.abs(D12.T @ C1).max() if C1.size else 0.0
    cross_y = np.abs(B1 @ D21.T).max() if B1.size else 0.0
    if cross_u > 1e-6 * max(1.0, np.abs(C1).max()):
        raise SynthesisError("D12'C1 != 0: plant violates the orthogonality structure")
    if cross_y > 1e-6 * max(1.0, np.abs(B1).max()):
        raise SynthesisError("B1 D21' != 0: plant violates the orthogonality structure")


def _normalize(plant: PartitionedSystem):
    """Rescale u and y_m so that D12'D12 = I and D21 D21' = I.

    Returns the scaled plant and the matrices (Tu, Ty) needed to undo the
    scaling on the synthesized controller: ``K_orig = Tu K_scaled Ty``.
    """
    A, B1, B2, C1, C2, D11, D12, D21, D22 = plant.blocks()
    Ru = D12.T @ D12
    Ry = D21 @ D21.T
    # Symmetric inverse square roots.
    def inv_sqrt(M):
        vals, vecs = np.linalg.eigh(M)
        if np.min(vals) <= 0:
            raise SynthesisError("degenerate D12/D21 normalization")
        return vecs @ np.diag(vals**-0.5) @ vecs.T

    Tu = inv_sqrt(Ru)  # u = Tu u_tilde
    Ty = inv_sqrt(Ry)  # y_tilde = Ty y_m
    B2s = B2 @ Tu
    D12s = D12 @ Tu
    C2s = Ty @ C2
    D21s = Ty @ D21
    n_w, n_z = plant.n_w, plant.n_z
    B = np.hstack([B1, B2s])
    C = np.vstack([C1, C2s])
    D = np.block([[D11, D12s], [D21s, np.zeros((C2s.shape[0], B2s.shape[1]))]])
    scaled = PartitionedSystem(
        StateSpace(A, B, C, D, dt=plant.system.dt), n_w=n_w, n_z=n_z
    )
    return scaled, Tu, Ty


def _central_controller(plant: PartitionedSystem, gamma):
    """DGKF central controller for a normalized, orthogonal plant."""
    A, B1, B2, C1, C2, D11, D12, D21, D22 = plant.blocks()
    X = solve_hinf_riccati(A, B1, B2, C1, gamma)
    Y = solve_hinf_riccati(A.T, C1.T, C2.T, B1.T, gamma)
    coupling = np.max(np.abs(np.linalg.eigvals(X @ Y))) if X.size else 0.0
    if coupling >= gamma**2:
        raise RiccatiError(
            f"coupling condition failed: rho(XY)={coupling:.4g} >= gamma^2"
        )
    gi2 = 1.0 / gamma**2
    F = -B2.T @ X
    L = -Y @ C2.T
    Z = np.linalg.inv(np.eye(A.shape[0]) - gi2 * Y @ X)
    A_hat = A + gi2 * (B1 @ B1.T) @ X + B2 @ F + Z @ L @ C2
    controller = StateSpace(A_hat, -Z @ L, F, np.zeros((F.shape[0], C2.shape[0])))
    return controller


def hinf_synthesize(
    plant: PartitionedSystem,
    gamma_min=1e-3,
    gamma_max=1e4,
    rel_tol=0.02,
    margin=1.05,
    max_bisections=40,
):
    """Find a near-minimal-gamma H-infinity controller for ``plant``.

    The plant must be continuous-time and satisfy the module-level
    assumptions (checked).  The returned controller is accepted only after
    closed-loop verification; ``margin`` backs the final gamma off the
    feasibility boundary for numerical headroom.
    """
    if plant.system.is_discrete:
        raise SynthesisError("hinf_synthesize expects a continuous-time plant")
    if plant.n_u == 0 or plant.n_y == 0:
        raise SynthesisError("plant has no control inputs or no measurements")
    _check_assumptions(plant)
    scaled, Tu, Ty = _normalize(plant)

    def try_gamma(gamma):
        try:
            k_scaled = _central_controller(scaled, gamma)
        except RiccatiError:
            return None
        # Undo normalization: u = Tu u_tilde, y_tilde = Ty y.
        controller = StateSpace(
            k_scaled.A, k_scaled.B @ Ty, Tu @ k_scaled.C, Tu @ k_scaled.D @ Ty
        )
        closed = lft_lower(plant, controller)
        if not closed.is_stable(tol=1e-10):
            return None
        achieved = hinf_norm(closed)
        if not np.isfinite(achieved) or achieved > gamma * 1.02:
            return None
        return controller, closed, achieved

    # Find a feasible upper gamma by doubling.
    gamma_hi = max(gamma_min * 4.0, 1.0)
    feasible = None
    for _ in range(40):
        feasible = try_gamma(gamma_hi)
        if feasible is not None:
            break
        gamma_hi *= 2.0
        if gamma_hi > gamma_max:
            raise SynthesisError(
                f"no stabilizing Hinf controller found up to gamma={gamma_max}"
            )
    gamma_lo = gamma_min
    steps = 0
    best_gamma = gamma_hi
    best = feasible
    while gamma_hi - gamma_lo > rel_tol * gamma_hi and steps < max_bisections:
        steps += 1
        gamma_mid = float(np.sqrt(gamma_lo * gamma_hi))
        attempt = try_gamma(gamma_mid)
        if attempt is not None:
            gamma_hi = gamma_mid
            best_gamma, best = gamma_mid, attempt
        else:
            gamma_lo = gamma_mid
    # Re-synthesize slightly away from the boundary for numerical headroom.
    final_gamma = best_gamma * margin
    final = try_gamma(final_gamma)
    if final is None:
        final, final_gamma = best, best_gamma
    controller, closed, achieved = final
    return HinfResult(controller, float(final_gamma), float(achieved), closed, steps)
