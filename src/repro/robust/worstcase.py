"""Worst-case uncertainty analysis.

The SSV upper bound says what the controller *tolerates*; this module goes
the other way and *constructs* bad perturbations:

* :func:`worst_case_delta` — search (randomized + coordinate polish) for
  the structured, norm-bounded Delta that maximizes the perturbed
  closed-loop gain at a frequency;
* :func:`worst_case_gain` — sweep that search over frequency to estimate
  the worst-case closed-loop H-infinity norm inside the declared guardband
  (MATLAB's ``wcgain`` analogue);
* :func:`destabilizing_radius` — the smallest uniform Delta scaling that
  destabilizes the loop, i.e. 1/mu at the critical frequency, verified by
  closing the constructed Delta around the state-space loop.

These are what let the repo *test* the guardband semantics instead of
merely asserting them: a perturbation inside the guardband must keep the
verified loop stable; the constructed destabilizing one (outside) must not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import StateSpace, lft_upper, matrix_lft_upper, PartitionedSystem
from .uncertainty import BlockStructure

__all__ = [
    "worst_case_delta",
    "worst_case_gain",
    "destabilizing_radius",
    "WorstCaseResult",
]


def _structured_from_flat(structure: BlockStructure, blocks):
    delta = np.zeros((structure.total_cols, structure.total_rows), dtype=complex)
    r = c = 0
    for block, value in zip(structure.blocks, blocks):
        delta[c : c + block.cols, r : r + block.rows] = value
        r += block.rows
        c += block.cols
    return delta


def worst_case_delta(M, structure: BlockStructure, n_d, n_f, radius=1.0,
                     samples=150, polish_iterations=40, seed=0):
    """Find a structured Delta (each block norm <= radius) maximizing the
    perturbed gain ``sigma_max(F_u(M, Delta))`` for a constant matrix M.

    ``M`` maps [d; w] -> [f; z] with the perturbation ports first.
    Returns ``(delta, gain)``.
    """
    M = np.asarray(M, dtype=complex)
    rng = np.random.default_rng(seed)

    def gain_of(delta):
        try:
            closed = matrix_lft_upper(M, delta, n_d=n_d, n_f=n_f)
        except np.linalg.LinAlgError:
            return np.inf
        if not np.all(np.isfinite(closed)):
            return np.inf
        return float(np.linalg.svd(closed, compute_uv=False)[0])

    best_delta = np.zeros((n_d, n_f), dtype=complex)
    best_gain = gain_of(best_delta)
    # Randomized search over boundary perturbations (worst case sits on the
    # boundary of the uncertainty ball for rank-one-ish problems).
    for _ in range(samples):
        delta = structure.random_sample(rng, radius=radius)
        # Push blocks to the boundary.
        scaled = []
        r = c = 0
        for block in structure.blocks:
            sub = delta[c : c + block.cols, r : r + block.rows]
            norm = np.linalg.svd(sub, compute_uv=False)[0] if sub.size else 1.0
            scaled.append(sub / max(norm, 1e-12) * radius)
            r += block.rows
            c += block.cols
        delta = _structured_from_flat(structure, scaled)
        gain = gain_of(delta)
        if np.isfinite(gain) and gain > best_gain:
            best_gain = gain
            best_delta = delta
    # Coordinate polish: random phase/direction tweaks on the best found.
    step = 0.4
    for _ in range(polish_iterations):
        tweak = structure.random_sample(rng, radius=step * radius)
        candidate = best_delta + tweak
        # Renormalize blocks onto the boundary.
        scaled = []
        r = c = 0
        for block in structure.blocks:
            sub = candidate[c : c + block.cols, r : r + block.rows]
            norm = np.linalg.svd(sub, compute_uv=False)[0] if sub.size else 1.0
            scaled.append(sub / max(norm, 1e-12) * radius)
            r += block.rows
            c += block.cols
        candidate = _structured_from_flat(structure, scaled)
        gain = gain_of(candidate)
        if np.isfinite(gain) and gain > best_gain:
            best_gain = gain
            best_delta = candidate
        else:
            step *= 0.8
    return best_delta, best_gain


@dataclass
class WorstCaseResult:
    """Outcome of a worst-case gain sweep."""

    nominal_peak: float
    worst_gain: float
    worst_omega: float
    worst_delta: np.ndarray

    @property
    def degradation(self):
        """Worst-case over nominal gain ratio within the guardband."""
        return self.worst_gain / max(self.nominal_peak, 1e-12)

    def summary(self):
        return (
            f"worst-case gain {self.worst_gain:.3f} at w={self.worst_omega:.4f} "
            f"rad/s (nominal peak {self.nominal_peak:.3f}, degradation "
            f"x{self.degradation:.2f})"
        )


def worst_case_gain(channel: StateSpace, structure: BlockStructure, n_d, n_f,
                    radius=1.0, points=30, samples=60, seed=0):
    """Estimate the worst-case gain of the performance channel over all
    structured perturbations of norm <= radius (lower bound by construction).

    ``channel`` maps [d; w] -> [f; z]; the performance gain is measured on
    the LFT-closed w -> z map.
    """
    from ..lti import frequency_grid

    omegas = frequency_grid(channel, points)
    nominal_peak = 0.0
    worst = (0.0, omegas[0], np.zeros((n_d, n_f), dtype=complex))
    for i, omega in enumerate(omegas):
        M = channel.at_frequency(omega)
        nominal = np.linalg.svd(M[n_f:, n_d:], compute_uv=False)
        nominal_peak = max(nominal_peak, float(nominal[0]) if nominal.size else 0.0)
        delta, gain = worst_case_delta(
            M, structure, n_d, n_f, radius=radius, samples=samples,
            polish_iterations=15, seed=seed + i,
        )
        if np.isfinite(gain) and gain > worst[0]:
            worst = (gain, float(omega), delta)
    return WorstCaseResult(nominal_peak, worst[0], worst[1], worst[2])


def destabilizing_radius(channel: StateSpace, structure: BlockStructure,
                         mu_analysis=None, points=30, verify=True):
    """Smallest uniform scaling of the declared Delta that can destabilize.

    By the main loop theorem this is ``1 / peak mu`` of the perturbation
    channel.  With ``verify=True`` a constant real-ified Delta at the
    critical frequency is closed around the loop to confirm instability
    appears near that radius (within a factor-two band: the constructed
    constant Delta is a lower-bound certificate, not exact).
    """
    from .ssv import mu_bounds_over_frequency

    if mu_analysis is None:
        mu_analysis = mu_bounds_over_frequency(channel, structure, points=points)
    radius = 1.0 / max(mu_analysis.peak_upper, 1e-12)
    certified = None
    if verify:
        certified = _verify_destabilization(channel, structure, radius)
    return radius, mu_analysis, certified


def _verify_destabilization(channel, structure, radius, max_scale=8.0):
    """Find a real constant structured Delta that destabilizes the loop.

    Returns the scaling (relative to ``radius``) at which instability was
    certified, or None if none was found up to ``max_scale``.
    """
    n_f = structure.total_rows
    n_d = structure.total_cols
    rng = np.random.default_rng(0)
    scale = 1.0
    while scale <= max_scale:
        for _ in range(40):
            delta = structure.random_sample(rng, radius=radius * scale).real
            from ..lti import static_gain

            delta_sys = static_gain(delta, dt=channel.dt)
            part = PartitionedSystem(channel, n_w=n_d, n_z=n_f)
            try:
                closed = lft_upper(part, delta_sys)
            except (ValueError, np.linalg.LinAlgError):
                return scale
            if not closed.is_stable(tol=1e-9):
                return scale
        scale *= 1.4
    return None
