"""Frequency-dependent D-scale fitting for the D-K iteration.

Constant D-scales capture only the average of the per-frequency optimal
scalings; real mu-synthesis fits a stable, minimum-phase transfer function
to the optimal |d(jw)| profile and absorbs it into the plant, letting the
next K-step trade robustness where the uncertainty actually bites.

For the two-block structures built by the augmentation (one uncertainty
block, one performance block) the scaling is a scalar profile
``d(w) = exp(scale_0(w) - scale_last(w))``; we fit a first-order
minimum-phase section ``d(s) = k (s + z) / (s + p)`` to it by grid search
over the (z, p) corner frequencies with the gain chosen in closed form
(least squares in log-magnitude).  First order keeps the augmented plant's
growth modest (one extra state per scaled channel per side) while already
capturing the dominant low/high-frequency asymmetry of the profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import StateSpace, append, series, static_gain

__all__ = ["FittedScale", "fit_dscale", "apply_dynamic_scales"]


@dataclass
class FittedScale:
    """A first-order minimum-phase magnitude fit d(s) = k (s+z)/(s+p)."""

    gain: float
    zero: float
    pole: float
    log_rms_error: float

    def magnitude(self, omega):
        omega = np.asarray(omega, dtype=float)
        return self.gain * np.abs(1j * omega + self.zero) / np.abs(
            1j * omega + self.pole
        )

    def to_statespace(self, channels=1):
        """Stable, proper realization of d(s), stacked over ``channels``."""
        # d(s) = k (s + z)/(s + p) = k + k (z - p)/(s + p).
        single = StateSpace(
            [[-self.pole]], [[1.0]],
            [[self.gain * (self.zero - self.pole)]], [[self.gain]],
        )
        return append(*[single for _ in range(channels)])

    def inverse_statespace(self, channels=1):
        """Realization of 1/d(s) (stable because the fit is minimum phase)."""
        inv = FittedScale(1.0 / self.gain, self.pole, self.zero, 0.0)
        return inv.to_statespace(channels)

    def is_nearly_constant(self, tol=0.05):
        return abs(np.log(max(self.zero, 1e-12) / max(self.pole, 1e-12))) < tol


def fit_dscale(omegas, magnitudes, corners_per_decade=8):
    """Fit d(s) = k (s+z)/(s+p) to |d(jw)| samples by log-LS grid search."""
    omegas = np.asarray(omegas, dtype=float)
    magnitudes = np.clip(np.asarray(magnitudes, dtype=float), 1e-9, 1e9)
    log_m = np.log(magnitudes)
    w_lo, w_hi = omegas.min(), omegas.max()
    corners = np.logspace(
        np.log10(max(w_lo * 0.3, 1e-6)), np.log10(w_hi * 3.0),
        int(corners_per_decade * max(np.log10(w_hi / max(w_lo, 1e-12)), 1.0)) + 2,
    )
    best = None
    for zero in corners:
        for pole in corners:
            shape = np.log(np.abs(1j * omegas + zero) / np.abs(1j * omegas + pole))
            log_k = float(np.mean(log_m - shape))
            err = float(np.sqrt(np.mean((log_m - shape - log_k) ** 2)))
            if best is None or err < best.log_rms_error:
                best = FittedScale(float(np.exp(log_k)), float(zero),
                                   float(pole), err)
    return best


def apply_dynamic_scales(plant, channels, scale: FittedScale):
    """Absorb d(s) into the plant's uncertainty channel.

    The scaled plant is ``diag(d I, I) * P * diag(d^{-1} I, I)`` on the
    (f, d) ports: the f outputs pass through d(s), the d inputs through
    1/d(s).  Minimum phase keeps both directions stable.
    """
    from ..lti import PartitionedSystem

    sys_ = plant.system
    n_u_chan = channels.n_u
    d_sys = scale.to_statespace(n_u_chan)
    d_inv = scale.inverse_statespace(n_u_chan)
    # Input side: first n_u inputs filtered through d^{-1}.
    n_rest_in = sys_.n_inputs - n_u_chan
    input_filter = append(d_inv, static_gain(np.eye(n_rest_in)))
    # Output side: first n_u outputs filtered through d.
    n_rest_out = sys_.n_outputs - n_u_chan
    output_filter = append(d_sys, static_gain(np.eye(n_rest_out)))
    scaled = series(input_filter, sys_, output_filter)
    return PartitionedSystem(scaled, n_w=plant.n_w, n_z=plant.n_z)
