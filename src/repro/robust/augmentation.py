"""Generalized-plant construction from a Yukta layer specification.

This module encodes the paper's design inputs — output deviation *bounds* B,
input *weights* W, the uncertainty *guardband*, external signals, and input
quantization — into the Delta-N interconnection (Figs. 1-2) that the H-inf /
SSV machinery consumes.

Channel layout of the built (continuous-time) plant P:

exogenous inputs  w = [ d (n_u, uncertainty perturbation)
                      | r (n_y, output targets)
                      | e (n_e, external signals)
                      | n (n_meas, measurement-noise regularizer) ]
controls          u   (n_u)
exogenous outputs z = [ f (n_u, uncertainty channel, = normalized u)
                      | z_err (n_y, bound-weighted tracking errors)
                      | z_u (n_u, weight-scaled control effort) ]
measurements    y_m = [ filtered tracking errors (n_y)
                      | filtered external signals (n_e) ]  + eps * n

All signals are normalized: outputs by their characterization ranges, inputs
by their half-spans (so a unit control move spans half the knob range), and
external signals by their interface scale.  The uncertainty enters as an
input-multiplicative perturbation of size ``guardband + quantization``: with
a unit-norm Delta closing f -> d, the actuated input is off by up to that
fraction — exactly the guardband semantics of Sec. II-B.

Design guarantees (what lets the two-Riccati synthesis run unmodified):
strictly proper error weights and measurement filters make D11 = 0 and
D22 = 0, static input weights make D12 = [0; 0; W] full column rank with
D12'C1 = 0, and the tiny noise feed-through makes D21 = [0 ... eps*I] full
row rank with B1 D21' = 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lti import PartitionedSystem, StateSpace, discrete_to_continuous
from .uncertainty import BlockStructure, UncertaintyBlock

__all__ = ["AugmentedPlant", "build_generalized_plant", "ChannelMap"]


@dataclass
class ChannelMap:
    """Index bookkeeping for the augmented plant's channels."""

    n_u: int
    n_y: int
    n_e: int
    n_meas: int

    @property
    def n_w(self):
        return self.n_u + self.n_y + self.n_e + self.n_meas

    @property
    def n_z(self):
        return self.n_u + self.n_y + self.n_u

    # --- w slices ---
    @property
    def w_delta(self):
        return slice(0, self.n_u)

    @property
    def w_ref(self):
        return slice(self.n_u, self.n_u + self.n_y)

    @property
    def w_ext(self):
        return slice(self.n_u + self.n_y, self.n_u + self.n_y + self.n_e)

    @property
    def w_noise(self):
        return slice(self.n_u + self.n_y + self.n_e, self.n_w)

    # --- z slices ---
    @property
    def z_delta(self):
        return slice(0, self.n_u)

    @property
    def z_err(self):
        return slice(self.n_u, self.n_u + self.n_y)

    @property
    def z_effort(self):
        return slice(self.n_u + self.n_y, self.n_z)


@dataclass
class AugmentedPlant:
    """A synthesis-ready generalized plant plus its scaling metadata."""

    plant: PartitionedSystem  # continuous time, partition [w; u] x [z; y_m]
    channels: ChannelMap
    structure: BlockStructure  # uncertainty block + performance block
    input_scales: np.ndarray  # physical = mid + scale * normalized
    input_offsets: np.ndarray
    output_scales: np.ndarray
    output_offsets: np.ndarray
    external_scales: np.ndarray
    external_offsets: np.ndarray
    uncertainty_radius: float
    bound_fractions: np.ndarray
    input_weights: np.ndarray
    dt: float
    notes: dict = field(default_factory=dict)

    def performance_channel_dims(self):
        """(rows, cols) of the performance block for robust-performance mu."""
        ch = self.channels
        return ch.n_z - ch.n_u, ch.n_w - ch.n_u


def _error_weight_states(n_y, bound_fractions, pole):
    """First-order error weights We_i = (1/b_i) * pole/(s + pole) per output."""
    A = -pole * np.eye(n_y)
    gain = pole / np.asarray(bound_fractions)
    return A, gain


def build_generalized_plant(
    model: StateSpace,
    n_u: int,
    input_spans,
    input_mids,
    output_ranges,
    output_mids,
    bound_fractions,
    input_weights,
    guardband: float,
    external_scales=(),
    external_mids=(),
    quantization_radii=None,
    error_weight_pole=None,
    measurement_pole=None,
    noise_epsilon=0.02,
    accuracy_boost=6.0,
    effort_scale=8.0,
) -> AugmentedPlant:
    """Build the Delta-N generalized plant for one Yukta layer.

    Parameters
    ----------
    model:
        Discrete-time identified model mapping ``[u_physical; e_physical]``
        to ``y_physical`` (inputs first, external signals after).
    n_u:
        Number of actuated inputs (the first ``n_u`` model inputs).
    input_spans, input_mids:
        Physical half-spans and midpoints used to normalize each input.
    output_ranges, output_mids:
        Physical ranges/midpoints (from characterization) per output.
    bound_fractions:
        The paper's deviation bounds B, as fractions of the output range.
    input_weights:
        The paper's input weights W (one per actuated input).
    guardband:
        Uncertainty guardband as a fraction (0.40 for +-40%).
    quantization_radii:
        Optional per-input normalized quantization radii folded into the
        uncertainty size.
    accuracy_boost:
        The error weight's DC gain is ``accuracy_boost / bound``: demanding
        more accuracy than the bound forces the minimax synthesis to spend
        its gain on low-frequency tracking instead of flat-lining at the
        open-loop norm.  The *guaranteed* deviation bound is recovered as
        ``gamma * bound / accuracy_boost`` after synthesis.
    effort_scale:
        Internal multiplier on the user input weights W.  Identified models
        of a quantized platform are ill-conditioned; without a meaningful
        effort penalty the minimax design "decouples" outputs with huge
        opposing knob moves that the real plant cannot honour.  The scale
        keeps the *relative* weight semantics (Fig. 17's 0.5/1/2 sweep)
        while giving the penalty enough magnitude to suppress inversion
        pathologies.
    """
    if model.is_discrete:
        model_c = discrete_to_continuous(model)
        dt = model.dt
    else:
        model_c = model
        dt = None
    n_e = model.n_inputs - n_u
    n_y = model.n_outputs
    input_spans = np.asarray(input_spans, dtype=float)
    input_mids = np.asarray(input_mids, dtype=float)
    output_ranges = np.asarray(output_ranges, dtype=float)
    output_mids = np.asarray(output_mids, dtype=float)
    bound_fractions = np.asarray(bound_fractions, dtype=float)
    input_weights = np.asarray(input_weights, dtype=float)
    external_scales = np.asarray(list(external_scales), dtype=float)
    external_mids = np.asarray(list(external_mids), dtype=float)
    if external_scales.size != n_e:
        raise ValueError(f"need {n_e} external scales, got {external_scales.size}")
    if external_mids.size == 0:
        external_mids = np.zeros(n_e)
    if len(input_spans) != n_u or len(input_weights) != n_u:
        raise ValueError("input metadata length mismatch")
    if len(output_ranges) != n_y or len(bound_fractions) != n_y:
        raise ValueError("output metadata length mismatch")
    if np.any(input_spans <= 0) or np.any(output_ranges <= 0):
        raise ValueError("spans and ranges must be positive")

    # Normalized plant: y_norm = Sy^-1 (G(Su u_norm + Se e_norm) - offsets).
    # Offsets vanish because the controller works in deviation coordinates.
    Su = np.diag(input_spans)
    Se = np.diag(np.maximum(external_scales, 1e-9)) if n_e else np.zeros((0, 0))
    Sy_inv = np.diag(1.0 / output_ranges)
    A_g = model_c.A
    B_gu = model_c.B[:, :n_u] @ Su
    B_ge = model_c.B[:, n_u:] @ Se
    C_g = Sy_inv @ model_c.C
    # The bilinear transform introduces plant feed-through even when the
    # identified discrete model is strictly proper; it is absorbed into the
    # drive terms of the (strictly proper) weight and measurement filters,
    # so the augmented plant's D11/D22 blocks stay exactly zero.
    D_gu = Sy_inv @ model_c.D[:, :n_u] @ Su
    D_ge = Sy_inv @ model_c.D[:, n_u:] @ Se

    # Uncertainty radius: guardband plus worst-case quantization snap.
    quant = 0.0
    if quantization_radii is not None:
        quant = float(np.max(np.asarray(quantization_radii, dtype=float), initial=0.0))
    radius = float(guardband) + quant

    # Filter poles: error weight slow (integral-like accuracy), measurement
    # filter fast relative to the sampling rate.
    if dt is not None:
        error_weight_pole = error_weight_pole or 0.2 / dt
        measurement_pole = measurement_pole or 4.0 / dt
    else:
        error_weight_pole = error_weight_pole or 0.5
        measurement_pole = measurement_pole or 10.0

    n_g = model_c.n_states
    n_meas = n_y + n_e
    channels = ChannelMap(n_u=n_u, n_y=n_y, n_e=n_e, n_meas=n_meas)
    # State layout: [x_g | x_we (n_y) | x_fm_err (n_y) | x_fm_ext (n_e)].
    n_total = n_g + n_y + n_y + n_e
    A = np.zeros((n_total, n_total))
    sl_g = slice(0, n_g)
    sl_we = slice(n_g, n_g + n_y)
    sl_fme = slice(n_g + n_y, n_g + 2 * n_y)
    sl_fmx = slice(n_g + 2 * n_y, n_total)
    a_e = error_weight_pole
    a_m = measurement_pole
    A[sl_g, sl_g] = A_g
    # We driven by (r - y_norm): dx_we = -a_e x_we + a_e (r - C_g x_g).
    A[sl_we, sl_we] = -a_e * np.eye(n_y)
    A[sl_we, sl_g] = -a_e * C_g
    # Error measurement filter, same drive, faster pole.
    A[sl_fme, sl_fme] = -a_m * np.eye(n_y)
    A[sl_fme, sl_g] = -a_m * C_g
    # External-signal measurement filter: dx = -a_m x + a_m e.
    A[sl_fmx, sl_fmx] = -a_m * np.eye(n_e)

    n_w = channels.n_w
    n_z = channels.n_z
    B = np.zeros((n_total, n_w + n_u))
    u_cols = slice(n_w, n_w + n_u)
    # d (uncertainty) perturbs the plant input: x_g' += B_gu * radius * d.
    B[sl_g, channels.w_delta] = B_gu * radius
    # r drives the error weight and error measurement filter.
    B[sl_we, channels.w_ref] = a_e * np.eye(n_y)
    B[sl_fme, channels.w_ref] = a_m * np.eye(n_y)
    # e drives the plant and the external measurement filter.
    B[sl_g, channels.w_ext] = B_ge
    B[sl_fmx, channels.w_ext] = a_m * np.eye(n_e)
    # u drives the plant.
    B[sl_g, u_cols] = B_gu
    # Plant feed-through reaches y_norm instantaneously, so it enters the
    # error-driven filters through their B rows (keeping D11/D22 at zero).
    for sl_filt, pole in ((sl_we, a_e), (sl_fme, a_m)):
        B[sl_filt, channels.w_delta] += -pole * D_gu * radius
        if n_e:
            B[sl_filt, channels.w_ext] += -pole * D_ge
        B[sl_filt, u_cols] += -pole * D_gu

    C = np.zeros((n_z + n_meas, n_total))
    D = np.zeros((n_z + n_meas, n_w + n_u))
    # f = u (normalized): pure feed-through from the control channel.
    D[channels.z_delta, u_cols] = np.eye(n_u)
    # z_err = (boost/b_i) x_we  (the weight gain sits at the readout).
    C[channels.z_err, sl_we] = np.diag(accuracy_boost / bound_fractions)
    # z_u = effort_scale * W u.
    D[channels.z_effort, u_cols] = effort_scale * np.diag(input_weights)
    # Measurements: filtered error + filtered externals + eps * n.
    m_err = slice(n_z, n_z + n_y)
    m_ext = slice(n_z + n_y, n_z + n_meas)
    C[m_err, sl_fme] = np.eye(n_y)
    C[m_ext, sl_fmx] = np.eye(n_e)
    D[n_z : n_z + n_meas, channels.w_noise] = noise_epsilon * np.eye(n_meas)

    plant = PartitionedSystem(
        StateSpace(A, B, C, D, dt=None), n_w=n_w, n_z=n_z
    )
    perf_rows = n_z - n_u
    perf_cols = n_w - n_u
    # mu is computed on the closed-loop matrix with rows [f; z] and columns
    # [d; w], so the performance block is (n_z - n_u) x (n_w - n_u).
    structure = BlockStructure(
        [
            UncertaintyBlock("full", rows=n_u, cols=n_u, name="model+quantization"),
            UncertaintyBlock("full", rows=perf_rows, cols=perf_cols, name="performance"),
        ]
    )
    return AugmentedPlant(
        plant=plant,
        channels=channels,
        structure=structure,
        input_scales=input_spans,
        input_offsets=input_mids,
        output_scales=output_ranges,
        output_offsets=output_mids,
        external_scales=np.maximum(external_scales, 1e-9),
        external_offsets=external_mids,
        uncertainty_radius=radius,
        bound_fractions=bound_fractions,
        input_weights=input_weights,
        dt=dt if dt is not None else float("nan"),
        notes={
            "error_weight_pole": error_weight_pole,
            "measurement_pole": measurement_pole,
            "noise_epsilon": noise_epsilon,
            "accuracy_boost": accuracy_boost,
        },
    )
