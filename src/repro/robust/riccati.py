"""Algebraic Riccati solvers for H-infinity synthesis.

H-infinity Riccati equations have an *indefinite* quadratic term
(``gamma^{-2} B1 B1' - B2 B2'``), which general-purpose ARE routines are not
always happy about.  We therefore solve them the classical way: build the
Hamiltonian matrix, extract its stable invariant subspace with an ordered
Schur decomposition, and recover the stabilizing solution.  Solutions are
always verified by back-substituting into the equation.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import schur

__all__ = ["care_hamiltonian", "RiccatiError", "solve_hinf_riccati"]


class RiccatiError(RuntimeError):
    """Raised when a stabilizing Riccati solution does not exist."""


def care_hamiltonian(A, S, Q, residual_tol=1e-6):
    """Solve ``A'X + XA - X S X + Q = 0`` for the stabilizing X.

    ``S`` and ``Q`` must be symmetric (``S`` may be indefinite — that is the
    point).  Raises :class:`RiccatiError` if the Hamiltonian has eigenvalues
    on the imaginary axis or the subspace is not complementary.
    """
    A = np.asarray(A, dtype=float)
    S = np.asarray(S, dtype=float)
    Q = np.asarray(Q, dtype=float)
    n = A.shape[0]
    if n == 0:
        return np.zeros((0, 0))
    H = np.block([[A, -S], [-Q, -A.T]])

    def stable_half(val):
        return val.real < 0.0

    try:
        T, Z, n_stable = schur(H, output="complex", sort=stable_half)
    except Exception as exc:  # pragma: no cover - LAPACK failure
        raise RiccatiError(f"Schur decomposition failed: {exc}") from exc
    if n_stable != n:
        raise RiccatiError(
            f"Hamiltonian has {n_stable} stable eigenvalues, expected {n} "
            "(eigenvalues on the imaginary axis: no stabilizing solution)"
        )
    X1 = Z[:n, :n]
    X2 = Z[n:, :n]
    cond = np.linalg.cond(X1)
    if not np.isfinite(cond) or cond > 1e12:
        raise RiccatiError("stable subspace is not complementary (X1 singular)")
    X = np.real(X2 @ np.linalg.inv(X1))
    X = 0.5 * (X + X.T)
    residual = A.T @ X + X @ A - X @ S @ X + Q
    scale = max(1.0, np.linalg.norm(X))
    if np.linalg.norm(residual) > residual_tol * scale * max(1.0, np.linalg.norm(Q)):
        raise RiccatiError(
            f"Riccati residual too large: {np.linalg.norm(residual):.3e}"
        )
    return X


def solve_hinf_riccati(A, B1, B2, C1, gamma):
    """Stabilizing solution of the H-infinity control Riccati equation.

    Solves ``A'X + XA + C1'C1 + X (gamma^-2 B1 B1' - B2 B2') X = 0`` and
    checks positive semidefiniteness.  (Use with transposed/dual arguments
    for the filtering equation.)
    """
    S = B2 @ B2.T - (1.0 / gamma**2) * (B1 @ B1.T)
    Q = C1.T @ C1
    X = care_hamiltonian(A, S, Q)
    min_eig = float(np.min(np.linalg.eigvalsh(X))) if X.size else 0.0
    if min_eig < -1e-7 * max(1.0, np.linalg.norm(X)):
        raise RiccatiError(f"Riccati solution is indefinite (min eig {min_eig:.3e})")
    return X
