"""Uncertainty block structures for structured-singular-value analysis.

A Delta structure is a list of blocks, each either a *full* complex block of
given dimensions or a *repeated scalar* block.  Guardbands from the paper
(e.g. the hardware controller's +-40%) become the weight on the uncertainty
channel; input quantization becomes an additional norm-bounded perturbation
sized by the worst-case snap distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UncertaintyBlock", "BlockStructure", "guardband_weight", "quantization_uncertainty"]


@dataclass(frozen=True)
class UncertaintyBlock:
    """One block of a structured perturbation.

    ``kind`` is "full" (arbitrary complex block) or "repeated" (delta * I).
    ``rows``/``cols`` give the block dimensions (repeated blocks are square).
    """

    kind: str
    rows: int
    cols: int
    name: str = ""

    def __post_init__(self):
        if self.kind not in ("full", "repeated"):
            raise ValueError(f"unknown block kind {self.kind!r}")
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("block dimensions must be positive")
        if self.kind == "repeated" and self.rows != self.cols:
            raise ValueError("repeated scalar blocks must be square")


class BlockStructure:
    """An ordered list of uncertainty blocks.

    The convention matches the Delta-N form (Fig. 2 of the paper): the
    perturbation maps the ``f`` outputs of N back into its ``d`` inputs, so
    the structure's total ``rows`` dimension must equal dim(f) and ``cols``
    must equal dim(d).
    """

    def __init__(self, blocks):
        self.blocks = list(blocks)
        if not self.blocks:
            raise ValueError("block structure must contain at least one block")

    @property
    def total_rows(self):
        return sum(b.rows for b in self.blocks)

    @property
    def total_cols(self):
        return sum(b.cols for b in self.blocks)

    def block_slices(self):
        """Yield (block, row_slice, col_slice) for each block."""
        r = c = 0
        for block in self.blocks:
            yield block, slice(r, r + block.rows), slice(c, c + block.cols)
            r += block.rows
            c += block.cols

    def random_sample(self, rng, radius=1.0):
        """A random structured Delta with each block of norm <= radius."""
        delta = np.zeros((self.total_cols, self.total_rows), dtype=complex)
        r = c = 0
        for block in self.blocks:
            if block.kind == "repeated":
                phase = np.exp(2j * np.pi * rng.uniform())
                mag = radius * rng.uniform()
                delta[c : c + block.cols, r : r + block.rows] = (
                    mag * phase * np.eye(block.rows)
                )
            else:
                raw = rng.normal(size=(block.cols, block.rows)) + 1j * rng.normal(
                    size=(block.cols, block.rows)
                )
                norm = np.linalg.svd(raw, compute_uv=False)[0]
                delta[c : c + block.cols, r : r + block.rows] = (
                    raw / max(norm, 1e-12) * radius * rng.uniform()
                )
            r += block.rows
            c += block.cols
        return delta

    def scaling_matrices(self, log_scales):
        """Build (D_left, D_right) from one log-scale per block.

        For full blocks the scaling is ``d * I`` on both sides; the last
        block's scale is pinned to 1 (only ratios matter).
        """
        scales = np.exp(np.asarray(log_scales, dtype=float))
        if scales.size != len(self.blocks):
            raise ValueError("need one scale per block")
        d_left = np.zeros(self.total_rows)
        d_right = np.zeros(self.total_cols)
        for (block, row_sl, col_sl), scale in zip(self.block_slices(), scales):
            d_left[row_sl] = scale
            d_right[col_sl] = scale
        return np.diag(d_left), np.diag(1.0 / d_right)

    def __len__(self):
        return len(self.blocks)

    def __repr__(self):
        parts = ", ".join(
            f"{b.kind}[{b.rows}x{b.cols}]" + (f":{b.name}" if b.name else "")
            for b in self.blocks
        )
        return f"BlockStructure({parts})"


def guardband_weight(fraction):
    """Uncertainty weight from a guardband percentage (e.g. 0.40 for +-40%).

    The model-uncertainty channel is scaled so that a unit-norm Delta
    produces the guardband-sized relative deviation.
    """
    if fraction <= 0:
        raise ValueError("guardband must be positive")
    return float(fraction)


def quantization_uncertainty(quantized_ranges):
    """Relative uncertainty radius induced by input snapping.

    For each input, half the worst level gap divided by the half-span is a
    norm bound on the snap error expressed in normalized input units; this is
    the Delta_in block of Fig. 1 folded into the design.
    """
    radii = []
    for qr in quantized_ranges:
        half_span = max(qr.span / 2.0, 1e-12)
        radii.append(qr.quantization_radius() / half_span)
    return np.asarray(radii)
