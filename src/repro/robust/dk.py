"""D-K iteration: approximate mu-synthesis (the SSV controller design loop).

This is the loop MATLAB's ``musyn``/``dksyn`` runs (Sec. II-C of the paper):

1. (K-step) synthesize an H-infinity controller for the scaled plant;
2. (D-step) compute the mu upper bound of the perturbed closed loop over
   frequency and extract the minimizing block scalings;
3. absorb constant D-scales into the plant's perturbation channels and
   repeat until the peak mu stops improving.

We use frequency-constant D-scales (a "zeroth-order D-fit"): for the
two-block structures built by :mod:`repro.robust.augmentation` a constant
scale is a single positive scalar, and the iteration typically converges in
two or three rounds.  The result records the paper's min(s) interpretation:
``1/peak_mu`` is the fraction of the declared uncertainty/bounds/weights the
controller can actually withstand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lti import PartitionedSystem, StateSpace, lft_lower
from .augmentation import AugmentedPlant
from .hinf import HinfResult, SynthesisError, hinf_synthesize
from .ssv import MuAnalysis, mu_bounds_over_frequency

__all__ = ["DKResult", "dk_synthesize"]


@dataclass
class DKResult:
    """Outcome of a D-K iteration."""

    controller: StateSpace  # continuous-time controller
    hinf: HinfResult
    mu: MuAnalysis
    peak_mu_history: list = field(default_factory=list)
    iterations: int = 0

    @property
    def robust(self):
        return self.mu.robust

    @property
    def min_s(self):
        """The paper's min(s): > 1 means requested Delta/B/W are satisfied."""
        return self.mu.tolerated_fraction()

    def summary(self):
        verdict = "robust" if self.robust else "NOT robust"
        return (
            f"SSV controller: order {self.controller.n_states}, "
            f"peak mu={self.mu.peak_upper:.3f} ({verdict}, min(s)={self.min_s:.3f}), "
            f"gamma={self.hinf.gamma:.3f}, {self.iterations} D-K iterations"
        )


def _apply_d_scales(plant: PartitionedSystem, channels, scale: float):
    """Scale the uncertainty channel: d' = d/scale, f' = scale * f.

    A constant scalar D commutes with the full uncertainty block, so this
    leaves the mu problem equivalent while reshaping the H-infinity one.
    """
    sys_ = plant.system
    n_u_chan = channels.n_u
    B = sys_.B.copy()
    C = sys_.C.copy()
    D = sys_.D.copy()
    B[:, :n_u_chan] *= scale  # d enters scaled down -> compensate
    D[:, :n_u_chan] *= scale
    C[:n_u_chan, :] *= 1.0 / scale
    D[:n_u_chan, :] *= 1.0 / scale
    # The (f, d) corner got both factors; that is correct (D f->d corner is
    # scale * (1/scale) = unchanged).
    return PartitionedSystem(
        StateSpace(sys_.A, B, C, D, dt=sys_.dt), n_w=plant.n_w, n_z=plant.n_z
    )


def dk_synthesize(
    augmented: AugmentedPlant,
    max_iterations=4,
    mu_points=40,
    improvement_tol=0.01,
    dynamic_scales=False,
):
    """Run D-K iteration on an augmented plant.

    With ``dynamic_scales=True`` the D-step fits a first-order
    minimum-phase transfer function to the per-frequency optimal scalings
    (real musyn behaviour) instead of a single constant; the fitted scale
    is absorbed into the plant for the next K-step at the cost of a few
    extra states.

    Returns the best :class:`DKResult` found.  Raises
    :class:`~repro.robust.hinf.SynthesisError` if even the first K-step
    fails (the paper's "MATLAB cannot find a controller" outcome — the
    designer must relax Delta, B, or W).
    """
    channels = augmented.channels
    structure = augmented.structure
    plant = augmented.plant
    best = None
    scale = 1.0
    fitted_scale = None
    history = []
    for iteration in range(1, max_iterations + 1):
        if fitted_scale is not None:
            from .dscale_fit import apply_dynamic_scales

            scaled_plant = apply_dynamic_scales(plant, channels, fitted_scale)
        elif scale != 1.0:
            scaled_plant = _apply_d_scales(plant, channels, scale)
        else:
            scaled_plant = plant
        try:
            hinf_result = hinf_synthesize(scaled_plant)
        except SynthesisError:
            if best is None:
                raise
            break
        # mu analysis happens on the *unscaled* closed loop.
        closed = lft_lower(plant, hinf_result.controller)
        mu = mu_bounds_over_frequency(closed, structure, points=mu_points)
        history.append(mu.peak_upper)
        candidate = DKResult(
            hinf_result.controller, hinf_result, mu, list(history), iteration
        )
        if best is None or mu.peak_upper < best.mu.peak_upper:
            improved = best is None or (
                best.mu.peak_upper - mu.peak_upper
                > improvement_tol * best.mu.peak_upper
            )
            best = candidate
            if not improved:
                break
        else:
            break
        # D-step: constant scale from the peak frequency, or a dynamic fit
        # over the whole profile.
        if dynamic_scales and mu.scales is not None and len(structure) >= 2:
            from .dscale_fit import fit_dscale

            profile = np.exp(mu.scales[:, 0] - mu.scales[:, -1])
            fitted_scale = fit_dscale(mu.omegas, profile)
            if fitted_scale.is_nearly_constant() and abs(
                np.log(max(fitted_scale.gain, 1e-9))
            ) < 1e-3:
                break
        else:
            scales = mu.scales_at_peak
            if scales is None or len(scales) < 2:
                break
            new_scale = float(np.exp(scales[0] - scales[-1]))
            if abs(np.log(max(new_scale, 1e-9))) < 1e-3:
                break
            scale *= new_scale
    best.peak_mu_history = history
    return best
