"""Structured singular value (SSV / mu) bounds.

For a constant complex matrix ``M`` and a block structure ``Delta``, the SSV
is ``mu(M) = 1 / min{ sigma_max(Delta) : det(I - M Delta) = 0 }`` (Eq. 1 of
the paper, rearranged).  Exact computation is NP-hard; as in standard
practice we compute:

* an **upper bound** — ``min_D sigma_max(D M D^{-1})`` over block-compatible
  diagonal scalings, minimized by coordinate descent on log-scales seeded by
  an Osborne-style balancing pass;
* a **lower bound** — the largest spectral radius ``rho(M U)`` found over
  randomized structured unitary perturbations (a randomized stand-in for the
  Packard-Doyle power iteration, cheap and good enough for validation).

System-level robustness is assessed by sweeping these bounds over a
frequency grid of the closed loop's perturbation channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import StateSpace, frequency_grid
from .uncertainty import BlockStructure

__all__ = ["mu_upper_bound", "mu_lower_bound", "mu_bounds_over_frequency", "MuAnalysis"]


def _scaled_norm(M, structure, log_scales):
    d_left, d_right_inv = structure.scaling_matrices(log_scales)
    return float(np.linalg.svd(d_left @ M @ d_right_inv, compute_uv=False)[0])


def mu_upper_bound(M, structure: BlockStructure, iterations=60):
    """D-scaled upper bound on mu for a constant matrix.

    Returns ``(bound, log_scales)`` so callers (the D-K iteration) can reuse
    the optimal scalings.
    """
    M = np.asarray(M, dtype=complex)
    if M.shape != (structure.total_rows, structure.total_cols):
        # mu convention: Delta maps f -> d, M maps d -> f, so M is rows x cols.
        raise ValueError(
            f"M shape {M.shape} does not match structure "
            f"({structure.total_rows}x{structure.total_cols})"
        )
    n_blocks = len(structure)
    log_scales = np.zeros(n_blocks)
    if n_blocks == 1:
        return float(np.linalg.svd(M, compute_uv=False)[0]), log_scales
    # Osborne-style seed: balance block row/column norms.
    for _ in range(10):
        for i, (block, row_sl, col_sl) in enumerate(structure.block_slices()):
            row_norm = np.linalg.norm(M[row_sl, :]) * np.exp(log_scales[i])
            col_norm = np.linalg.norm(M[:, col_sl]) * np.exp(-log_scales[i])
            if row_norm > 1e-14 and col_norm > 1e-14:
                log_scales[i] += 0.5 * (np.log(col_norm) - np.log(row_norm))
    log_scales -= log_scales[-1]  # pin the last block's scale
    best = _scaled_norm(M, structure, log_scales)
    # Coordinate descent with shrinking step.
    step = 0.5
    for _ in range(iterations):
        improved = False
        for i in range(n_blocks - 1):  # last scale pinned
            for direction in (+1.0, -1.0):
                trial = log_scales.copy()
                trial[i] += direction * step
                value = _scaled_norm(M, structure, trial)
                if value < best - 1e-12:
                    best = value
                    log_scales = trial
                    improved = True
        if not improved:
            step *= 0.5
            if step < 1e-4:
                break
    return float(best), log_scales


def mu_lower_bound(M, structure: BlockStructure, samples=60, seed=0):
    """Randomized lower bound: max spectral radius over structured unitaries."""
    M = np.asarray(M, dtype=complex)
    rng = np.random.default_rng(seed)
    best = 0.0
    for _ in range(samples):
        U = np.zeros((structure.total_cols, structure.total_rows), dtype=complex)
        r = c = 0
        for block in structure.blocks:
            if block.kind == "repeated":
                phase = np.exp(2j * np.pi * rng.uniform())
                U[c : c + block.cols, r : r + block.rows] = phase * np.eye(block.rows)
            else:
                raw = rng.normal(size=(block.cols, block.rows)) + 1j * rng.normal(
                    size=(block.cols, block.rows)
                )
                q, _ = np.linalg.qr(raw)
                U[c : c + block.cols, r : r + block.rows] = q[: block.cols, : block.rows]
            r += block.rows
            c += block.cols
        radius = float(np.max(np.abs(np.linalg.eigvals(M @ U))))
        best = max(best, radius)
    return best


@dataclass
class MuAnalysis:
    """mu bounds of a perturbation channel swept over frequency."""

    omegas: np.ndarray
    upper: np.ndarray
    lower: np.ndarray
    peak_upper: float
    peak_omega: float
    scales_at_peak: np.ndarray
    scales: np.ndarray = None  # (n_freq, n_blocks) optimal log-scales

    @property
    def robust(self):
        """Whether the SSV condition mu <= 1 holds at every grid point."""
        return bool(self.peak_upper <= 1.0)

    def tolerated_fraction(self):
        """Largest uniform scaling of the declared Delta that is tolerated.

        This is the paper's min(s): values above 1 mean the requested
        guardband/bounds/weights are met with margin.
        """
        return float(1.0 / max(self.peak_upper, 1e-12))


def mu_bounds_over_frequency(
    channel: StateSpace,
    structure: BlockStructure,
    omegas=None,
    points=60,
    lower_samples=20,
):
    """Sweep mu bounds of an LTI perturbation channel over frequency.

    ``channel`` maps the perturbation inputs d to the perturbation outputs f
    (plus, for robust performance, the performance channel folded in as one
    more full block in ``structure``).
    """
    if omegas is None:
        omegas = frequency_grid(channel, points)
        omegas = np.concatenate([[omegas[0] * 0.1], omegas])
    uppers = np.zeros(len(omegas))
    lowers = np.zeros(len(omegas))
    all_scales = np.zeros((len(omegas), len(structure)))
    best_scales = None
    peak = -np.inf
    peak_omega = omegas[0]
    for i, omega in enumerate(omegas):
        M = channel.at_frequency(omega)
        upper, scales = mu_upper_bound(M, structure)
        uppers[i] = upper
        all_scales[i] = scales
        lowers[i] = mu_lower_bound(M, structure, samples=lower_samples, seed=i)
        if upper > peak:
            peak = upper
            peak_omega = omega
            best_scales = scales
    return MuAnalysis(
        np.asarray(omegas), uppers, lowers, float(peak), float(peak_omega),
        best_scales, all_scales,
    )
