"""Robust control: H-infinity synthesis, SSV (mu) analysis, D-K iteration.

This package replaces the MATLAB Robust Control Toolbox in the paper's
design flow.  The entry points are:

* :func:`build_generalized_plant` — encode a layer's bounds/weights/
  guardband into a Delta-N generalized plant;
* :func:`hinf_synthesize` — two-Riccati central-controller synthesis with
  gamma bisection and a-posteriori closed-loop verification;
* :func:`mu_bounds_over_frequency` — SSV upper/lower bounds of a closed
  loop against a block structure;
* :func:`dk_synthesize` — the D-K iteration (approximate mu-synthesis)
  producing the paper's SSV controllers.
"""

from .augmentation import AugmentedPlant, ChannelMap, build_generalized_plant
from .dk import DKResult, dk_synthesize
from .hinf import HinfResult, SynthesisError, hinf_synthesize
from .riccati import RiccatiError, care_hamiltonian, solve_hinf_riccati
from .ssv import MuAnalysis, mu_bounds_over_frequency, mu_lower_bound, mu_upper_bound
from .uncertainty import (
    BlockStructure,
    UncertaintyBlock,
    guardband_weight,
    quantization_uncertainty,
)
from .worstcase import (
    WorstCaseResult,
    destabilizing_radius,
    worst_case_delta,
    worst_case_gain,
)

__all__ = [
    "AugmentedPlant",
    "ChannelMap",
    "build_generalized_plant",
    "DKResult",
    "dk_synthesize",
    "HinfResult",
    "SynthesisError",
    "hinf_synthesize",
    "RiccatiError",
    "care_hamiltonian",
    "solve_hinf_riccati",
    "MuAnalysis",
    "mu_bounds_over_frequency",
    "mu_lower_bound",
    "mu_upper_bound",
    "BlockStructure",
    "UncertaintyBlock",
    "guardband_weight",
    "quantization_uncertainty",
    "WorstCaseResult",
    "destabilizing_radius",
    "worst_case_delta",
    "worst_case_gain",
]
