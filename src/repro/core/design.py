"""The end-to-end Yukta controller design flow (Fig. 3).

For each layer: take the :class:`~repro.core.layer.LayerSpec`, exchange
interface metadata with the neighbouring layer, identify a model from the
characterization data, build the generalized plant from bounds/weights/
guardband, run D-K iteration, and assemble the deployable runtime
controller.  If the requested specs are infeasible (``min(s) < 1``) the
flow optionally relaxes the deviation bounds proportionally and retries —
the paper's "designer selects lower Delta, 1/B, 1/W values and restarts".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..robust import SynthesisError, build_generalized_plant, dk_synthesize
from ..signals import exchange_interfaces
from ..sysid import fit_box_jenkins, validate_model
from .characterize import CharacterizationResult
from .controller import RuntimeController, assemble_runtime_controller
from .layer import LayerSpec

__all__ = ["LayerDesign", "design_layer", "design_two_layer_system"]


@dataclass
class LayerDesign:
    """Everything produced while designing one layer's controller."""

    spec: LayerSpec
    controller: RuntimeController
    dk_result: object
    model_fit: object
    relaxations: int

    def summary(self):
        lines = [
            f"=== {self.spec.name} layer design ===",
            self.dk_result.summary(),
            f"model fit: {self.model_fit.summary()}",
            f"runtime order: {self.controller.state_machine.n_states}",
        ]
        if self.relaxations:
            lines.append(
                f"bounds relaxed {self.relaxations}x to reach feasibility"
            )
        return "\n".join(lines)


def _layer_training_data(spec: LayerSpec, characterization: CharacterizationResult):
    if spec.name == "hardware":
        return characterization.hw_data, characterization.hw_boundaries
    if spec.name == "software":
        return characterization.sw_data, characterization.sw_boundaries
    raise KeyError(f"no training data for layer {spec.name!r}")


def design_layer(
    spec: LayerSpec,
    characterization: CharacterizationResult,
    initial_targets=None,
    model_method="graybox",
    model_order=4,
    max_relaxations=3,
    reduce_to=None,
    dk_iterations=2,
    mu_points=25,
    effort_scale=8.0,
    accuracy_boost=6.0,
    training_data=None,
    output_ranges_override=None,
    output_mids_override=None,
) -> LayerDesign:
    """Design one layer's SSV controller end to end.

    ``model_method`` selects the identification route: "subspace" realizes a
    compact state-space model directly (the default ``model_order=4``
    matches the paper's dimension-4 models); "boxjenkins" fits the paper's
    polynomial structure and realizes it in companion form (higher order).
    """
    if training_data is not None:
        data, boundaries = training_data
    else:
        data, boundaries = _layer_training_data(spec, characterization)
    if output_ranges_override is not None:
        spec = spec.with_output_ranges(output_ranges_override)
    else:
        spec = spec.with_output_ranges(
            [characterization.range_of(name) for name in spec.output_names()]
        )
    # Identify on normalized, per-run-centered data (magnitudes differ
    # wildly across signals, and merged training runs sit at different
    # program-specific operating points).
    from ..sysid import center_per_run

    centered = center_per_run(data, boundaries)
    norm_data, u_scale, y_scale, u_off, y_off = centered.normalized()
    if model_method == "graybox":
        from ..sysid import fit_graybox

        gb = fit_graybox(norm_data, boundaries=boundaries, center=False)
        fit_report = validate_model(gb.to_statespace(), norm_data, min_fit=0.0)
        model_norm = gb.to_statespace()
    elif model_method == "subspace":
        from ..sysid import fit_subspace

        model_norm, _ = fit_subspace(norm_data, order=model_order)
        fit_report = validate_model(model_norm, norm_data, min_fit=0.0)
    elif model_method == "boxjenkins":
        bj = fit_box_jenkins(norm_data, na=model_order, nb=model_order, nc=2,
                             delay=1, boundaries=boundaries)
        fit_report = validate_model(bj, norm_data, min_fit=0.0)
        model_norm = bj.to_statespace()
    else:
        raise ValueError(f"unknown model_method {model_method!r}")
    # Undo the identification normalization so the model is in physical
    # units; the augmentation applies its own (spec-derived) scaling.
    from ..lti import StateSpace

    model = StateSpace(
        model_norm.A,
        model_norm.B @ np.diag(1.0 / u_scale),
        np.diag(y_scale) @ model_norm.C,
        np.diag(y_scale) @ model_norm.D @ np.diag(1.0 / u_scale),
        dt=model_norm.dt,
    )
    n_u = spec.n_inputs
    input_spans = np.array([s.allowed.span / 2.0 for s in spec.inputs])
    input_mids = np.array([s.allowed.midpoint for s in spec.inputs])
    quant_radii = np.array(
        [s.allowed.quantization_radius() / max(s.allowed.span / 2.0, 1e-9)
         for s in spec.inputs]
    )
    output_ranges = np.array([s.value_range for s in spec.outputs])
    if output_mids_override is not None:
        output_mids = np.asarray(output_mids_override, dtype=float)
    else:
        output_mids = np.array(
            [characterization.mid_of(name) for name in spec.output_names()]
        )
    external_scales = np.array([s.value_scale for s in spec.externals])
    external_mids = np.array(
        [s.allowed.midpoint if s.allowed is not None else 0.0 for s in spec.externals]
    )
    bound_fractions = np.array([s.bound_fraction for s in spec.outputs])
    input_weights = np.array([s.weight for s in spec.inputs])

    relaxations = 0
    dk_result = None
    current_bounds = bound_fractions.copy()
    last_error = None
    while relaxations <= max_relaxations:
        augmented = build_generalized_plant(
            model,
            n_u=n_u,
            input_spans=input_spans,
            input_mids=input_mids,
            output_ranges=output_ranges,
            output_mids=output_mids,
            bound_fractions=current_bounds,
            input_weights=input_weights,
            guardband=spec.guardband,
            external_scales=external_scales,
            external_mids=external_mids,
            quantization_radii=quant_radii,
            effort_scale=effort_scale,
            accuracy_boost=accuracy_boost,
        )
        try:
            dk_result = dk_synthesize(
                augmented, max_iterations=dk_iterations, mu_points=mu_points
            )
            break
        except SynthesisError as exc:
            last_error = exc
            relaxations += 1
            current_bounds = np.minimum(current_bounds * 1.5, 0.95)
    if dk_result is None:
        raise SynthesisError(
            f"layer {spec.name!r}: synthesis failed even after "
            f"{max_relaxations} bound relaxations ({last_error})"
        )
    if initial_targets is None:
        initial_targets = output_mids
    controller = assemble_runtime_controller(
        spec.name,
        dk_result.controller,
        augmented,
        input_ranges=[s.allowed for s in spec.inputs],
        initial_targets=initial_targets,
        guardband=spec.guardband,
        reduce_to=reduce_to,
        limit_mask=[s.enforce_as_limit for s in spec.outputs],
        dither_mask=["freq" in s.name for s in spec.inputs],
        # The optional model-innovation monitor is left unwired by default:
        # at the 500 ms control period the per-step output changes of this
        # plant are dominated by program-phase noise, so the persistent
        # bound-violation monitor is the reliable exhaustion detector here.
        model_gain=None,
    )
    return LayerDesign(spec, controller, dk_result, fit_report, relaxations)


def design_two_layer_system(
    hw_spec: LayerSpec,
    sw_spec: LayerSpec,
    characterization: CharacterizationResult,
    **kwargs,
):
    """Design both layers after the Fig. 3 interface exchange.

    The exchange is performed explicitly (and its consistency asserted)
    even though the default specs already carry the right metadata — this
    is the inter-team hand-shake made executable.
    """
    hw_record = hw_spec.interface_record()
    sw_record = sw_spec.interface_record()
    externals_for_hw, externals_for_sw, common = exchange_interfaces(
        hw_record, sw_record
    )
    published_to_hw = {s.name for s in externals_for_hw}
    for ext in hw_spec.externals:
        if ext.name not in published_to_hw:
            raise ValueError(
                f"hardware layer imports {ext.name!r} but the software layer "
                "does not publish it"
            )
    published_to_sw = {s.name for s in externals_for_sw}
    for ext in sw_spec.externals:
        if ext.name not in published_to_sw:
            raise ValueError(
                f"software layer imports {ext.name!r} but the hardware layer "
                "does not publish it"
            )
    hw_design = design_layer(hw_spec, characterization, **kwargs)
    sw_design = design_layer(sw_spec, characterization, **kwargs)
    return hw_design, sw_design, common
