"""Multilayer runtime coordination (Fig. 4 / Fig. 5).

The :class:`MultilayerCoordinator` owns the per-layer controllers and their
optimizers, invokes them every control period, and wires the external
signals: each controller reads, as external signals, the knob values the
*other* layer actuated last period.  The hardware layer actuates cluster
frequency and core counts; the software layer actuates the three placement
knobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..board import BIG, LITTLE, Board
from ..telemetry.tracing import NULL_SPAN
from .characterize import sample_signals
from .layer import HW_OUTPUTS, SW_OUTPUTS
from .optimizer import ExDOptimizer, exd_metric


def _null_span(*args, **kwargs):
    return NULL_SPAN

__all__ = ["MultilayerCoordinator", "ControlStepRecord"]


@dataclass
class ControlStepRecord:
    """One control period's worth of observable state (for analysis)."""

    time: float
    outputs_hw: np.ndarray
    outputs_sw: np.ndarray
    targets_hw: np.ndarray
    targets_sw: np.ndarray
    actuation_hw: list
    actuation_sw: list
    exd_proxy: float


class MultilayerCoordinator:
    """Runs the two Yukta layers against a board.

    Either layer may be a :class:`~repro.core.controller.RuntimeController`
    (SSV) or any object with the same ``step(outputs, externals)`` /
    ``set_targets`` interface (e.g. heuristic or LQG stand-ins), which is
    how the mixed schemes of Table IV are assembled.
    """

    # Sustained firmware override (the TMU throttling *under* the
    # controller) means the declared guarantees are no longer being met by
    # the controller itself — the OS-visible form of guardband exhaustion.
    FIRMWARE_OVERRIDE_PERIODS = 4

    def __init__(
        self,
        hw_controller,
        sw_controller=None,
        hw_optimizer: ExDOptimizer = None,
        sw_optimizer: ExDOptimizer = None,
        telemetry=None,
        monitor=None,
    ):
        self.hw_controller = hw_controller
        self.sw_controller = sw_controller
        self.hw_optimizer = hw_optimizer
        self.sw_optimizer = sw_optimizer
        if telemetry is None:
            from ..telemetry import active_session

            telemetry = active_session()
        self.telemetry = telemetry
        if monitor is None:
            from ..verify.invariants import active_monitor

            monitor = active_monitor()
        # Runtime invariant monitor (repro.verify); same is-None fast path
        # as telemetry, so un-verified runs pay one attribute check.
        self.monitor = monitor
        self.records = []
        self._last_hw_actuation = None
        self._last_sw_actuation = None
        self._override_streak = 0
        self._opt_published = {"hw": (0, 0), "sw": (0, 0)}

    def reset(self):
        for ctrl in (self.hw_controller, self.sw_controller):
            if ctrl is not None and hasattr(ctrl, "reset"):
                ctrl.reset()
        for opt in (self.hw_optimizer, self.sw_optimizer):
            if opt is not None:
                opt.reset()
        self.records.clear()
        self._last_hw_actuation = None
        self._last_sw_actuation = None
        self._override_streak = 0
        self._opt_published = {"hw": (0, 0), "sw": (0, 0)}

    def control_step(self, board: Board, period_steps, signals=None):
        """One control period: sense, optimize targets, actuate both layers.

        ``signals`` may carry a pre-sampled (and possibly sanitized) signal
        dict from :func:`~repro.core.characterize.sample_signals`; the
        supervisor uses this to sample once per period (the instruction
        counters are delta reads, so sampling twice would corrupt them)
        and to scrub non-finite sensor readings before they reach the
        controller state machines.
        """
        tel = self.telemetry
        span = tel.span if tel is not None else _null_span
        t_start = time.perf_counter() if tel is not None else 0.0
        # Firmware-override detection: the emergency TMU intervening under
        # the controller is visible to the OS (throttle status in sysfs on
        # real boards) and means the plant has left the designed-for
        # envelope — the runtime equivalent of guardband exhaustion.
        override_active = board.emergency.state.any_active
        if override_active:
            self._override_streak += 1
        else:
            self._override_streak = 0
        if (
            self._override_streak >= self.FIRMWARE_OVERRIDE_PERIODS
            and hasattr(self.hw_controller, "guardband_exhausted")
        ):
            self.hw_controller.guardband_exhausted = True
        if signals is None:
            with span("sample", board_time=board.time):
                signals = sample_signals(board, period_steps)
        outputs_hw = np.array([signals[name] for name in HW_OUTPUTS])
        outputs_sw = np.array([signals[name] for name in SW_OUTPUTS])
        # The optimizer's ExD proxy must price the whole platform: leaving
        # out the constant board power biases it against performance.
        total_power = (
            signals["power_big"]
            + signals["power_little"]
            + board.spec.board_static_power
        )
        exd = exd_metric(total_power, signals["bips_total"])

        # --- target optimization (Fig. 5) -----------------------------
        with span("optimize"):
            if self.hw_optimizer is not None:
                self.hw_controller.set_targets(
                    self.hw_optimizer.update(exd, outputs_hw)
                )
            if self.sw_optimizer is not None and self.sw_controller is not None:
                self.sw_controller.set_targets(
                    self.sw_optimizer.update(exd, outputs_sw)
                )

        # --- external signal wiring ------------------------------------
        # Each layer reads the other layer's most recent actuation; before
        # the first actuation it reads the current board state instead.
        ext_for_hw = (
            list(self._last_sw_actuation)
            if self._last_sw_actuation is not None
            else [signals["n_threads_big"], signals["tpc_big"], signals["tpc_little"]]
        )
        ext_for_sw = (
            list(self._last_hw_actuation)
            if self._last_hw_actuation is not None
            else [
                signals["n_big_cores"],
                signals["n_little_cores"],
                signals["freq_big"],
                signals["freq_little"],
            ]
        )

        # --- layer invocations ------------------------------------------
        with span("hw.step"):
            hw_u = self.hw_controller.step(outputs_hw, ext_for_hw)
        n_big, n_little, f_big, f_little = hw_u
        with span("actuate.hw"):
            board.set_active_cores(BIG, n_big)
            board.set_active_cores(LITTLE, n_little)
            board.set_cluster_frequency(BIG, f_big)
            board.set_cluster_frequency(LITTLE, f_little)
        self._last_hw_actuation = hw_u

        sw_u = None
        if self.sw_controller is not None:
            with span("sw.step"):
                if hasattr(self.sw_controller, "observe_thread_count"):
                    self.sw_controller.observe_thread_count(
                        board.runnable_thread_count()
                    )
                sw_u = self.sw_controller.step(outputs_sw, ext_for_sw)
            n_threads_big, tpc_big, tpc_little = sw_u
            with span("actuate.sw"):
                board.set_placement_knobs(n_threads_big, tpc_big, tpc_little)
            self._last_sw_actuation = sw_u

        self.records.append(
            ControlStepRecord(
                time=board.time,
                outputs_hw=outputs_hw,
                outputs_sw=outputs_sw,
                targets_hw=np.asarray(getattr(self.hw_controller, "targets", [])),
                targets_sw=np.asarray(
                    getattr(self.sw_controller, "targets", [])
                    if self.sw_controller is not None
                    else []
                ),
                actuation_hw=hw_u,
                actuation_sw=sw_u,
                exd_proxy=exd,
            )
        )
        if tel is not None:
            # Spanned only when profiling, so the phase profiler prices
            # the telemetry publish itself (the one loop phase the other
            # spans cannot see) while plain sessions keep the extra span
            # off their per-period cost.
            if tel.tracer.profiler is not None:
                with tel.span("telemetry"):
                    self._publish_telemetry(
                        tel, board, signals, hw_u, sw_u, exd,
                        override_active, t_start,
                    )
            else:
                self._publish_telemetry(
                    tel, board, signals, hw_u, sw_u, exd, override_active,
                    t_start,
                )
        if self.monitor is not None:
            self.monitor.check_period(board, coordinator=self,
                                      signals=signals)
        return hw_u, sw_u

    # ------------------------------------------------------------------
    # Telemetry (no-op unless a session is attached)
    # ------------------------------------------------------------------
    def _publish_telemetry(self, tel, board, signals, hw_u, sw_u, exd,
                           override_active, t_start):
        tel.periods.inc()
        tel.exd_gauge.set(exd)
        if override_active:
            tel.tmu_throttle.inc()
        for layer, opt in (("hw", self.hw_optimizer), ("sw", self.sw_optimizer)):
            if opt is None:
                continue
            seen_moves, seen_reverts = self._opt_published[layer]
            if opt.moves > seen_moves:
                tel.opt_moves.labels(layer=layer).inc(opt.moves - seen_moves)
            reverts = getattr(opt, "reverts", 0)
            if reverts > seen_reverts:
                tel.opt_reverts.labels(layer=layer).inc(reverts - seen_reverts)
            self._opt_published[layer] = (opt.moves, reverts)
        tel.control_step_hist.observe(time.perf_counter() - t_start)
        tel.record_period({
            "period": tel.period,
            "time": board.time,
            "signals": {k: float(v) for k, v in signals.items()},
            "actuation_hw": hw_u,
            "actuation_sw": sw_u,
            "targets_hw": getattr(self.hw_controller, "targets", None),
            "targets_sw": getattr(self.sw_controller, "targets", None),
            "exd_proxy": exd,
            "emergency_active": override_active,
            "counters": board.counters(),
        })
