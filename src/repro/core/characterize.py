"""Board characterization: the training runs behind System Identification.

Implements the data-collection half of Sec. IV-C: run the training programs
on the (simulated) board while driving every actuated knob and every
external signal through excitation sequences, sampling all controller-
visible signals at the 500 ms control period.  The resulting
:class:`~repro.sysid.ExperimentData` records feed the model fits, and the
observed output ranges feed the deviation-bound scaling of Sec. IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..board import BIG, LITTLE, Board
from ..sysid import ExperimentData, merge_experiments, multilevel_random
from ..workloads import make_application
from .layer import HW_OUTPUTS, SW_OUTPUTS

__all__ = ["CharacterizationResult", "characterize_board", "sample_signals"]


@dataclass
class CharacterizationResult:
    """Everything the two design teams extract from the training runs."""

    hw_data: ExperimentData
    hw_boundaries: list
    sw_data: ExperimentData
    sw_boundaries: list
    output_ranges: dict  # signal name -> (low, high)
    output_mids: dict
    joint_data: ExperimentData = None  # all 7 knobs -> all 7 outputs
    joint_boundaries: list = None

    def range_of(self, name):
        low, high = self.output_ranges[name]
        return high - low

    def mid_of(self, name):
        low, high = self.output_ranges[name]
        return 0.5 * (low + high)


def sample_signals(board: Board, period_steps):
    """Read the full controller-visible signal set after a control period."""
    dt = board.spec.sim_dt * period_steps
    bips_big = board.read_instructions_delta(BIG) / dt
    bips_little = board.read_instructions_delta(LITTLE) / dt
    placement = board.observe_placement()
    return {
        "bips_total": bips_big + bips_little,
        "bips_big": bips_big,
        "bips_little": bips_little,
        "power_big": board.read_power(BIG),
        "power_little": board.read_power(LITTLE),
        "temperature": board.read_temperature(),
        "n_threads_big": placement[BIG]["n_threads"],
        "tpc_big": max(placement[BIG]["threads_per_busy_core"], 1.0),
        "tpc_little": max(placement[LITTLE]["threads_per_busy_core"], 1.0),
        "delta_spare_capacity": (
            placement[BIG]["spare_capacity"] - placement[LITTLE]["spare_capacity"]
        ),
        "n_big_cores": board.clusters[BIG].cores_on,
        "n_little_cores": board.clusters[LITTLE].cores_on,
        "freq_big": board.clusters[BIG].frequency,
        "freq_little": board.clusters[LITTLE].frequency,
    }


def _excitation_seqs(spec, samples, seed, focus):
    """The per-knob excitation sequences of one training campaign.

    ``focus`` selects whose knobs get the informative excitation — each
    design team runs its own campaign (Fig. 3):

    * ``"hardware"`` — core counts and frequencies sweep their full ranges
      while the placement stays in the thread-rich regime a real scheduler
      produces (so core-count effects are identifiable);
    * ``"software"`` — the placement knobs sweep their full ranges while
      the hardware knobs stay in sane mid-to-high configurations.
    """
    big_levels = spec.big.freq_range.levels
    little_levels = spec.little.freq_range.levels
    if focus == "hardware":
        seqs = {
            "n_big": multilevel_random(samples, [1, 2, 3, 4], 6, seed=seed + 1),
            "n_little": multilevel_random(samples, [1, 2, 3, 4], 8, seed=seed + 2),
            "f_big": multilevel_random(samples, big_levels[4:], 4, seed=seed + 3),
            "f_little": multilevel_random(samples, little_levels[3:], 5, seed=seed + 4),
            "t_big": multilevel_random(samples, [4, 5, 6, 8], 11, seed=seed + 5),
            "tpc_b": multilevel_random(samples, [1, 1.5, 2], 13, seed=seed + 6),
            "tpc_l": multilevel_random(samples, [1, 1.5, 2], 14, seed=seed + 7),
        }
    elif focus == "software":
        seqs = {
            "n_big": multilevel_random(samples, [2, 3, 4], 12, seed=seed + 1),
            "n_little": multilevel_random(samples, [2, 3, 4], 13, seed=seed + 2),
            "f_big": multilevel_random(samples, big_levels[8:], 9, seed=seed + 3),
            "f_little": multilevel_random(samples, little_levels[6:], 10, seed=seed + 4),
            "t_big": multilevel_random(samples, [0, 2, 4, 6, 8], 5, seed=seed + 5),
            "tpc_b": multilevel_random(samples, [1, 1.5, 2, 3, 4], 6, seed=seed + 6),
            "tpc_l": multilevel_random(samples, [1, 1.5, 2, 3, 4], 7, seed=seed + 7),
        }
    else:
        raise ValueError(f"unknown focus {focus!r}")
    return seqs


def _actuate_sample(board, seqs, k):
    board.set_active_cores(BIG, int(seqs["n_big"][k]))
    board.set_active_cores(LITTLE, int(seqs["n_little"][k]))
    board.set_cluster_frequency(BIG, seqs["f_big"][k])
    board.set_cluster_frequency(LITTLE, seqs["f_little"][k])
    board.set_placement_knobs(seqs["t_big"][k], seqs["tpc_b"][k],
                              seqs["tpc_l"][k])


def _training_run(program, spec, samples, seed, focus):
    """One training program under excitation; returns per-sample signal rows.

    Reference (scalar) campaign loop; :func:`_training_runs_banked` runs
    the same campaigns bit-identically through a lockstep board bank.
    """
    board = Board(make_application(program), spec=spec, seed=seed, record=False)
    period_steps = spec.period_steps()
    seqs = _excitation_seqs(spec, samples, seed, focus)
    rows = []
    for k in range(samples):
        _actuate_sample(board, seqs, k)
        board.run_period(period_steps)
        rows.append(sample_signals(board, period_steps))
        if board.done:
            break
    return rows


def _training_runs_banked(spec, run_specs):
    """Run several excitation campaigns as one lockstep board bank.

    ``run_specs`` is a list of ``(program, samples, seed, focus)`` tuples;
    returns the per-campaign row lists, in order, bit-identical to calling
    :func:`_training_run` once per campaign: every board sees the exact
    same actuate → run_period → sample sequence it would see alone, the
    bank merely advances the periods in lockstep (and stops sampling a
    board the moment its program completes, like the scalar loop's
    early break).
    """
    from ..board.bank import BoardBank

    boards = [
        Board(make_application(program), spec=spec, seed=seed, record=False)
        for program, _, seed, _ in run_specs
    ]
    seqs = [
        _excitation_seqs(spec, samples, seed, focus)
        for _, samples, seed, focus in run_specs
    ]
    bank = BoardBank(boards)
    period_steps = spec.period_steps()
    rows = [[] for _ in run_specs]
    active = list(range(len(run_specs)))
    k = 0
    while active:
        selected = [i for i in active if k < run_specs[i][1]]
        if not selected:
            break
        for i in selected:
            _actuate_sample(boards[i], seqs[i], k)
        bank.run_period_bank(period_steps, only=selected)
        for i in selected:
            rows[i].append(sample_signals(boards[i], period_steps))
        active = [i for i in selected if not boards[i].done]
        k += 1
    return rows


def characterize_board(
    spec,
    programs=("swaptions", "vips", "astar", "perlbench", "milc", "namd"),
    samples_per_program=240,
    seed=1234,
    banked=True,
) -> CharacterizationResult:
    """Run the full training campaign and package the identification data.

    ``banked`` (the default) advances all ``2 x len(programs)`` excitation
    campaigns as one lockstep :class:`~repro.board.bank.BoardBank`; the
    rows — and therefore every downstream model fit and deviation bound —
    are bit-identical to the per-campaign scalar loop (``banked=False``,
    kept as the differential reference).  The excitation re-actuates
    cores and placement every control period, so lanes continuously
    leave and re-enter the vector kernel; the bank peels each lane's
    hotplug-stall ticks through the scalar stepper and re-plans only
    the churned lane, which keeps the campaign >= 1.5x faster than the
    scalar loop at this default width (floor measured by
    ``benchmarks/bench_perf.py``).
    """
    hw_inputs = ["n_big_cores", "n_little_cores", "freq_big", "freq_little",
                 "n_threads_big", "tpc_big", "tpc_little"]
    sw_inputs = ["n_threads_big", "tpc_big", "tpc_little",
                 "n_big_cores", "n_little_cores", "freq_big", "freq_little"]
    if banked:
        run_specs = []
        for i, program in enumerate(programs):
            run_specs.append((program, samples_per_program,
                              seed + 1000 * i, "hardware"))
            run_specs.append((program, samples_per_program,
                              seed + 1000 * i + 500, "software"))
        banked_rows = _training_runs_banked(spec, run_specs)
    hw_runs = []
    sw_runs = []
    joint_runs = []
    all_rows = []
    for i, program in enumerate(programs):
        if banked:
            hw_rows = banked_rows[2 * i]
            sw_rows = banked_rows[2 * i + 1]
        else:
            hw_rows = _training_run(
                program, spec, samples_per_program, seed + 1000 * i,
                focus="hardware",
            )
            sw_rows = _training_run(
                program, spec, samples_per_program, seed + 1000 * i + 500,
                focus="software",
            )
        if len(hw_rows) >= 24:
            all_rows.extend(hw_rows)
            hw_u = np.array([[r[k] for k in hw_inputs] for r in hw_rows])
            hw_y = np.array([[r[k] for k in HW_OUTPUTS] for r in hw_rows])
            hw_runs.append(
                ExperimentData(hw_u, hw_y, spec.control_period, label=program)
            )
        if len(sw_rows) >= 24:
            all_rows.extend(sw_rows)
            sw_u = np.array([[r[k] for k in sw_inputs] for r in sw_rows])
            sw_y = np.array([[r[k] for k in SW_OUTPUTS] for r in sw_rows])
            sw_runs.append(
                ExperimentData(sw_u, sw_y, spec.control_period, label=program)
            )
        # A monolithic designer sees everything at once: all 7 knobs to all
        # 7 outputs, built from both campaigns' rows.
        joint_rows = hw_rows + sw_rows
        if len(joint_rows) >= 24:
            joint_u = np.array([[r[k] for k in hw_inputs] for r in joint_rows])
            joint_y = np.array(
                [[r[k] for k in list(HW_OUTPUTS) + list(SW_OUTPUTS)]
                 for r in joint_rows]
            )
            joint_runs.append(
                ExperimentData(joint_u, joint_y, spec.control_period, label=program)
            )
    if not hw_runs:
        raise RuntimeError("characterization produced no usable training runs")
    hw_data, hw_bounds = merge_experiments(hw_runs)
    sw_data, sw_bounds = merge_experiments(sw_runs)
    joint_data, joint_bounds = merge_experiments(joint_runs)
    ranges = {}
    mids = {}
    for name in set(HW_OUTPUTS) | set(SW_OUTPUTS):
        values = np.array([r[name] for r in all_rows])
        # Robust (percentile) range: a handful of extreme training samples
        # must not inflate an output's range, or the normalized tracking
        # errors on that output shrink into insignificance.
        low, high = (float(v) for v in np.percentile(values, [2.0, 98.0]))
        if high - low < 1e-6:
            high = low + 1.0
        ranges[name] = (low, high)
        mids[name] = 0.5 * (low + high)
    return CharacterizationResult(
        hw_data, hw_bounds, sw_data, sw_bounds, ranges, mids,
        joint_data, joint_bounds,
    )
