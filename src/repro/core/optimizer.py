"""The ExD target optimizer (Sec. IV-D).

Each Yukta controller is paired with an optimizer that walks the output
targets downhill in Energy x Delay.  Since ExD is proportional to
Power / Perf^2, the optimizer's asymmetric move is: raise the performance
target a lot while nudging the power targets; when a move makes ExD worse,
revert it and step the other way.  Three practical refinements keep the
walk honest on a noisy, quantized system:

* ExD samples are averaged over the settle window between moves, so a
  single noisy sample cannot flip the direction;
* each move *anchors* the new targets at the currently observed outputs
  plus a directional offset — target vectors therefore always describe a
  physically co-achievable operating point near the present one, never an
  arbitrary (performance, power) pair the plant cannot realize jointly
  (which would wedge the multivariable controller in a corner);
* the offset *grows* while successive moves in the same direction keep
  being accepted (and resets on a revert) — without growth, a fixed
  anchored step smaller than the plant's actuation deadband freezes the
  walk at a fixed point one quantization notch away from where it started.

Targets are clamped to designer envelopes — for the hardware controller
those are the paper's limits (3.3 W / 0.33 W / 79 degC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TargetChannel", "ExDOptimizer", "exd_metric"]


def exd_metric(power, performance):
    """The optimizer's instantaneous ExD proxy: Power / Perf^2."""
    return float(power) / max(float(performance), 1e-6) ** 2


@dataclass
class TargetChannel:
    """One output target the optimizer is allowed to move.

    ``role`` determines the step pattern: "performance" channels take a
    large forward step and a small backward one, "power" channels take
    small near-symmetric steps, "balance" channels drift with the current
    direction, and "fixed" channels (temperature in the prototype) never
    move.
    """

    name: str
    initial: float
    low: float
    high: float
    role: str = "power"  # "performance" | "power" | "fixed" | "balance"
    forward_step: float = None  # fraction of (high - low) per move
    backward_step: float = None
    max_lead: float = None  # cap on |target - observation| as span fraction

    def __post_init__(self):
        if self.high <= self.low and self.role != "fixed":
            raise ValueError(f"channel {self.name}: high must exceed low")
        defaults = {
            "performance": (0.10, 0.04, 0.60),
            "power": (0.05, 0.06, 0.22),
            "balance": (0.08, 0.08, 1.0),
            "fixed": (0.0, 0.0, 0.0),
        }
        fwd, back, lead = defaults[self.role]
        if self.forward_step is None:
            self.forward_step = fwd
        if self.backward_step is None:
            self.backward_step = back
        if self.max_lead is None:
            # Growth exists to escape actuation deadbands, not to let a
            # target run away from the plant: critical (power) channels keep
            # their lead inside the runtime's exhaustion thresholds.
            self.max_lead = lead

    def clamp(self, value):
        return float(min(max(value, self.low), self.high))


class ExDOptimizer:
    """Greedy asymmetric hill descent on ExD over a target vector."""

    GROWTH_PER_ACCEPT = 0.8  # offset multiplier growth per accepted move
    MAX_GROWTH = 5.0  # cap on the offset multiplier
    WORSE_TOLERANCE = 1.01  # ExD ratio above which a move counts as worse

    def __init__(self, channels, settle_periods=3, upward_bias=True):
        self.channels = list(channels)
        self.targets = np.array([c.initial for c in self.channels], dtype=float)
        self.settle_periods = int(settle_periods)
        # The paper's goal is "minimize ExD *subject to* limits": where the
        # ExD landscape is flat, more performance under the limits is
        # strictly preferable, so accepted moves re-arm the upward
        # direction instead of letting the walk wander.
        self.upward_bias = bool(upward_bias)
        self.reset()

    def reset(self):
        self.targets = np.array([c.initial for c in self.channels], dtype=float)
        self._countdown = self.settle_periods
        self._window = []
        self._last_exd = None
        self._direction = +1.0
        self._prev_targets = self.targets.copy()
        self._last_outputs = None
        self._streak = 0
        # Walk statistics (surfaced as optimizer_* telemetry counters):
        # moves = target moves issued, reverts = moves judged worse and
        # undone, accepts = moves whose settle window came back no-worse.
        self.moves = 0
        self.reverts = 0
        self.accepts = 0

    def current_targets(self):
        return self.targets.copy()

    def update(self, exd_value, outputs=None):
        """Feed one control period's ExD sample (and the raw outputs, for
        anchoring); returns the current targets.

        Moves happen every ``settle_periods`` invocations, judged on the
        mean ExD of the window since the previous move.
        """
        self._window.append(float(exd_value))
        if outputs is not None:
            self._last_outputs = np.asarray(outputs, dtype=float).copy()
        self._countdown -= 1
        if self._countdown > 0:
            return self.targets.copy()
        self._countdown = self.settle_periods
        window_exd = float(np.mean(self._window))
        self._window.clear()
        if self._last_exd is not None:
            if window_exd > self._last_exd * self.WORSE_TOLERANCE:
                # The last move hurt: revert it, flip, restart the streak.
                self.targets = self._prev_targets.copy()
                self._direction = -self._direction
                self._streak = 0
                self.reverts += 1
            else:
                self._streak += 1
                self.accepts += 1
                if self.upward_bias and self._direction < 0:
                    # A successful backoff re-arms upward exploration.
                    self._direction = +1.0
                    self._streak = 0
        self._last_exd = window_exd
        self._prev_targets = self.targets.copy()
        self._move(self._direction)
        return self.targets.copy()

    def _growth(self):
        return min(1.0 + self.GROWTH_PER_ACCEPT * self._streak, self.MAX_GROWTH)

    def _move(self, direction):
        self.moves += 1
        anchor = self._last_outputs
        growth = self._growth()
        for i, channel in enumerate(self.channels):
            if channel.role == "fixed":
                continue
            span = channel.high - channel.low
            if direction > 0:
                step = channel.forward_step * span * growth
            else:
                step = -channel.backward_step * span * growth
            lead_cap = channel.max_lead * span
            step = float(np.clip(step, -lead_cap, lead_cap))
            if channel.role == "balance":
                # Balance channels walk their own target (no natural anchor
                # in the outputs would preserve exploration).
                self.targets[i] = channel.clamp(self.targets[i] + step)
                continue
            base = (
                anchor[i]
                if anchor is not None and i < anchor.size
                else self.targets[i]
            )
            self.targets[i] = channel.clamp(base + step)
