"""Yukta core: layer specs, design flow, runtime controllers, coordination.

This package is the paper's primary contribution made executable:

* :mod:`~repro.core.layer` — the Table II/III layer declarations;
* :mod:`~repro.core.characterize` — training-campaign data collection;
* :mod:`~repro.core.design` — the Fig. 3 design flow (interface exchange,
  system identification, D-K synthesis, runtime assembly);
* :mod:`~repro.core.controller` — the deployable Eq. 3-4 state machine;
* :mod:`~repro.core.optimizer` — the Sec. IV-D ExD target optimizer;
* :mod:`~repro.core.coordinator` — the Fig. 4/5 multilayer runtime;
* :mod:`~repro.core.hwimpl` — the Sec. VI-D fixed-point implementation;
* :mod:`~repro.core.supervisor` — the safe-mode watchdog runtime
  (detect → degrade → recover, closing the Sec. II-B loop).
"""

from .characterize import CharacterizationResult, characterize_board, sample_signals
from .controller import RuntimeController, assemble_runtime_controller
from .coordinator import ControlStepRecord, MultilayerCoordinator
from .design import LayerDesign, design_layer, design_two_layer_system
from .hwimpl import FixedPointController, ImplementationCost, implementation_cost
from .layer import (
    HW_OUTPUTS,
    SW_OUTPUTS,
    LayerSpec,
    hardware_layer_spec,
    software_layer_spec,
)
from .optimizer import ExDOptimizer, TargetChannel, exd_metric

# Imported after the modules above: the supervisor's default fallback pulls
# in repro.baselines, which itself imports repro.core.
from .supervisor import (
    DEGRADED,
    NOMINAL,
    RECOVERING,
    Supervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from .taxonomy import (
    TAXONOMY_TABLE,
    YUKTA_CHOICE,
    Approach,
    ControllerType,
    DesignChoice,
    Mode,
    Modeling,
    Organization,
)

__all__ = [
    "CharacterizationResult",
    "characterize_board",
    "sample_signals",
    "RuntimeController",
    "assemble_runtime_controller",
    "ControlStepRecord",
    "MultilayerCoordinator",
    "LayerDesign",
    "design_layer",
    "design_two_layer_system",
    "FixedPointController",
    "ImplementationCost",
    "implementation_cost",
    "LayerSpec",
    "hardware_layer_spec",
    "software_layer_spec",
    "HW_OUTPUTS",
    "SW_OUTPUTS",
    "ExDOptimizer",
    "TargetChannel",
    "exd_metric",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorEvent",
    "NOMINAL",
    "DEGRADED",
    "RECOVERING",
    "TAXONOMY_TABLE",
    "YUKTA_CHOICE",
    "Approach",
    "ControllerType",
    "DesignChoice",
    "Mode",
    "Modeling",
    "Organization",
]
