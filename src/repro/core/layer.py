"""Layer specifications: Tables II and III of the paper.

A :class:`LayerSpec` is everything a design team declares about its
controller before any modelling happens: actuated inputs (with quantization
and weights), monitored outputs (with deviation-bound fractions), imported
external signals, the goal, and the uncertainty guardband.  The two factory
functions reproduce the paper's hardware and software controllers for the
simulated XU3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..board.specs import BoardSpec, default_xu3_spec
from ..signals import (
    ExternalSignal,
    InputSignal,
    InterfaceRecord,
    OutputSignal,
    QuantizedRange,
)

__all__ = [
    "LayerSpec",
    "hardware_layer_spec",
    "software_layer_spec",
    "HW_OUTPUTS",
    "SW_OUTPUTS",
]

HW_OUTPUTS = ("bips_total", "power_big", "power_little", "temperature")
SW_OUTPUTS = ("bips_little", "bips_big", "delta_spare_capacity")


@dataclass
class LayerSpec:
    """One layer's controller declaration (a row of Table II / III)."""

    name: str
    goal: str
    inputs: list  # [InputSignal]
    outputs: list  # [OutputSignal]
    externals: list = field(default_factory=list)  # [ExternalSignal]
    guardband: float = 0.4

    @property
    def n_inputs(self):
        return len(self.inputs)

    @property
    def n_outputs(self):
        return len(self.outputs)

    @property
    def n_externals(self):
        return len(self.externals)

    def input_names(self):
        return [s.name for s in self.inputs]

    def output_names(self):
        return [s.name for s in self.outputs]

    def external_names(self):
        return [s.name for s in self.externals]

    def interface_record(self) -> InterfaceRecord:
        """What this layer publishes in the Fig. 3 hand-shake."""
        return InterfaceRecord(
            layer_name=self.name,
            input_levels={s.name: s.allowed for s in self.inputs},
            output_bounds={s.name: s.absolute_bound for s in self.outputs},
        )

    def with_output_ranges(self, ranges):
        """Fill in characterization ranges (Sec. IV-A) per output."""
        ranges = np.asarray(ranges, dtype=float)
        if ranges.size != self.n_outputs:
            raise ValueError(f"need {self.n_outputs} ranges, got {ranges.size}")
        outputs = [
            replace(out, value_range=float(rng))
            for out, rng in zip(self.outputs, ranges)
        ]
        return replace(self, outputs=outputs)

    def with_bounds(self, fractions):
        """Override the deviation-bound fractions (Fig. 15 sensitivity)."""
        fractions = np.asarray(fractions, dtype=float)
        outputs = [
            replace(out, bound_fraction=float(frac))
            for out, frac in zip(self.outputs, fractions)
        ]
        return replace(self, outputs=outputs)

    def with_input_weights(self, weight):
        """Override all input weights (Fig. 17 sensitivity)."""
        inputs = [replace(inp, weight=float(weight)) for inp in self.inputs]
        return replace(self, inputs=inputs)

    def with_guardband(self, guardband):
        """Override the uncertainty guardband (Fig. 16 sensitivity)."""
        return replace(self, guardband=float(guardband))

    def describe(self):
        lines = [f"Layer {self.name!r}: {self.goal}"]
        lines.append("  inputs:")
        lines.extend(f"    - {s.describe()}" for s in self.inputs)
        lines.append("  outputs:")
        lines.extend(f"    - {s.describe()}" for s in self.outputs)
        if self.externals:
            lines.append("  external signals:")
            lines.extend(f"    - {s.describe()}" for s in self.externals)
        lines.append(f"  uncertainty guardband: +-{100 * self.guardband:.0f}%")
        return "\n".join(lines)


def hardware_layer_spec(board: BoardSpec = None) -> LayerSpec:
    """Table II: the hardware controller of the prototype.

    Goal: minimize ExD subject to power/temperature limits.  Inputs are the
    core counts and cluster frequencies; outputs are total BIPS, cluster
    powers, and hot-spot temperature; external signals are the software
    layer's three placement knobs.  Output value ranges are placeholders
    until characterization fills them (``with_output_ranges``).
    """
    board = board or default_xu3_spec()
    inputs = [
        InputSignal("n_big_cores", board.big.core_count_range(), weight=1.0, unit="cores"),
        InputSignal("n_little_cores", board.little.core_count_range(), weight=1.0, unit="cores"),
        InputSignal("freq_big", board.big.freq_range, weight=1.0, unit="GHz"),
        InputSignal("freq_little", board.little.freq_range, weight=1.0, unit="GHz"),
    ]
    outputs = [
        OutputSignal("bips_total", 0.20, value_range=5.0, critical=False, unit="BIPS"),
        OutputSignal("power_big", 0.10, value_range=4.0, critical=True, unit="W"),
        OutputSignal("power_little", 0.10, value_range=0.5, critical=True, unit="W"),
        OutputSignal("temperature", 0.10, value_range=40.0, critical=True,
                     enforce_as_limit=True, unit="degC"),
    ]
    externals = [
        ExternalSignal("n_threads_big", "software", allowed=QuantizedRange(0, 8, step=1)),
        ExternalSignal("tpc_big", "software", allowed=QuantizedRange(1, 4, step=0.5)),
        ExternalSignal("tpc_little", "software", allowed=QuantizedRange(1, 4, step=0.5)),
    ]
    return LayerSpec(
        name="hardware",
        goal=(
            "minimize ExD subject to power_big < 3.3 W, power_little < 0.33 W, "
            "temperature < 79 degC"
        ),
        inputs=inputs,
        outputs=outputs,
        externals=externals,
        guardband=0.40,
    )


def software_layer_spec(board: BoardSpec = None) -> LayerSpec:
    """Table III: the software (OS) controller of the prototype.

    Inputs are the three placement knobs with weight 2 (deliberately more
    sluggish than the hardware controller, Sec. IV-B); outputs are the
    per-cluster performance and the spare-compute difference; external
    signals are the hardware layer's four knobs.
    """
    board = board or default_xu3_spec()
    inputs = [
        InputSignal("n_threads_big", QuantizedRange(0, 8, step=1), weight=2.0, unit="threads"),
        InputSignal("tpc_big", QuantizedRange(1, 4, step=0.5), weight=2.0, unit="threads/core"),
        InputSignal("tpc_little", QuantizedRange(1, 4, step=0.5), weight=2.0, unit="threads/core"),
    ]
    outputs = [
        OutputSignal("bips_little", 0.20, value_range=2.0, critical=False, unit="BIPS"),
        OutputSignal("bips_big", 0.20, value_range=5.0, critical=False, unit="BIPS"),
        OutputSignal("delta_spare_capacity", 0.20, value_range=8.0, critical=False),
    ]
    externals = [
        ExternalSignal("n_big_cores", "hardware", allowed=board.big.core_count_range()),
        ExternalSignal("n_little_cores", "hardware", allowed=board.little.core_count_range()),
        ExternalSignal("freq_big", "hardware", allowed=board.big.freq_range),
        ExternalSignal("freq_little", "hardware", allowed=board.little.freq_range),
    ]
    return LayerSpec(
        name="software",
        goal="minimize ExD",
        inputs=inputs,
        outputs=outputs,
        externals=externals,
        guardband=0.50,
    )
