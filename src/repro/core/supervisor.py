"""Supervisory safe-mode runtime: detect → degrade → recover.

The paper's Sec. II-B promise ends at *detection* ("if the guardband is
exhausted at runtime, the controller detects it dynamically").  The
:class:`Supervisor` closes the remaining loop: it wraps a
:class:`~repro.core.coordinator.MultilayerCoordinator` in a watchdog state
machine

    NOMINAL --trip--> DEGRADED --stable--> RECOVERING --probation--> NOMINAL
                         ^                      |
                         +-----unstable---------+

and monitors, every control period:

* the controllers' ``guardband_exhausted`` flags (deviation + innovation
  monitors, Sec. II-B);
* sustained emergency-firmware override (the TMU throttling *under* the
  controller — the OS-visible exhaustion signal);
* non-finite sensor readings (dropout) and non-finite/railed actuation;
* actuation read-back mismatch — commanded vs achieved board state, with
  a bounded re-issue retry before it counts against the controller;
* the board's rejected-actuation counters.

On a trip the supervisor swaps in the *safe* fallback controllers (the
coordinated heuristic pair by default — slow, but unconditionally stable)
and additionally engages a thermal safe-mode clamp that walks the big
cluster's frequency down while the die sits near the limit.  After a
stable probation window it re-promotes the primary (SSV) controllers,
optionally after an online re-identification pass through
:mod:`repro.sysid` that refreshes the innovation monitor's DC-gain model
from degraded-mode data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..board import BIG, LITTLE
from .characterize import sample_signals
from .coordinator import MultilayerCoordinator

__all__ = [
    "Supervisor",
    "SupervisorConfig",
    "SupervisorEvent",
    "NOMINAL",
    "DEGRADED",
    "RECOVERING",
]

NOMINAL = "NOMINAL"
DEGRADED = "DEGRADED"
RECOVERING = "RECOVERING"

# Trip reasons, in evaluation precedence order.
REASONS = (
    "nan-actuation",
    "sensor-dropout",
    "guardband-exhausted",
    "firmware-override",
    "actuation-readback",
    "rejected-actuation",
    "railed-actuation",
)


@dataclass
class SupervisorConfig:
    """Watchdog thresholds, all in control periods unless noted."""

    # A single sporadic power emergency holds >= MIN_HOLD + clear delay
    # (~8 periods) by firmware design, so the supervisor's own override
    # threshold sits above that; persistent faults hold the override far
    # longer.  (SSV primaries trip earlier anyway: the coordinator raises
    # their exhaustion flag after 4 override periods.)
    override_trip_periods: int = 12  # sustained firmware override before trip
    dropout_trip_periods: int = 3  # consecutive non-finite sensor periods
    railed_trip_periods: int = 6  # low-railed actuation under violation
    rejected_trip_periods: int = 3  # consecutive periods with rejected commands
    readback_retries: int = 2  # re-issues before a mismatch counts
    readback_trip_periods: int = 3  # consecutive unresolved mismatches
    min_degraded_periods: int = 8  # minimum dwell in DEGRADED
    stable_periods: int = 10  # clean DEGRADED periods before re-promotion
    probation_periods: int = 12  # clean RECOVERING periods before NOMINAL
    safe_mode_margin: float = 1.0  # degC under the limit where the clamp bites
    safe_mode_release: float = 5.0  # degC under the limit where it relaxes
    power_slack: float = 1.15  # fraction of a power limit counted clean
    # (the fallback heuristic rides the power limit, so its windowed
    # readings ripple a few percent above it; tighter slack stalls the
    # clean streak and delays re-promotion by minutes)
    temp_clean_margin: float = 1.0  # degC over the limit still counted clean
    # (marginal crossings at sensor-noise level must not stall probation;
    # a trip still needs a monitor to fire, not this slack)
    reidentify: bool = False  # run an online sysid pass before re-promotion
    reidentify_min_samples: int = 12


@dataclass
class SupervisorEvent:
    """One state-machine transition."""

    time: float
    transition: str  # e.g. "NOMINAL->DEGRADED"
    reason: str


class Supervisor:
    """Watchdog wrapper around a multilayer control session.

    Parameters
    ----------
    primary:
        The :class:`MultilayerCoordinator` running the deployed (SSV)
        controllers.  Monolithic single-controller schemes are not
        supported — the supervisor swaps whole layer pairs.
    spec:
        The :class:`~repro.board.BoardSpec` the limits come from.
    fallback:
        Optional safe coordinator; defaults to the coordinated-heuristic
        pair of Table IV-a (unconditionally stable threshold rules).
    config:
        :class:`SupervisorConfig` thresholds.
    """

    def __init__(self, primary: MultilayerCoordinator, spec, fallback=None,
                 config: SupervisorConfig = None, telemetry=None):
        self._primary = primary
        self._spec = spec
        self._fallback = fallback or self._default_fallback(spec)
        if telemetry is None:
            from ..telemetry import active_session

            telemetry = active_session()
        self.telemetry = telemetry
        # Both coordinators report through the supervisor's session so a
        # flight dump shows the same ring regardless of who was active.
        self._primary.telemetry = telemetry
        self._fallback.telemetry = telemetry
        self.config = config or SupervisorConfig()
        self.state = NOMINAL
        self.period = 0
        self.events = []
        self.counters = {reason: 0 for reason in REASONS}
        self.counters["readback-retries"] = 0
        self.counters["reidentified"] = 0
        self.time_degraded = 0.0
        self.state_history = []  # (time, state) per period
        self._last_good = {}
        self._last_rejected = 0
        self._streaks = {key: 0 for key in
                         ("override", "dropout", "railed", "rejected", "readback")}
        self._clean_streak = 0
        self._degraded_dwell = 0
        self._probation = 0
        self._demotions = 0
        self._safe_freq = spec.big.freq_range.high

    @staticmethod
    def _default_fallback(spec):
        from ..baselines.heuristics import (
            CoordinatedHeuristicHW,
            CoordinatedHeuristicOS,
        )

        return MultilayerCoordinator(
            CoordinatedHeuristicHW(spec), CoordinatedHeuristicOS(spec)
        )

    # ------------------------------------------------------------------
    @property
    def active_coordinator(self):
        return self._fallback if self.state == DEGRADED else self._primary

    @property
    def tripped(self):
        return any(e.transition == "NOMINAL->DEGRADED" for e in self.events)

    @property
    def detection_time(self):
        """Board time of the first NOMINAL->DEGRADED trip (None if never)."""
        for event in self.events:
            if event.transition == "NOMINAL->DEGRADED":
                return event.time
        return None

    @property
    def recovered(self):
        """True when a re-promotion to NOMINAL completed after a trip."""
        return any(e.transition == "RECOVERING->NOMINAL" for e in self.events)

    # ------------------------------------------------------------------
    def control_step(self, board, period_steps):
        """One supervised control period."""
        tel = self.telemetry
        if tel is not None:
            with tel.span("sample", board_time=board.time):
                raw = sample_signals(board, period_steps)
        else:
            raw = sample_signals(board, period_steps)
        signals, dropped = self._sanitize(raw)
        coordinator = self.active_coordinator
        hw_u, sw_u = coordinator.control_step(board, period_steps, signals=signals)
        if tel is not None:
            # The coordinator just recorded this period's flight snapshot;
            # stamp it with the (pre-transition) supervisor view.
            last = tel.flight.last
            if last is not None:
                last["supervisor_state"] = self.state
                last["dropped_signals"] = list(dropped)
        mismatch = self._readback_check(board, hw_u)
        reason, clean = self._evaluate(board, signals, hw_u, sw_u, dropped, mismatch)
        self._advance_state(board, reason, clean)
        if self.state in (DEGRADED, RECOVERING):
            self._apply_safe_mode(board, signals)
            if self.state == DEGRADED:
                self.time_degraded += self._spec.control_period
        self.period += 1
        self.state_history.append((board.time, self.state))
        if tel is not None:
            from ..telemetry.session import STATE_VALUES

            tel.state_gauge.set(STATE_VALUES[self.state])
        return hw_u, sw_u

    # ------------------------------------------------------------------
    # Monitors
    # ------------------------------------------------------------------
    def _sanitize(self, signals):
        """Replace non-finite readings with the last good value.

        A dropped-out sensor reads NaN (see :mod:`repro.faults`); feeding
        that into a linear state machine would poison its state forever,
        so the supervisor scrubs the signal dict and records which
        channels dropped.
        """
        clean = {}
        dropped = []
        for name, value in signals.items():
            if np.isfinite(value):
                clean[name] = value
                self._last_good[name] = value
            else:
                dropped.append(name)
                if name in self._last_good:
                    clean[name] = self._last_good[name]
                elif name == "temperature":
                    clean[name] = self._spec.ambient_temp + 15.0
                else:
                    clean[name] = 0.0
        return clean, dropped

    def _readback_check(self, board, hw_u):
        """Commanded vs achieved hardware state, with bounded retry."""
        arr = np.asarray(hw_u, dtype=float) if hw_u is not None else np.zeros(0)
        if arr.size != 4 or not np.all(np.isfinite(arr)):
            return False  # non-finite actuation is the NaN monitor's job
        n_big, n_little, f_big, f_little = arr
        spec = self._spec
        expect = {
            (BIG, "cores"): int(round(min(max(n_big, 1), spec.big.n_cores))),
            (LITTLE, "cores"): int(round(min(max(n_little, 1), spec.little.n_cores))),
            (BIG, "freq"): spec.big.freq_range.snap(f_big),
            (LITTLE, "freq"): spec.little.freq_range.snap(f_little),
        }

        def achieved_ok():
            return (
                board.clusters[BIG].cores_on == expect[(BIG, "cores")]
                and board.clusters[LITTLE].cores_on == expect[(LITTLE, "cores")]
                and abs(board.clusters[BIG].frequency - expect[(BIG, "freq")]) < 1e-6
                and abs(board.clusters[LITTLE].frequency - expect[(LITTLE, "freq")])
                < 1e-6
            )

        for attempt in range(self.config.readback_retries + 1):
            if achieved_ok():
                return False
            if attempt < self.config.readback_retries:
                self.counters["readback-retries"] += 1
                board.set_active_cores(BIG, expect[(BIG, "cores")])
                board.set_active_cores(LITTLE, expect[(LITTLE, "cores")])
                board.set_cluster_frequency(BIG, expect[(BIG, "freq")])
                board.set_cluster_frequency(LITTLE, expect[(LITTLE, "freq")])
        return True

    def _evaluate(self, board, signals, hw_u, sw_u, dropped, mismatch):
        """Update monitor streaks; return (trip reason or None, clean)."""
        cfg = self.config
        spec = self._spec
        streaks = self._streaks

        def bump(key, firing):
            streaks[key] = streaks[key] + 1 if firing else 0

        override = board.emergency.state.any_active
        bump("override", override)
        bump("dropout", bool(dropped))
        bump("readback", mismatch)
        rejected_now = sum(board.rejected_actuations.values())
        bump("rejected", rejected_now > self._last_rejected)
        self._last_rejected = rejected_now

        commands = [np.asarray(u, dtype=float) for u in (hw_u, sw_u)
                    if u is not None]
        nan_actuation = any(not np.all(np.isfinite(u)) for u in commands)

        temp_over = signals["temperature"] > spec.temp_limit + cfg.temp_clean_margin
        power_over = (
            signals["power_big"] > spec.power_limit_big * cfg.power_slack
            or signals["power_little"] > spec.power_limit_little * cfg.power_slack
        )
        railed = False
        if len(commands) and commands[0].size == 4 and np.all(np.isfinite(commands[0])):
            f_big_cmd = commands[0][2]
            railed = (
                f_big_cmd <= spec.big.freq_range.low + 1e-9
                and (temp_over or power_over)
            )
        bump("railed", railed)

        exhausted = bool(
            getattr(self._primary.hw_controller, "guardband_exhausted", False)
            or getattr(self._primary.sw_controller, "guardband_exhausted", False)
        )

        reason = None
        if nan_actuation:
            reason = "nan-actuation"
        elif streaks["dropout"] >= cfg.dropout_trip_periods:
            reason = "sensor-dropout"
        elif exhausted and self.state in (NOMINAL, RECOVERING):
            reason = "guardband-exhausted"
        elif streaks["override"] >= cfg.override_trip_periods:
            reason = "firmware-override"
        elif streaks["readback"] >= cfg.readback_trip_periods:
            reason = "actuation-readback"
        elif streaks["rejected"] >= cfg.rejected_trip_periods:
            reason = "rejected-actuation"
        elif streaks["railed"] >= cfg.railed_trip_periods:
            reason = "railed-actuation"

        clean = not (
            override or mismatch or dropped or temp_over or power_over
            or nan_actuation
        )
        return reason, clean

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _advance_state(self, board, reason, clean):
        cfg = self.config
        if self.state == NOMINAL:
            if reason is not None:
                self._trip(board, reason)
        elif self.state == DEGRADED:
            self._degraded_dwell += 1
            self._clean_streak = self._clean_streak + 1 if clean else 0
            # Exponential re-promotion backoff: a permanent fault demotes
            # every probation attempt, and each failed attempt costs safety
            # margin — so each retry must earn a longer stable window.
            required = cfg.stable_periods * (2 ** min(self._demotions, 3))
            if (
                self._degraded_dwell >= cfg.min_degraded_periods
                and self._clean_streak >= required
            ):
                self._repromote(board)
        elif self.state == RECOVERING:
            if reason is not None or not clean:
                self._demote(board, reason or "unstable-probation")
            else:
                self._probation += 1
                if self._probation >= cfg.probation_periods:
                    self.events.append(
                        SupervisorEvent(board.time, "RECOVERING->NOMINAL", "probation-passed")
                    )
                    self.state = NOMINAL
                    self._demotions = 0
                    self._note_transition(board, "RECOVERING->NOMINAL",
                                          "probation-passed")

    def _note_transition(self, board, transition, reason):
        """Publish one state-machine transition through telemetry.

        Every DEGRADED/RECOVERING transition triggers a flight-recorder
        dump: the ring at this moment holds the periods *leading up to*
        the transition, which is exactly the forensic record wanted.
        """
        tel = self.telemetry
        if tel is None:
            return
        tel.transitions.labels(transition=transition).inc()
        if transition == "NOMINAL->DEGRADED":
            tel.trips.labels(cause=reason).inc()
        tel.instant("supervisor.transition", cat="supervisor",
                    transition=transition, reason=reason,
                    board_time=board.time)
        tel.dump_flight(f"{transition}:{reason}",
                        extra={"period": self.period, "board_time": board.time})

    def _trip(self, board, reason):
        self.counters[reason] = self.counters.get(reason, 0) + 1
        self.events.append(SupervisorEvent(board.time, "NOMINAL->DEGRADED", reason))
        self.state = DEGRADED
        self._enter_degraded()
        self._note_transition(board, "NOMINAL->DEGRADED", reason)

    def _demote(self, board, reason):
        self.counters[reason] = self.counters.get(reason, 0) + 1
        self.events.append(SupervisorEvent(board.time, "RECOVERING->DEGRADED", reason))
        self.state = DEGRADED
        self._demotions += 1
        self._enter_degraded()
        self._note_transition(board, "RECOVERING->DEGRADED", reason)

    def _enter_degraded(self):
        self._fallback.reset()
        self._degraded_dwell = 0
        self._clean_streak = 0
        self._safe_freq = self._spec.big.freq_range.high

    def _repromote(self, board):
        reason = "stable-window"
        if self.config.reidentify and self._reidentify():
            reason = "stable-window+reidentified"
        # Fresh primary state: stale integrators and a latched exhaustion
        # flag must not carry into probation.
        self._primary.reset()
        self.events.append(SupervisorEvent(board.time, "DEGRADED->RECOVERING", reason))
        self.state = RECOVERING
        self._probation = 0
        self._note_transition(board, "DEGRADED->RECOVERING", reason)

    # ------------------------------------------------------------------
    # Degraded-mode safety clamp
    # ------------------------------------------------------------------
    def _apply_safe_mode(self, board, signals):
        """Walk the big cluster's frequency down while the die is hot.

        The fallback heuristic is stable but tuned for the healthy plant;
        with a detached heatsink its fixed cooling state can still sit too
        high.  The supervisor therefore keeps its own descending frequency
        cap (and a two-core cap while over the limit), released once the
        die cools clear of the limit.
        """
        cfg = self.config
        spec = self._spec
        rng = spec.big.freq_range
        temp = signals["temperature"]
        if temp > spec.temp_limit - cfg.safe_mode_margin:
            self._safe_freq = max(self._safe_freq - rng.step, rng.low)
            board.set_active_cores(BIG, min(board.clusters[BIG].cores_on, 2))
        elif temp < spec.temp_limit - cfg.safe_mode_release:
            self._safe_freq = min(self._safe_freq + rng.step, rng.high)
        if self._safe_freq < board.clusters[BIG].frequency - 1e-9:
            board.set_cluster_frequency(BIG, self._safe_freq)

    # ------------------------------------------------------------------
    # Online re-identification (optional)
    # ------------------------------------------------------------------
    def _reidentify(self):
        """Refresh the primary's DC-gain model from degraded-mode data.

        Fits a first-order ARX model (via :mod:`repro.sysid`) to the
        fallback coordinator's records and installs its DC gain as the
        primary hardware controller's ``model_gain``, so the innovation
        monitor judges the *current* plant rather than the one it was
        designed for.
        """
        ctrl = self._primary.hw_controller
        if getattr(ctrl, "model_gain", None) is None:
            return False
        records = self._fallback.records
        if len(records) < self.config.reidentify_min_samples:
            return False
        y = np.array([r.outputs_hw for r in records[-48:]], dtype=float)
        u = np.array([r.actuation_hw for r in records[-48:]], dtype=float)
        y_n = (y - ctrl.output_offsets) / ctrl.output_scales
        u_n = (u - ctrl.input_offsets) / ctrl.input_scales
        try:
            from ..sysid import ExperimentData, fit_arx

            data = ExperimentData(inputs=u_n, outputs=y_n,
                                  dt=self._spec.control_period)
            model = fit_arx(data, na=1, nb=1, delay=1)
            a1, b1 = model.A_coeffs[0], model.B_coeffs[0]
            gain = np.linalg.solve(np.eye(a1.shape[0]) - a1, b1)
        except Exception:
            return False
        if gain.shape != np.asarray(ctrl.model_gain).shape or not np.all(
            np.isfinite(gain)
        ):
            return False
        ctrl.model_gain = gain
        self.counters["reidentified"] += 1
        return True
