"""Runtime SSV controller: the Eq. 3-4 state machine plus its wrappers.

The synthesized continuous controller is discretized, composed with the
discrete measurement filters its design assumed, and wrapped with the
normalization, saturation/quantization snapping, and guardband-exhaustion
detection needed to drive the real (simulated) board.  The resulting object
implements exactly the paper's hardware form:

    x(T+1) = A x(T) + B dy(T)
    u(T)   = C x(T) + D dy(T)

where ``dy`` stacks the output deviations from their targets and the
external signals (O + E entries) and ``u`` is the new input vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lti import StateSpace, append, continuous_to_discrete, series, ss
from ..robust import AugmentedPlant

__all__ = ["RuntimeController", "assemble_runtime_controller"]


def _discrete_lag(pole_hz, dt, channels):
    """Discrete first-order unity-DC-gain lag bank (one per channel)."""
    # Continuous: a/(s+a); Tustin-discretized to match the synthesis model.
    a = pole_hz
    single = ss([[-a]], [[a]], [[1.0]], [[0.0]])
    single_d = continuous_to_discrete(single, dt)
    return append(*[single_d for _ in range(channels)])


@dataclass
class RuntimeController:
    """A deployable Yukta layer controller.

    Attributes
    ----------
    state_machine:
        Discrete system mapping ``[err_norm; ext_norm] -> u_norm``.
    input_ranges:
        One :class:`~repro.signals.QuantizedRange` per actuated input.
    targets:
        Current output targets in physical units (set by the optimizer).
    """

    name: str
    state_machine: StateSpace
    input_ranges: list
    input_offsets: np.ndarray
    input_scales: np.ndarray
    output_offsets: np.ndarray
    output_scales: np.ndarray
    external_offsets: np.ndarray
    external_scales: np.ndarray
    bound_fractions: np.ndarray
    targets: np.ndarray
    guardband: float = 0.4
    limit_mask: np.ndarray = None  # True for limit-style (one-sided) outputs
    dither_mask: np.ndarray = None  # True for knobs cheap enough to dither
    model_gain: np.ndarray = None  # normalized DC gain (n_y x n_u), for the
    # guardband-exhaustion innovation monitor
    state: np.ndarray = None
    guardband_exhausted: bool = False
    _violation_streak: int = 0
    _state_norm_cap: float = 25.0
    history: list = field(default_factory=list)

    def __post_init__(self):
        if self.state is None:
            self.state = np.zeros(self.state_machine.n_states)
        self.targets = np.asarray(self.targets, dtype=float).copy()
        if self.limit_mask is None:
            self.limit_mask = np.zeros(len(self.output_scales), dtype=bool)
        if self.dither_mask is None:
            self.dither_mask = np.zeros(self.n_inputs, dtype=bool)
        self._snap_residual = np.zeros(self.n_inputs)
        self._prev_u_norm = None
        self._prev_y_norm = None
        self._innovation_ema = 0.0
        self._innovation_streak = 0

    @property
    def n_inputs(self):
        return len(self.input_ranges)

    @property
    def n_outputs(self):
        return len(self.output_scales)

    def set_targets(self, targets):
        self.targets = np.asarray(targets, dtype=float).copy()

    def reset(self):
        self.state = np.zeros(self.state_machine.n_states)
        self.guardband_exhausted = False
        self._violation_streak = 0
        self._snap_residual = np.zeros(self.n_inputs)
        self._prev_u_norm = None
        self._prev_y_norm = None
        self._innovation_ema = 0.0
        self._innovation_streak = 0
        self.history.clear()

    def step(self, outputs, externals):
        """One control period: measurements in, snapped actuation out.

        Parameters
        ----------
        outputs:
            Measured output vector (physical units).
        externals:
            External-signal vector (physical units, may be empty).

        Returns
        -------
        List of snapped physical input values, one per actuated knob.
        """
        outputs = np.asarray(outputs, dtype=float)
        externals = np.asarray(externals, dtype=float)
        y_norm = (outputs - self.output_offsets) / self.output_scales
        r_norm = (self.targets - self.output_offsets) / self.output_scales
        # Clamp the error so unreachable targets degrade into bounded,
        # proportional pressure instead of tearing the linear controller
        # between irreconcilable extremes.  Limit-style outputs (e.g. the
        # temperature constraint) are one-sided: full authority to pull an
        # over-limit output down, almost none to push it up from below.
        hi = np.where(self.limit_mask, 0.05, 0.6)
        err = np.clip(r_norm - y_norm, -0.6, hi)
        e_norm = (
            (externals - self.external_offsets) / self.external_scales
            if externals.size
            else np.zeros(0)
        )
        dy = np.concatenate([err, e_norm])
        self.state, u_norm = self.state_machine.step(self.state, dy)
        # Mild state-norm clamp: keeps the (validated-stable) state machine
        # from winding up when actuators sit saturated for long stretches.
        norm = np.linalg.norm(self.state)
        if norm > self._state_norm_cap:
            self.state *= self._state_norm_cap / norm
        u_phys = self.input_offsets + self.input_scales * u_norm
        # Sigma-delta quantization on the *cheap* knobs (frequencies): carry
        # the snap residual into the next period so persistent sub-notch
        # pressure eventually crosses a level boundary (dithering between
        # adjacent DVFS levels realizes the average command) instead of
        # being discarded forever.  Expensive knobs (hotplug, migrations)
        # snap plainly — dithering them would cost a stall every period.
        snapped = []
        for i, (rng, value) in enumerate(zip(self.input_ranges, u_phys)):
            if self.dither_mask[i]:
                candidate = value + self._snap_residual[i]
                level = rng.snap(candidate)
                half_gap = max(rng.quantization_radius(), 1e-9)
                self._snap_residual[i] = float(
                    np.clip(candidate - level, -half_gap, half_gap)
                )
            else:
                level = rng.snap(value)
            snapped.append(level)
        self._update_guardband_monitor(err)
        u_norm_applied = (np.asarray(snapped) - self.input_offsets) / self.input_scales
        self._update_innovation_monitor(y_norm, u_norm_applied)
        self.history.append(
            {"outputs": outputs.copy(), "targets": self.targets.copy(), "u": snapped}
        )
        return snapped

    # Only outputs with bounds at or below this fraction participate in
    # the exhaustion monitor: those are the critical outputs whose targets
    # the optimizer never deliberately leads (it walks performance targets
    # ahead of the observation by design, which is not a fault).
    _CRITICAL_BOUND = 0.12

    def _update_guardband_monitor(self, err_norm):
        """Detect guardband exhaustion (Sec. II-B).

        If a *critical* output's deviation persistently exceeds its designed
        bound by more than the modelling guardband allows (with a 1.5x noise
        margin), the runtime flags that the declared Delta was too small.
        """
        margin = 1.0 + self.guardband
        critical = self.bound_fractions <= self._CRITICAL_BOUND
        thresholds = self.bound_fractions * margin * 1.5
        violated = bool(
            np.any(critical & (np.abs(err_norm) > thresholds))
        )
        if violated:
            self._violation_streak += 1
        else:
            self._violation_streak = 0
        if self._violation_streak >= 8:
            self.guardband_exhausted = True

    # The innovation monitor needs a minimum actuation move to attribute an
    # output change to the inputs rather than to plant noise.
    _INNOVATION_MIN_MOVE = 0.05
    _INNOVATION_EMA_ALPHA = 0.25
    _INNOVATION_STREAK = 6

    def _update_innovation_monitor(self, y_norm, u_norm):
        """Detect guardband exhaustion by model-innovation excess.

        Compares the measured output change against the identified model's
        predicted change for the applied input move; a prediction error
        persistently exceeding the declared guardband (with margin) means
        the true plant has left the designed-for uncertainty set.
        """
        prev_u, prev_y = self._prev_u_norm, self._prev_y_norm
        self._prev_u_norm = np.asarray(u_norm, dtype=float).copy()
        self._prev_y_norm = np.asarray(y_norm, dtype=float).copy()
        if self.model_gain is None or prev_u is None:
            return
        du = self._prev_u_norm - prev_u
        if np.linalg.norm(du) < self._INNOVATION_MIN_MOVE:
            return
        predicted = self.model_gain @ du
        actual = self._prev_y_norm - prev_y
        scale = max(np.linalg.norm(predicted), 0.05)
        ratio = float(np.linalg.norm(actual - predicted) / scale)
        alpha = self._INNOVATION_EMA_ALPHA
        self._innovation_ema = (1 - alpha) * self._innovation_ema + alpha * ratio
        threshold = 2.0 * (1.0 + self.guardband)
        if self._innovation_ema > threshold:
            self._innovation_streak += 1
        else:
            self._innovation_streak = max(self._innovation_streak - 1, 0)
        if self._innovation_streak >= self._INNOVATION_STREAK:
            self.guardband_exhausted = True


def assemble_runtime_controller(
    name,
    synthesized_continuous: StateSpace,
    augmented: AugmentedPlant,
    input_ranges,
    initial_targets,
    guardband,
    reduce_to=None,
    limit_mask=None,
    dither_mask=None,
    model_gain=None,
) -> RuntimeController:
    """Build a deployable controller from a synthesis result.

    Discretizes the continuous controller at the control period, prepends
    the measurement-filter bank the design assumed, optionally reduces the
    composite order by balanced truncation, and wraps everything with the
    plant's normalization metadata.
    """
    dt = augmented.dt
    if not np.isfinite(dt):
        raise ValueError("augmented plant lacks a sampling period")
    k_d = continuous_to_discrete(synthesized_continuous, dt)
    n_y = augmented.channels.n_y
    n_e = augmented.channels.n_e
    pole = augmented.notes["measurement_pole"]
    filters = _discrete_lag(pole, dt, n_y + n_e)
    composite = series(filters, k_d)  # filters first, then the controller
    if reduce_to is not None and composite.is_stable() and reduce_to < composite.n_states:
        from ..lti import balanced_truncation

        composite, _ = balanced_truncation(composite, reduce_to)
    return RuntimeController(
        name=name,
        state_machine=composite,
        input_ranges=list(input_ranges),
        input_offsets=augmented.input_offsets,
        input_scales=augmented.input_scales,
        output_offsets=augmented.output_offsets,
        output_scales=augmented.output_scales,
        external_offsets=augmented.external_offsets,
        external_scales=augmented.external_scales,
        bound_fractions=augmented.bound_fractions,
        targets=initial_targets,
        guardband=guardband,
        limit_mask=(
            np.asarray(limit_mask, dtype=bool) if limit_mask is not None else None
        ),
        dither_mask=(
            np.asarray(dither_mask, dtype=bool) if dither_mask is not None else None
        ),
        model_gain=(
            np.asarray(model_gain, dtype=float) if model_gain is not None else None
        ),
    )
