"""The controller-design taxonomy of Table I.

Enumerations of the design space plus the combination Yukta selects.  Used
by documentation, reports, and the table-reproduction bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Modeling", "Mode", "Organization", "Approach", "ControllerType",
           "DesignChoice", "YUKTA_CHOICE", "TAXONOMY_TABLE"]


class Modeling(enum.Enum):
    WHITE_BOX = "White Box (Analytical)"
    BLACK_BOX = "Black Box (Data Driven)"
    GRAY_BOX = "Gray Box"


class Mode(enum.Enum):
    SISO = "SISO"
    MISO = "MISO"
    SIMO = "SIMO"
    MIMO = "MIMO"


class Organization(enum.Enum):
    DECOUPLED = "Decoupled"
    CENTRALIZED = "Centralized"
    CASCADED = "Cascaded"
    COLLABORATIVE = "Collaborative"


class Approach(enum.Enum):
    CLASSICAL = "Classical"
    ROBUST = "Robust"
    GAIN_SCHEDULING = "Gain Scheduling"
    ADAPTIVE = "Adaptive"


class ControllerType(enum.Enum):
    PID = "PID"
    LQG = "LQG"
    MPC = "MPC"
    SSV = "SSV"


@dataclass(frozen=True)
class DesignChoice:
    """One point in the Table I design space."""

    modeling: Modeling
    mode: Mode
    organization: Organization
    approach: Approach
    controller_type: ControllerType

    def describe(self):
        return (
            f"{self.modeling.value} / {self.mode.value} / "
            f"{self.organization.value} / {self.approach.value} / "
            f"{self.controller_type.value}"
        )


# The combination the paper selects (italicized entries of Table I).
YUKTA_CHOICE = DesignChoice(
    modeling=Modeling.BLACK_BOX,
    mode=Mode.MIMO,
    organization=Organization.COLLABORATIVE,
    approach=Approach.ROBUST,
    controller_type=ControllerType.SSV,
)

TAXONOMY_TABLE = {
    "Modeling": [m.value for m in Modeling],
    "Mode": [m.value for m in Mode],
    "Organization": [o.value for o in Organization],
    "Approach": [a.value for a in Approach],
    "Type": [t.value for t in ControllerType],
}
