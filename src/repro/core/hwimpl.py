"""Fixed-point hardware implementation of an SSV controller (Sec. VI-D).

The paper observes that the synthesized controller is just the state machine

    x(T+1) = A x(T) + B dy(T)
    u(T)   = C x(T) + D dy(T)

and costs it out in 32-bit fixed-point multiply-accumulates and bytes of
matrix storage.  :class:`FixedPointController` quantizes a synthesized
controller's matrices to Q-format fixed point, executes the state machine in
integer arithmetic, counts the operations, and reports the storage budget —
letting the repo verify the paper's ~700-operation / ~2.6 KB claim for the
N=20, I=4, O=4, E=3 configuration and quantify the fixed-point error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import StateSpace

__all__ = ["FixedPointController", "ImplementationCost", "implementation_cost"]


@dataclass(frozen=True)
class ImplementationCost:
    """Static cost model of the controller state machine in hardware."""

    n_states: int
    n_inputs: int  # I: actuated inputs (rows of u)
    n_signals: int  # O + E: entries of dy
    multiplies: int
    additions: int
    storage_bytes: int

    @property
    def total_operations(self):
        return self.multiplies + self.additions

    @property
    def macs(self):
        """Multiply-accumulate count (what a DSP datapath would execute)."""
        return self.multiplies

    def summary(self):
        return (
            f"N={self.n_states}, I={self.n_inputs}, O+E={self.n_signals}: "
            f"{self.macs} MACs ({self.total_operations} total ops), "
            f"{self.storage_bytes / 1024:.2f} KB of matrix storage"
        )


def implementation_cost(n_states, n_inputs, n_signals, word_bytes=4):
    """Cost of one invocation of Eqs. 3-4.

    Each matrix entry contributes one multiply; each dot product of length L
    contributes L-1 additions plus one addition to merge the two terms.
    """
    n, i, s = n_states, n_inputs, n_signals
    entries = n * n + n * s + i * n + i * s
    multiplies = entries
    additions = (
        n * (n - 1) + n * (s - 1) + n  # state update rows + merge
        + i * (n - 1) + i * (s - 1) + i  # output rows + merge
    )
    storage = entries * word_bytes
    return ImplementationCost(n, i, s, multiplies, additions, storage)


class FixedPointController:
    """Quantized integer implementation of a controller state machine."""

    def __init__(self, controller: StateSpace, frac_bits=16, word_bits=32):
        if not controller.is_discrete:
            raise ValueError("fixed-point implementation needs a discrete controller")
        if not 0 < frac_bits < word_bits:
            raise ValueError("frac_bits must be inside the word")
        self.frac_bits = int(frac_bits)
        self.word_bits = int(word_bits)
        self._scale = float(1 << frac_bits)
        limit = 1 << (word_bits - 1)
        self._min_word = -limit
        self._max_word = limit - 1
        self.reference = controller
        self.A = self._quantize_matrix(controller.A)
        self.B = self._quantize_matrix(controller.B)
        self.C = self._quantize_matrix(controller.C)
        self.D = self._quantize_matrix(controller.D)
        self.state = np.zeros(controller.n_states, dtype=np.int64)
        self.cost = implementation_cost(
            controller.n_states, controller.n_outputs, controller.n_inputs,
            word_bytes=word_bits // 8,
        )
        self.operations_executed = 0

    def _quantize_matrix(self, M):
        q = np.round(np.asarray(M) * self._scale).astype(np.int64)
        return np.clip(q, self._min_word, self._max_word)

    def _quantize_vector(self, v):
        q = np.round(np.asarray(v, dtype=float) * self._scale).astype(np.int64)
        return np.clip(q, self._min_word, self._max_word)

    def reset(self):
        self.state = np.zeros_like(self.state)
        self.operations_executed = 0

    def step(self, dy):
        """One fixed-point invocation; returns the de-quantized u vector."""
        dy_q = self._quantize_vector(dy)
        # Products are Q(2*frac); shift back down to Q(frac) after each MAC.
        acc_state = self.A @ self.state + self.B @ dy_q
        acc_out = self.C @ self.state + self.D @ dy_q
        self.state = np.clip(acc_state >> self.frac_bits, self._min_word, self._max_word)
        u_q = np.clip(acc_out >> self.frac_bits, self._min_word, self._max_word)
        self.operations_executed += self.cost.total_operations
        return u_q.astype(float) / self._scale

    def max_output_error(self, dy_sequence):
        """Worst |fixed - float| output deviation over an input sequence.

        Runs the float reference and the fixed-point machine side by side.
        """
        self.reset()
        x_float = np.zeros(self.reference.n_states)
        worst = 0.0
        for dy in np.atleast_2d(np.asarray(dy_sequence, dtype=float)):
            x_float, u_float = self.reference.step(x_float, dy)
            u_fixed = self.step(dy)
            worst = max(worst, float(np.max(np.abs(u_fixed - u_float))))
        return worst
