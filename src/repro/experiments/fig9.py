"""Figure 9: ExD and execution time of the four two-layer schemes.

Runs the Table IV schemes over the evaluation programs and reports bars
normalized to *Coordinated heuristic*, with SPEC / PARSEC / overall
averages (the SAv / PAv / Avg bars of the paper's figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..workloads import program_names
from .metrics import normalize_to
from .report import render_table
from .runner import run_scheme_matrix
from .schemes import (
    COORDINATED_HEURISTIC,
    DECOUPLED_HEURISTIC,
    YUKTA_HW_SSV_OS_HEUR,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
)

__all__ = ["Fig9Result", "run", "TABLE_IV_SCHEMES"]

TABLE_IV_SCHEMES = [
    COORDINATED_HEURISTIC,
    DECOUPLED_HEURISTIC,
    YUKTA_HW_SSV_OS_HEUR,
    YUKTA_HW_SSV_OS_SSV,
]

QUICK_WORKLOADS = ["mcf", "gamess", "blackscholes", "x264", "streamcluster"]


@dataclass
class Fig9Result:
    """Normalized ExD (a) and execution time (b) per app and scheme."""

    schemes: list
    workloads: list
    exd: dict = field(default_factory=dict)  # app -> {scheme: normalized}
    time: dict = field(default_factory=dict)
    raw: dict = field(default_factory=dict)

    def averages(self, attr="exd"):
        data = getattr(self, attr)
        spec_apps = [w for w in self.workloads if w in program_names("spec")]
        parsec_apps = [w for w in self.workloads if w in program_names("parsec")]
        result = {}
        for label, apps in (("SAv", spec_apps), ("PAv", parsec_apps),
                            ("Avg", self.workloads)):
            if not apps:
                continue
            result[label] = {
                s: float(np.mean([data[a][s] for a in apps])) for s in self.schemes
            }
        return result

    def rows(self, attr="exd"):
        data = getattr(self, attr)
        rows = []
        for app in self.workloads:
            rows.append([app] + [data[app][s] for s in self.schemes])
        for label, values in self.averages(attr).items():
            rows.append([label] + [values[s] for s in self.schemes])
        return rows

    def render(self):
        parts = []
        for attr, label in (("exd", "Figure 9(a): normalized ExD"),
                            ("time", "Figure 9(b): normalized execution time")):
            parts.append(
                render_table(["workload"] + self.schemes, self.rows(attr), label)
            )
        return "\n\n".join(parts)


def run(context: DesignContext = None, quick=True, seed=7,
        jobs=None, batch=None) -> Fig9Result:
    """Regenerate Figure 9.  ``quick`` restricts the workload list.

    ``batch`` packs layered-scheme cells into lockstep board banks
    (bit-identical results; see :func:`run_scheme_matrix`).
    """
    context = context or DesignContext.create()
    workloads = QUICK_WORKLOADS if quick else program_names("evaluation")
    results = run_scheme_matrix(TABLE_IV_SCHEMES, workloads, context, seed=seed,
                                jobs=jobs, batch=batch)
    out = Fig9Result(TABLE_IV_SCHEMES, list(results))
    for app, per_scheme in results.items():
        out.exd[app] = normalize_to(per_scheme, COORDINATED_HEURISTIC, "exd")
        out.time[app] = normalize_to(per_scheme, COORDINATED_HEURISTIC,
                                     "execution_time")
        out.raw[app] = per_scheme
    return out
