"""Figures 10 and 11: blackscholes time series under the four schemes.

Figure 10 plots the big-cluster power versus time (peaks/valleys against
the 3.3 W limit); Figure 11 plots total BIPS versus time and the completion
times.  Both come from the same four runs, so one module produces both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import oscillation_stats
from .report import render_series, render_table
from .runner import run_scheme_matrix
from .schemes import DesignContext
from .fig9 import TABLE_IV_SCHEMES

__all__ = ["Fig1011Result", "run"]


@dataclass
class Fig1011Result:
    """Traces and summary statistics for the four schemes."""

    workload: str
    power_limit: float
    traces: dict = field(default_factory=dict)  # scheme -> trace arrays
    completion: dict = field(default_factory=dict)  # scheme -> seconds
    power_stats: dict = field(default_factory=dict)

    def rows(self):
        rows = []
        for scheme in self.traces:
            stats = self.power_stats[scheme]
            rows.append(
                [
                    scheme,
                    self.completion[scheme],
                    stats["peaks_over_limit"],
                    stats["ripple"],
                    stats["steady_mean"],
                ]
            )
        return rows

    def render(self):
        parts = [
            render_table(
                ["scheme", "completion (s)", "peaks>limit", "power ripple (W)",
                 "steady P_big (W)"],
                self.rows(),
                f"Figures 10/11 summary ({self.workload}, limit "
                f"{self.power_limit} W)",
            )
        ]
        for scheme, trace in self.traces.items():
            parts.append(
                render_series(
                    trace["times"], trace["power_big"],
                    f"Figure 10: P_big(t) under {scheme}",
                )
            )
            parts.append(
                render_series(
                    trace["times"], trace["bips_total"],
                    f"Figure 11: BIPS(t) under {scheme}",
                )
            )
        return "\n\n".join(parts)


def run(context: DesignContext = None, workload="blackscholes", seed=7,
        jobs=None):
    """Regenerate Figures 10 and 11 (``jobs`` fans the four runs out)."""
    context = context or DesignContext.create()
    result = Fig1011Result(workload, context.spec.power_limit_big)
    matrix = run_scheme_matrix(TABLE_IV_SCHEMES, [workload], context,
                               seed=seed, record=True, jobs=jobs)
    per_scheme = next(iter(matrix.values()))
    for scheme in TABLE_IV_SCHEMES:
        metrics = per_scheme[scheme]
        result.traces[scheme] = metrics.trace
        result.completion[scheme] = metrics.execution_time
        result.power_stats[scheme] = oscillation_stats(
            metrics.trace["power_big"], limit=context.spec.power_limit_big
        )
    return result
