"""Run metrics: Energy x Delay, normalization, and trace statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunMetrics", "normalize_to", "oscillation_stats"]


@dataclass
class RunMetrics:
    """Outcome of one application run under one scheme."""

    scheme: str
    workload: str
    execution_time: float  # s
    energy: float  # J
    completed: bool
    trace: dict = field(default_factory=dict)  # arrays from BoardTrace
    notes: dict = field(default_factory=dict)

    @property
    def exd(self):
        """Energy x Delay (J*s)."""
        return self.energy * self.execution_time

    @property
    def ed2(self):
        """Energy x Delay^2 (for completeness)."""
        return self.energy * self.execution_time**2

    def summary(self):
        flag = "" if self.completed else " [TIMEOUT]"
        return (
            f"{self.scheme:28s} {self.workload:16s} t={self.execution_time:7.1f}s "
            f"E={self.energy:8.1f}J ExD={self.exd:10.0f}{flag}"
        )


def normalize_to(metrics_by_scheme, baseline_scheme, attribute="exd"):
    """Normalize a per-scheme metric dict to one scheme (paper convention).

    ``metrics_by_scheme`` maps scheme name -> RunMetrics (or number).
    Returns scheme name -> normalized value.
    """
    def value(m):
        return getattr(m, attribute) if hasattr(m, attribute) else float(m)

    base = value(metrics_by_scheme[baseline_scheme])
    if base <= 0:
        raise ValueError(f"baseline {baseline_scheme!r} has nonpositive {attribute}")
    return {name: value(m) / base for name, m in metrics_by_scheme.items()}


def oscillation_stats(series, limit=None):
    """Peak/valley statistics of a power trace (Fig. 10 commentary).

    Counts excursions above ``limit`` (if given), and measures the ripple
    (std of the detrended series) and the steady-state mean of the last
    half of the run.
    """
    series = np.asarray(series, dtype=float)
    if series.size < 4:
        return {"peaks_over_limit": 0, "ripple": 0.0, "steady_mean": float(series.mean() if series.size else 0.0)}
    over = 0
    if limit is not None:
        above = series > limit
        over = int(np.sum(np.diff(above.astype(int)) == 1))
        if above[0]:
            over += 1
    # Detrend with an edge-normalized moving average to isolate ripple.
    window = max(series.size // 20, 3)
    kernel = np.ones(window)
    smooth = np.convolve(series, kernel, mode="same") / np.convolve(
        np.ones_like(series), kernel, mode="same"
    )
    ripple = float(np.std(series - smooth))
    steady_mean = float(series[series.size // 2 :].mean())
    return {"peaks_over_limit": over, "ripple": ripple, "steady_mean": steady_mean}
