"""Tables I-IV rendered from the code objects that implement them.

Table I is the design-space taxonomy, Tables II/III the layer controller
specifications, and Table IV the scheme registry — each regenerated from
the live objects so the documentation can never drift from the code.
"""

from __future__ import annotations

from ..board import default_xu3_spec
from ..core import TAXONOMY_TABLE, YUKTA_CHOICE, hardware_layer_spec, software_layer_spec
from .report import render_table
from .schemes import SCHEMES, scheme_descriptions

__all__ = ["table1", "table2", "table3", "table4", "render_all"]


def table1():
    """Table I: the space of design choices, with Yukta's picks marked."""
    chosen = {
        "Modeling": YUKTA_CHOICE.modeling.value,
        "Mode": YUKTA_CHOICE.mode.value,
        "Organization": YUKTA_CHOICE.organization.value,
        "Approach": YUKTA_CHOICE.approach.value,
        "Type": YUKTA_CHOICE.controller_type.value,
    }
    rows = []
    for dimension, options in TAXONOMY_TABLE.items():
        marked = [
            f"*{opt}*" if opt == chosen[dimension] else opt for opt in options
        ]
        rows.append([dimension, ", ".join(marked)])
    return render_table(["dimension", "choices (*Yukta's selection*)"], rows,
                        "Table I: space of design choices from control theory")


def _layer_table(spec, title):
    rows = [["goal", spec.goal]]
    for signal in spec.inputs:
        rows.append(["input", signal.describe()])
    for signal in spec.outputs:
        rows.append(["output", signal.describe()])
    for signal in spec.externals:
        rows.append(["external", signal.describe()])
    rows.append(["uncertainty", f"+-{100 * spec.guardband:.0f}%"])
    return render_table(["kind", "description"], rows, title)


def table2(board=None):
    """Table II: the hardware controller parameters."""
    return _layer_table(
        hardware_layer_spec(board or default_xu3_spec()),
        "Table II: hardware controller of the prototype",
    )


def table3(board=None):
    """Table III: the software controller parameters."""
    return _layer_table(
        software_layer_spec(board or default_xu3_spec()),
        "Table III: software controller of the prototype",
    )


def table4():
    """Table IV (+ the Sec. VI-B LQG variants): scheme registry."""
    descriptions = scheme_descriptions()
    rows = [[name, descriptions[name]] for name in SCHEMES]
    return render_table(["scheme", "description"], rows,
                        "Table IV: controller schemes")


def render_all():
    return "\n\n".join([table1(), table2(), table3(), table4()])
