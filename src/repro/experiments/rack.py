"""Rack-scale campaigns: the third layer's evaluation figures.

Three sweeps, in the shape of the paper's board-level figures but one
layer up:

* **cap step response** — a busy rack whose facility cap steps down 30 %
  mid-run; scores each rack controller's settling time, overshoot, and
  cap exposure (the rack analogue of Fig. 10's setpoint tracking);
* **job stream** — a queued job stream with SLA deadlines under each cap
  distributor (SSV, greedy, uniform); rack E×D, makespan, SLA misses,
  and budget churn per controller;
* **fault reallocation** — the same stream with one board dropping
  offline mid-campaign; measures how each controller's reallocation
  absorbs the fault (requeues, misses, completion).

Every cell is a module-level function invoked through the engine's
``("call", ...)`` tasks, so ``--jobs`` fans cells across processes and
``--checkpoint-dir``/``--resume`` journal them exactly like the board
figures.  ``use_bank=False`` (the CLI's ``--batch 0``) swaps every cell
onto the scalar per-board stepping path — bit-identical results, held by
the rack differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rack import (
    HeuristicRackController,
    JobSpec,
    Rack,
    RackBoardFault,
    SSVRackController,
    default_rack_spec,
    heterogeneous_rack_spec,
)
from .report import render_table
from .schemes import DesignContext

__all__ = ["RackResult", "default_job_stream", "make_rack_controller", "run"]

# Deterministic workload rotation for rack job streams.  The @scale
# suffixes shrink the paper's full programs to rack-job length (tens of
# seconds) while keeping their phase structure and relative weight.
STREAM_WORKLOADS = (
    "blackscholes@0.08",
    "mcf@0.1",
    "streamcluster@0.08",
    "x264@0.08",
    "canneal@0.08",
    "bodytrack@0.1",
    "gamess@0.08",
    "gromacs@0.08",
)

CONTROLLERS = ("rack-ssv", "rack-greedy", "rack-uniform")


def default_job_stream(n_jobs=8, spacing=3.0, sla=70.0):
    """A deterministic arrival stream cycling the workload rotation."""
    return tuple(
        JobSpec(
            name=f"job{i}",
            workload=STREAM_WORKLOADS[i % len(STREAM_WORKLOADS)],
            arrival=spacing * i,
            sla=sla,
        )
        for i in range(n_jobs)
    )


def make_rack_controller(name, spec):
    """Instantiate a rack controller by its campaign name."""
    if name == "rack-ssv":
        return SSVRackController(spec)
    if name.startswith("rack-"):
        return HeuristicRackController(spec, mode=name[len("rack-"):])
    raise ValueError(f"unknown rack controller {name!r}")


def _stream_cell(context, controller, n_boards, n_jobs, hetero, use_bank,
                 seed, max_time, fault_board=None, fault_time=None,
                 fault_duration=None):
    """Engine task: one job-stream campaign, summarized as a plain dict."""
    from ..obs import analyze_rack

    jobs = default_job_stream(n_jobs=n_jobs)
    faults = ()
    if fault_board is not None:
        faults = (RackBoardFault(board=fault_board, start=fault_time,
                                 duration=fault_duration, kind="offline"),)
    factory = heterogeneous_rack_spec if hetero else default_rack_spec
    spec = factory(n_boards=n_boards, jobs=jobs, faults=faults)
    rack = Rack(spec, controller=make_rack_controller(controller, spec),
                use_bank=use_bank, record=True, seed=seed)
    result = rack.run(max_time=max_time)
    quality = analyze_rack(result, spec=spec)
    return {
        "controller": result.controller,
        "completed": result.jobs_completed,
        "admitted": result.jobs_admitted,
        "sla_misses": result.sla_misses,
        "requeues": result.requeues,
        "energy": result.energy,
        "makespan": result.makespan,
        "exd": result.exd,
        "churn": quality.budget_churn_per_period,
        "cap_violation_ws": quality.cap_exposure.integral,
        "cap_time_above": quality.cap_exposure.time_above,
        "inlet_peak": quality.inlet_peak,
    }


def _step_cell(context, controller, n_boards, use_bank, seed, step_time,
               step_fraction, max_time):
    """Engine task: cap step response of one rack controller."""
    from ..obs import analyze_rack

    # Saturate the rack: one long job per board from t=0 plus backlog, so
    # the cap binds before and after the step.
    jobs = tuple(
        JobSpec(name=f"load{i}", workload="blackscholes@0.5",
                arrival=0.0, sla=10 * max_time)
        for i in range(n_boards + 2)
    )
    spec = default_rack_spec(n_boards=n_boards, jobs=jobs)
    schedule = [(0.0, spec.power_cap),
                (step_time, step_fraction * spec.power_cap)]
    rack = Rack(spec, controller=make_rack_controller(controller, spec),
                use_bank=use_bank, record=True, seed=seed)
    result = rack.run(max_time=max_time, cap_schedule=schedule)
    quality = analyze_rack(result, spec=spec, step_time=step_time)
    resp = next(r for r in quality.responses if r.signal == "budget_total")
    return {
        "controller": result.controller,
        "settling": resp.settling_time,
        "settled": resp.settled,
        "overshoot": resp.overshoot_pct,
        "final_power": resp.final,
        "stepped_cap": step_fraction * spec.power_cap,
        "cap_violation_ws": quality.cap_exposure.integral,
        "cap_time_above": quality.cap_exposure.time_above,
        "churn": quality.budget_churn_per_period,
        "energy": result.energy,
    }


@dataclass
class RackResult:
    """Rendered outcome of the rack campaign triple."""

    step_rows: list = field(default_factory=list)
    stream_rows: list = field(default_factory=list)
    fault_rows: list = field(default_factory=list)
    n_boards: int = 4

    def rows(self):
        return list(self.stream_rows)

    def by_controller(self, rows, name):
        for row in rows:
            if row["controller"] == name:
                return row
        raise KeyError(name)

    def render(self):
        sections = []
        if self.step_rows:
            sections.append(render_table(
                ["controller", "settling (s)", "overshoot %",
                 "cap exposure (W·s)", "time above (s)",
                 "churn (W/period)"],
                [
                    [r["controller"],
                     r["settling"] if r["settled"] else float("inf"),
                     r["overshoot"], r["cap_violation_ws"],
                     r["cap_time_above"], r["churn"]]
                    for r in self.step_rows
                ],
                f"Rack cap step response ({self.n_boards} boards, "
                "cap -30% mid-run)",
            ))
        if self.stream_rows:
            sections.append(render_table(
                ["controller", "jobs", "SLA misses", "energy (J)",
                 "makespan (s)", "ExD (J·s)", "churn (W/period)"],
                [
                    [r["controller"], f'{r["completed"]}/{r["admitted"]}',
                     r["sla_misses"], r["energy"], r["makespan"], r["exd"],
                     r["churn"]]
                    for r in self.stream_rows
                ],
                "Rack job stream: SSV distribution vs heuristics "
                f"({self.n_boards} heterogeneous boards)",
            ))
        if self.fault_rows:
            sections.append(render_table(
                ["controller", "jobs", "SLA misses", "requeues",
                 "makespan (s)", "ExD (J·s)"],
                [
                    [r["controller"], f'{r["completed"]}/{r["admitted"]}',
                     r["sla_misses"], r["requeues"], r["makespan"], r["exd"]]
                    for r in self.fault_rows
                ],
                "Rack fault reallocation: board 1 offline mid-stream",
            ))
        return "\n\n".join(sections)


def run(context: DesignContext = None, quick=True, seed=7, jobs=None,
        batch=None, n_boards=4, progress=None):
    """The rack campaign triple (``jobs`` fans cells across processes).

    ``batch=0`` swaps every campaign onto the scalar per-board stepping
    path (no :class:`~repro.board.bank.BoardBank`); any other value keeps
    the bank's fused schedule kernel underneath.  Results are
    bit-identical either way — that equivalence is exactly what
    ``repro verify``'s rack oracle enforces.
    """
    from .engine import parallel_map

    use_bank = not (batch is not None and int(batch) == 0)
    n_jobs = 6 if quick else 12
    max_time = 300.0 if quick else 600.0
    step_time = 20.0
    step_max_time = 80.0 if quick else 160.0

    tasks = []
    for controller in ("rack-ssv", "rack-greedy"):
        tasks.append(("call", (_step_cell, (controller, n_boards, use_bank,
                                            seed, step_time, 0.7,
                                            step_max_time), {})))
    for controller in CONTROLLERS:
        tasks.append(("call", (_stream_cell, (controller, n_boards, n_jobs,
                                              True, use_bank, seed,
                                              max_time), {})))
    for controller in ("rack-ssv", "rack-greedy"):
        tasks.append(("call", (_stream_cell, (controller, n_boards, n_jobs,
                                              True, use_bank, seed,
                                              max_time),
                      dict(fault_board=1, fault_time=10.0,
                           fault_duration=12.0))))

    results = parallel_map(tasks, context, jobs=jobs, prime=())
    it = iter(results)
    result = RackResult(n_boards=n_boards)
    for _ in range(2):
        result.step_rows.append(next(it))
    for _ in CONTROLLERS:
        result.stream_rows.append(next(it))
    for _ in range(2):
        result.fault_rows.append(next(it))
    if progress is not None:
        for row in result.step_rows:
            progress(f"step {row['controller']}: settled "
                     f"{row['settling']:.1f}s")
    return result
