"""Coordination-channel ablation: what do the external signals buy?

The external signals are the paper's coordination mechanism (Sec. III-B).
This ablation runs the full *Yukta: HW SSV + OS SSV* scheme twice on each
workload — once with the cross-layer external signals wired normally, and
once with each controller's externals frozen at their design midpoints
(the controllers are otherwise identical) — and reports the ExD and
control-quality cost of severing the channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..board import Board
from ..core import MultilayerCoordinator
from .metrics import RunMetrics, oscillation_stats
from .report import render_table
from .runner import instantiate_workload
from .schemes import YUKTA_HW_SSV_OS_SSV, DesignContext, build_session

__all__ = ["AblationResult", "run", "FrozenExternalsController"]


class FrozenExternalsController:
    """Wrap a runtime controller, replacing its externals with constants.

    The wrapped controller still *has* external-signal inputs (it was
    synthesized with them); it simply receives their design midpoints every
    period — information-free coordination.
    """

    def __init__(self, inner):
        self.inner = inner
        self._frozen = (
            inner.external_offsets.copy()
            if getattr(inner, "external_offsets", None) is not None
            else None
        )

    @property
    def targets(self):
        return self.inner.targets

    @property
    def guardband_exhausted(self):
        return getattr(self.inner, "guardband_exhausted", False)

    @guardband_exhausted.setter
    def guardband_exhausted(self, value):
        self.inner.guardband_exhausted = value

    def set_targets(self, targets):
        self.inner.set_targets(targets)

    def reset(self):
        self.inner.reset()

    def step(self, outputs, externals):
        frozen = self._frozen if self._frozen is not None else externals
        return self.inner.step(outputs, frozen)


@dataclass
class AblationResult:
    workloads: list
    exd_ratio: dict = field(default_factory=dict)  # frozen / coordinated
    ripple_ratio: dict = field(default_factory=dict)

    def rows(self):
        rows = [
            [w, self.exd_ratio[w], self.ripple_ratio[w]] for w in self.workloads
        ]
        rows.append([
            "mean",
            float(np.mean(list(self.exd_ratio.values()))),
            float(np.mean(list(self.ripple_ratio.values()))),
        ])
        return rows

    def render(self):
        return render_table(
            ["workload", "ExD (frozen/coordinated)",
             "power ripple (frozen/coordinated)"],
            self.rows(),
            "Ablation: severing the external-signal coordination channel",
        )


def _run(context, workload, freeze, seed, max_time=600.0):
    session = build_session(YUKTA_HW_SSV_OS_SSV, context)
    hw, sw = session.hw_controller, session.sw_controller
    if freeze:
        hw = FrozenExternalsController(hw)
        sw = FrozenExternalsController(sw)
    coordinator = MultilayerCoordinator(
        hw, sw, session.hw_optimizer, session.sw_optimizer
    )
    board = Board(instantiate_workload(workload), spec=context.spec, seed=seed)
    period_steps = context.spec.period_steps()
    while not board.done and board.time < max_time:
        board.run_period(period_steps)
        if board.done:
            break
        coordinator.control_step(board, period_steps)
    trace = board.trace.as_arrays()
    return RunMetrics(
        scheme="frozen" if freeze else "coordinated",
        workload=str(workload),
        execution_time=board.time,
        energy=board.energy,
        completed=board.done,
        trace=trace,
    )


def run(context: DesignContext = None,
        workloads=("blackscholes", "gamess", "x264"), seed=7,
        jobs=None) -> AblationResult:
    """Run the coordinated/frozen pair on each workload."""
    from .engine import parallel_map

    context = context or DesignContext.create()
    result = AblationResult(list(workloads))
    tasks = [
        ("call", (_run, (workload,), {"freeze": freeze, "seed": seed}))
        for workload in workloads
        for freeze in (False, True)
    ]
    flat = parallel_map(tasks, context, jobs=jobs)
    it = iter(flat)
    for workload in workloads:
        coordinated, frozen = next(it), next(it)
        result.exd_ratio[workload] = frozen.exd / coordinated.exd
        ripple_c = oscillation_stats(coordinated.trace["power_big"])["ripple"]
        ripple_f = oscillation_stats(frozen.trace["power_big"])["ripple"]
        result.ripple_ratio[workload] = ripple_f / max(ripple_c, 1e-9)
    return result
