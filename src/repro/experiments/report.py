"""Plain-text rendering of experiment results (tables and bar charts).

The paper's figures are bar charts and time series; the harness renders the
same content as aligned text so every table/figure can be regenerated and
eyeballed from a terminal or CI log.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_table", "render_bars", "render_series", "format_float"]


def format_float(value, width=8, precision=2):
    if value is None:
        return " " * (width - 1) + "-"
    return f"{value:{width}.{precision}f}"


def render_table(headers, rows, title=None):
    """Render an aligned text table; cells may be strings or numbers."""
    text_rows = []
    for row in rows:
        text_rows.append(
            [cell if isinstance(cell, str) else format_float(cell).strip()
             for cell in row]
        )
    widths = [len(str(h)) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(labels, values, title=None, width=50, reference=1.0):
    """Horizontal ASCII bar chart (the Fig. 9/12/14 normalized-bar style)."""
    values = [float(v) for v in values]
    peak = max(max(values), reference, 1e-12)
    lines = []
    if title:
        lines.append(title)
    label_width = max(len(str(l)) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 1)
        lines.append(f"{str(label).ljust(label_width)} |{bar} {value:.2f}")
    if reference is not None:
        ref_col = int(round(width * reference / peak))
        lines.append(f"{' ' * label_width} |{' ' * ref_col}^ baseline = {reference}")
    return "\n".join(lines)


def render_series(times, values, title=None, width=64, height=12):
    """Down-sampled ASCII time-series plot (the Fig. 10/11/15/17 style)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return (title or "") + "\n(empty series)"
    # Downsample to the plot width by averaging buckets.
    edges = np.linspace(times[0], times[-1], width + 1)
    sampled = np.full(width, np.nan)
    for i in range(width):
        mask = (times >= edges[i]) & (times < edges[i + 1])
        if np.any(mask):
            sampled[i] = values[mask].mean()
    finite = sampled[np.isfinite(sampled)]
    low, high = float(finite.min()), float(finite.max())
    if high - low < 1e-12:
        high = low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, v in enumerate(sampled):
        if not np.isfinite(v):
            continue
        row = int((v - low) / (high - low) * (height - 1))
        grid[height - 1 - row][i] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:10.2f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{low:10.2f} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"t = {times[0]:.0f}s".ljust(width // 2)
        + f"t = {times[-1]:.0f}s".rjust(width // 2)
    )
    return "\n".join(lines)
