"""Resilience sweep: fault matrix × schemes under the safe-mode supervisor.

For each controller scheme the experiment first runs fault-free under the
:class:`~repro.core.supervisor.Supervisor` (a false-positive guard and the
ExD reference), then replays every campaign of the fault matrix
(:func:`repro.faults.default_fault_matrix`) and reports, per (fault,
scheme) cell:

* whether the supervisor detected the fault and the detection latency in
  control periods from fault onset;
* time spent in DEGRADED mode and whether the primary controllers were
  re-promoted to NOMINAL (expected for transient faults);
* safety-violation time — seconds with the *true* die temperature above
  the 79 degC limit or big-cluster power above 3.3 W;
* the ExD penalty relative to the scheme's fault-free supervised run.

The monolithic LQG scheme is excluded: the supervisor swaps whole layer
pairs and has nothing to degrade a single fused controller *to*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..board import BIG, Board
from ..core import MultilayerCoordinator, Supervisor, SupervisorConfig
from ..faults import FaultInjector, default_fault_matrix
from ..telemetry.tracing import NULL_SPAN
from .report import render_table
from .runner import instantiate_workload
from .schemes import (
    COORDINATED_HEURISTIC,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
    build_session,
)

__all__ = ["ResilienceRow", "ResilienceResult", "run", "supervised_run",
           "supervised_runs_banked"]

DEFAULT_SCHEMES = (YUKTA_HW_SSV_OS_SSV, COORDINATED_HEURISTIC)


@dataclass
class ResilienceRow:
    """One (fault, scheme) cell of the sweep."""

    fault: str
    scheme: str
    detected: bool
    detect_latency: int  # control periods from fault onset (-1 if undetected)
    degraded_time: float  # s in DEGRADED mode
    recovered: bool  # re-promoted to NOMINAL after the trip
    temp_violation_time: float  # s with true temperature > temp_limit
    power_violation_time: float  # s with big power > power_limit_big
    exd_penalty_pct: float  # vs the scheme's fault-free supervised run

    def cells(self):
        return [
            self.fault,
            self.scheme,
            "yes" if self.detected else "no",
            self.detect_latency if self.detected else "-",
            f"{self.degraded_time:.1f}",
            "yes" if self.recovered else "no",
            f"{self.temp_violation_time:.1f}",
            f"{self.power_violation_time:.1f}",
            f"{self.exd_penalty_pct:+.1f}",
        ]


@dataclass
class ResilienceResult:
    rows: list
    baselines: dict  # scheme -> {"exd": float, "false_trip": bool}
    failures: list = field(default_factory=list)  # CellFailure salvage

    HEADERS = [
        "fault",
        "scheme",
        "det",
        "lat (per)",
        "degr (s)",
        "rec",
        ">79C (s)",
        ">3.3W (s)",
        "dExD (%)",
    ]

    def render(self):
        lines = [
            render_table(
                self.HEADERS,
                [row.cells() for row in self.rows],
                "Fault resilience under the safe-mode supervisor",
            )
        ]
        for scheme, base in self.baselines.items():
            guard = "TRIPPED (false positive!)" if base["false_trip"] else "no trip"
            lines.append(
                f"fault-free {scheme}: ExD={base['exd']:.0f} J*s, supervisor {guard}"
            )
        for failure in self.failures:
            lines.append(f"FAILED {failure.describe()}")
        return "\n".join(lines)

    def row(self, fault, scheme):
        for r in self.rows:
            if r.fault == fault and r.scheme == scheme:
                return r
        raise KeyError((fault, scheme))


@dataclass
class SupervisedRun:
    """Raw outcome of one supervised run (used by tests and the sweep)."""

    supervisor: Supervisor
    exd: float
    completed: bool
    temp_violation_time: float
    power_violation_time: float
    fault_onset: float


def supervised_run(context, scheme, campaign=None, workload="gamess",
                   max_time=200.0, seed=11, config: SupervisorConfig = None,
                   telemetry=None):
    """Run one workload under one scheme, supervised, with optional faults.

    The board gets its own shallow spec copy so plant-parameter faults
    (capacitance aging mutates ``spec.big``) cannot leak into the shared
    :class:`DesignContext` across runs.  ``telemetry`` defaults to the
    process-wide session; when enabled, supervisor transitions and fault
    edges trigger flight-recorder dumps.
    """
    from ..telemetry import active_session

    tel = telemetry if telemetry is not None else active_session()
    spec = replace(context.spec)
    session = build_session(scheme, context)
    if session.monolithic is not None:
        raise ValueError(
            "the supervisor requires a layered scheme; "
            "monolithic-lqg has no layer pair to degrade to"
        )
    primary = MultilayerCoordinator(
        session.hw_controller,
        session.sw_controller,
        session.hw_optimizer,
        session.sw_optimizer,
        telemetry=tel,
    )
    supervisor = Supervisor(primary, spec, config=config, telemetry=tel)
    board = Board(instantiate_workload(workload), spec=spec, seed=seed,
                  record=False, telemetry=tel)
    injector = (FaultInjector(board, campaign, seed=seed, telemetry=tel)
                if campaign else None)
    period_steps = spec.period_steps()
    temp_violation = 0.0
    power_violation = 0.0
    while not board.done and board.time < max_time:
        if tel is not None:
            tel.begin_period(board.time)
            sim_span = tel.span("sim", cat="period", board_time=board.time)
        else:
            sim_span = NULL_SPAN
        with sim_span:
            # Per-tick supervision bookkeeping (injector phases, violation
            # clocks) needs the scalar loop; run_period would skip it.
            for _ in range(period_steps):
                board.step()
                if injector is not None:
                    injector.advance()
                if board.thermal.temperature > spec.temp_limit:
                    temp_violation += spec.sim_dt
                if board._instant_power[BIG] > spec.power_limit_big:
                    power_violation += spec.sim_dt
                if board.done:
                    break
        if board.done:
            break
        supervisor.control_step(board, period_steps)
    onset = campaign.first_onset() if campaign is not None else None
    return SupervisedRun(
        supervisor=supervisor,
        exd=board.energy * board.time,
        completed=board.done,
        temp_violation_time=temp_violation,
        power_violation_time=power_violation,
        fault_onset=onset if onset is not None else -1.0,
    )


def supervised_runs_banked(context, scheme, campaigns, workload="gamess",
                           max_time=200.0, seed=11,
                           config: SupervisorConfig = None, telemetry=None):
    """Run one scheme's campaign replicas as a lockstep board bank.

    ``campaigns`` is a list whose entries are fault campaigns or ``None``
    (the fault-free baseline); every entry becomes one board of a
    :class:`~repro.board.bank.BoardBank`.  Faulted replicas register
    their injector as a per-tick hook, which pins them to the bank's
    scalar path (the same per-tick loop :func:`supervised_run` drives);
    fault-free replicas ride the vectorized lockstep kernel with the
    bank's violation clocks.  Either way each replica sees the exact
    per-tick and per-period sequence of its solo run, so the returned
    :class:`SupervisedRun` list is bit-identical to calling
    :func:`supervised_run` once per campaign.
    """
    from ..board.bank import BoardBank
    from ..telemetry import active_session

    tel = telemetry if telemetry is not None else active_session()
    boards = []
    supervisors = []
    onsets = []
    period_steps = context.spec.period_steps()
    bank_entries = []
    for campaign in campaigns:
        spec = replace(context.spec)
        session = build_session(scheme, context)
        if session.monolithic is not None:
            raise ValueError(
                "the supervisor requires a layered scheme; "
                "monolithic-lqg has no layer pair to degrade to"
            )
        primary = MultilayerCoordinator(
            session.hw_controller,
            session.sw_controller,
            session.hw_optimizer,
            session.sw_optimizer,
            telemetry=tel,
        )
        supervisor = Supervisor(primary, spec, config=config, telemetry=tel)
        board = Board(instantiate_workload(workload), spec=spec, seed=seed,
                      record=False, telemetry=tel)
        injector = (FaultInjector(board, campaign, seed=seed, telemetry=tel)
                    if campaign else None)
        boards.append(board)
        supervisors.append(supervisor)
        onsets.append(campaign.first_onset() if campaign is not None else None)
        bank_entries.append(injector)
    bank = BoardBank(boards, telemetry=tel, track_violations=True)
    for i, injector in enumerate(bank_entries):
        if injector is not None:
            bank.set_tick_hook(i, lambda board, inj=injector: inj.advance())
    active = [i for i, b in enumerate(boards)
              if not b.done and b.time < max_time]
    while active:
        if tel is not None:
            tel.begin_period(boards[active[0]].time)
        bank.run_period_bank(period_steps, only=active)
        survivors = []
        for i in active:
            board = boards[i]
            if board.done:
                continue
            supervisors[i].control_step(board, period_steps)
            if not board.done and board.time < max_time:
                survivors.append(i)
        active = survivors
    return [
        SupervisedRun(
            supervisor=supervisors[i],
            exd=boards[i].energy * boards[i].time,
            completed=boards[i].done,
            temp_violation_time=float(bank.temp_violation_time[i]),
            power_violation_time=float(bank.power_violation_time[i]),
            fault_onset=onsets[i] if onsets[i] is not None else -1.0,
        )
        for i in range(len(campaigns))
    ]


def _latency_periods(detection_time, fault_onset, spec):
    if detection_time is None or fault_onset < 0:
        return -1
    return max(
        0, int(round((detection_time - fault_onset) / spec.control_period))
    )


def _fault_cell(context, scheme, fault_index, fault_time, quick, workload,
                max_time, seed, config):
    """Engine task: one supervised run, summarized as a plain dict.

    ``fault_index`` < 0 is the fault-free baseline.  The fault matrix is
    rebuilt in the worker from its parameters (campaign objects carry
    mutable per-run state, so shipping indices keeps cells independent),
    and only picklable scalars travel back.
    """
    campaign = None
    if fault_index >= 0:
        campaign = default_fault_matrix(fault_time=fault_time,
                                        quick=quick)[fault_index][1]
    result = supervised_run(context, scheme, campaign=campaign,
                            workload=workload, max_time=max_time, seed=seed,
                            config=config)
    return {
        "exd": result.exd,
        "completed": result.completed,
        "tripped": result.supervisor.tripped,
        "detection_time": result.supervisor.detection_time,
        "time_degraded": result.supervisor.time_degraded,
        "recovered": result.supervisor.recovered,
        "temp_violation_time": result.temp_violation_time,
        "power_violation_time": result.power_violation_time,
        "fault_onset": result.fault_onset,
    }


def _scheme_bank_cell(context, scheme, fault_time, quick, workload, max_time,
                      seed, config):
    """Engine task: one scheme's baseline + full fault matrix as one bank."""
    matrix = default_fault_matrix(fault_time=fault_time, quick=quick)
    campaigns = [None] + [campaign for _, campaign in matrix]
    results = supervised_runs_banked(context, scheme, campaigns,
                                     workload=workload, max_time=max_time,
                                     seed=seed, config=config)
    return [
        {
            "exd": result.exd,
            "completed": result.completed,
            "tripped": result.supervisor.tripped,
            "detection_time": result.supervisor.detection_time,
            "time_degraded": result.supervisor.time_degraded,
            "recovered": result.supervisor.recovered,
            "temp_violation_time": result.temp_violation_time,
            "power_violation_time": result.power_violation_time,
            "fault_onset": result.fault_onset,
        }
        for result in results
    ]


def run(context: DesignContext = None, schemes=DEFAULT_SCHEMES,
        workload="gamess", fault_time=60.0, max_time=200.0, seed=11,
        quick=False, config: SupervisorConfig = None, progress=None,
        jobs=None, batch=False):
    """The full fault-matrix × scheme sweep (``jobs`` fans the cells out).

    ``batch`` packs each scheme's replicas — the fault-free baseline plus
    every fault campaign — into one lockstep
    :class:`~repro.board.bank.BoardBank` per engine task instead of one
    task per (fault, scheme) cell; rows are bit-identical either way
    (:func:`supervised_runs_banked`).
    """
    from .engine import parallel_map

    context = context or DesignContext.create()
    matrix = default_fault_matrix(fault_time=fault_time, quick=quick)
    fault_names = [name for name, _ in matrix]
    if batch:
        tasks = [
            ("call", (_scheme_bank_cell, (scheme, fault_time, quick,
                                          workload, max_time, seed, config),
                      {}))
            for scheme in schemes
        ]
        from ..runtime import CellFailure

        flat = []
        for group in parallel_map(tasks, context, jobs=jobs):
            if isinstance(group, CellFailure):
                # The whole bank task failed; every replica it carried
                # (baseline + one per fault) surfaces as that failure.
                flat.extend([group] * (len(matrix) + 1))
            else:
                flat.extend(group)
    else:
        tasks = [
            ("call", (_fault_cell, (scheme, index, fault_time, quick,
                                    workload, max_time, seed, config), {}))
            for scheme in schemes
            for index in range(-1, len(matrix))
        ]
        flat = parallel_map(tasks, context, jobs=jobs)
    from ..runtime import CellFailure

    it = iter(flat)
    baselines = {}
    rows = []
    failures = []
    for scheme in schemes:
        base = next(it)
        if isinstance(base, CellFailure):
            # No baseline means no penalty reference: salvage what the
            # sweep produced and record every cell of this scheme that
            # also failed.
            failures.append(base)
            for _ in fault_names:
                cell = next(it)
                if isinstance(cell, CellFailure):
                    failures.append(cell)
            if progress is not None:
                progress(f"{scheme} fault-free: FAILED ({base.reason})")
            continue
        baselines[scheme] = {
            "exd": base["exd"],
            "false_trip": base["tripped"],
        }
        if progress is not None:
            progress(f"{scheme} fault-free: ExD={base['exd']:.0f}")
        for fault_name in fault_names:
            cell = next(it)
            if isinstance(cell, CellFailure):
                failures.append(cell)
                if progress is not None:
                    progress(f"{scheme} / {fault_name}: FAILED "
                             f"({cell.reason})")
                continue
            penalty = 100.0 * (cell["exd"] - base["exd"]) / base["exd"]
            row = ResilienceRow(
                fault=fault_name,
                scheme=scheme,
                detected=cell["tripped"],
                detect_latency=_latency_periods(
                    cell["detection_time"], cell["fault_onset"], context.spec
                ),
                degraded_time=cell["time_degraded"],
                recovered=cell["recovered"],
                temp_violation_time=cell["temp_violation_time"],
                power_violation_time=cell["power_violation_time"],
                exd_penalty_pct=penalty,
            )
            rows.append(row)
            if progress is not None:
                progress(f"{scheme} / {fault_name}: " + " ".join(map(str, row.cells()[2:])))
    return ResilienceResult(rows=rows, baselines=baselines,
                            failures=failures)
