"""Gain-scheduling ablation: Table I's road not taken, measured.

The paper picks Robust control over Gain Scheduling, arguing the latter
"requires additional modeling efforts and expensive selection logic at
runtime".  This experiment quantifies that choice on the simulator: the
single pooled-model Yukta (robust) versus a two-class gain-scheduled
variant (separate compute-/memory-class characterizations and controller
pairs with a hysteretic utilization-based selector), both normalized to the
coordinated-heuristic baseline.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..board import Board
from ..core import MultilayerCoordinator
from .report import render_table
from .runner import instantiate_workload, run_workload
from .schemes import (
    COORDINATED_HEURISTIC,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
)

__all__ = ["SchedulingResult", "run"]


@dataclass
class SchedulingResult:
    workloads: list
    single: dict = field(default_factory=dict)  # normalized ExD
    scheduled: dict = field(default_factory=dict)
    switches: dict = field(default_factory=dict)

    def rows(self):
        rows = [
            [w, self.single[w], self.scheduled[w], self.switches[w]]
            for w in self.workloads
        ]
        rows.append([
            "mean",
            float(np.mean(list(self.single.values()))),
            float(np.mean(list(self.scheduled.values()))),
            float(np.mean(list(self.switches.values()))),
        ])
        return rows

    def render(self):
        return render_table(
            ["workload", "robust (single model)", "gain-scheduled",
             "selector switches"],
            self.rows(),
            "Table I ablation: Robust vs Gain Scheduling "
            "(normalized ExD, lower is better)",
        )


def _run_scheduled(context, gs_design, workload, seed=7, max_time=600.0):
    hw = copy.deepcopy(gs_design.hw_controller)
    sw = copy.deepcopy(gs_design.sw_controller)
    hw.reset()
    sw.reset()
    coordinator = MultilayerCoordinator(
        hw, sw, context.hw_optimizer(), context.sw_optimizer()
    )
    board = Board(instantiate_workload(workload), spec=context.spec, seed=seed,
                  record=False)
    period_steps = context.spec.period_steps()
    while not board.done and board.time < max_time:
        for _ in range(period_steps):
            board.step()
            if board.done:
                break
        if board.done:
            break
        coordinator.control_step(board, period_steps)
    return board.energy * board.time, hw.switches


def run(context: DesignContext = None,
        workloads=("mcf", "streamcluster", "gamess", "blackscholes"),
        seed=7, samples_per_program=160) -> SchedulingResult:
    """Regenerate the scheduling ablation."""
    from ..extensions import design_gain_scheduled_layers

    context = context or DesignContext.create()
    gs_design = design_gain_scheduled_layers(
        context.spec, samples_per_program=samples_per_program
    )
    result = SchedulingResult(list(workloads))
    for workload in workloads:
        base = run_workload(COORDINATED_HEURISTIC, workload, context,
                            seed=seed, record=False)
        single = run_workload(YUKTA_HW_SSV_OS_SSV, workload, context,
                              seed=seed, record=False)
        scheduled_exd, switches = _run_scheduled(context, gs_design, workload,
                                                 seed=seed)
        result.single[workload] = single.exd / base.exd
        result.scheduled[workload] = scheduled_exd / base.exd
        result.switches[workload] = float(switches)
    return result
