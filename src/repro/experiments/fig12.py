"""Figures 12 and 13: comparison against LQG-based designs.

ExD (Fig. 12) and execution time (Fig. 13) of Coordinated heuristic,
Decoupled HW LQG + OS LQG, Monolithic LQG, and Yukta HW SSV + OS SSV —
normalized to the heuristic baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..workloads import program_names
from .metrics import normalize_to
from .report import render_table
from .runner import run_scheme_matrix
from .schemes import (
    COORDINATED_HEURISTIC,
    DECOUPLED_LQG,
    MONOLITHIC_LQG,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
)

__all__ = ["Fig1213Result", "run", "LQG_COMPARISON_SCHEMES"]

LQG_COMPARISON_SCHEMES = [
    COORDINATED_HEURISTIC,
    DECOUPLED_LQG,
    MONOLITHIC_LQG,
    YUKTA_HW_SSV_OS_SSV,
]

QUICK_WORKLOADS = ["mcf", "gamess", "blackscholes", "bodytrack", "x264"]


@dataclass
class Fig1213Result:
    schemes: list
    workloads: list
    exd: dict = field(default_factory=dict)
    time: dict = field(default_factory=dict)

    def averages(self, attr="exd"):
        data = getattr(self, attr)
        return {
            s: float(np.mean([data[a][s] for a in self.workloads]))
            for s in self.schemes
        }

    def rows(self, attr="exd"):
        data = getattr(self, attr)
        rows = [[a] + [data[a][s] for s in self.schemes] for a in self.workloads]
        avg = self.averages(attr)
        rows.append(["Avg"] + [avg[s] for s in self.schemes])
        return rows

    def render(self):
        parts = [
            render_table(["workload"] + self.schemes, self.rows("exd"),
                         "Figure 12: normalized ExD vs LQG designs"),
            render_table(["workload"] + self.schemes, self.rows("time"),
                         "Figure 13: normalized execution time vs LQG designs"),
        ]
        return "\n\n".join(parts)


def run(context: DesignContext = None, quick=True, seed=7,
        jobs=None) -> Fig1213Result:
    context = context or DesignContext.create()
    workloads = QUICK_WORKLOADS if quick else program_names("evaluation")
    results = run_scheme_matrix(LQG_COMPARISON_SCHEMES, workloads, context,
                                seed=seed, jobs=jobs)
    out = Fig1213Result(LQG_COMPARISON_SCHEMES, list(results))
    for app, per_scheme in results.items():
        out.exd[app] = normalize_to(per_scheme, COORDINATED_HEURISTIC, "exd")
        out.time[app] = normalize_to(per_scheme, COORDINATED_HEURISTIC,
                                     "execution_time")
    return out
