"""Parallel experiment engine: fan the evaluation matrix across processes.

The paper's evaluation is embarrassingly parallel — every (scheme ×
workload × seed) cell is an independent closed-loop simulation — but each
cell takes seconds, and the full matrix is hundreds of cells.  This module
fans cells across a :class:`concurrent.futures.ProcessPoolExecutor` while
keeping the three properties the serial harness guarantees:

* **Determinism** — the fully-primed :class:`DesignContext` is pickled once
  and shipped to every worker (workers never re-synthesize), and each cell
  carries its own explicit seed, so a parallel run is *bit-identical* to
  the serial run of the same cells.
* **Ordered collection** — results are reassembled in task-submission
  order regardless of completion order; callers see the same shapes the
  serial loops produce.
* **Telemetry** — each worker process activates its own
  :class:`~repro.telemetry.TelemetrySession` under
  ``<telemetry_dir>/worker-<pid>/``; on join the per-worker directories
  are merged into one coherent parent directory
  (:func:`repro.telemetry.merge_worker_dirs`).

``jobs=None`` or ``jobs=1`` short-circuits to a plain in-process loop, so
every caller can expose a ``--jobs`` knob without special-casing.

Fault tolerance (``repro.runtime``) layers on top without disturbing the
fast path: ``checkpoint``/``resume`` journal completed cells and replay
them on restart; ``cell_timeout``/``max_retries``/``chaos`` route the run
through the supervised worker pool
(:func:`repro.runtime.executor.supervised_map`); ``on_error="collect"``
turns a cell that ultimately fails into a structured
:class:`~repro.runtime.executor.CellFailure` in its result slot instead of
an exception that discards every completed sibling.  Unset knobs fall back
to the process-wide :class:`~repro.runtime.policy.ExecutionPolicy`
installed by the CLI (``--resume``, ``--cell-timeout``, ...).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..telemetry import TelemetrySession, activate, active_session
from .runner import run_workload, workload_name
from .schemes import prime_designs

__all__ = ["parallel_map", "run_matrix", "resolve_jobs", "execute_task"]

# Worker-process globals, set once by _init_worker.
_WORKER_CONTEXT = None
_WORKER_SESSION = None


def resolve_jobs(jobs):
    """Normalize a ``--jobs`` value: None/0 → serial, -1 → cpu count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= -1:
        return max(os.cpu_count() or 1, 1)
    return max(jobs, 1)


def _close_worker_session():
    global _WORKER_SESSION
    if _WORKER_SESSION is not None:
        _WORKER_SESSION.close()
        _WORKER_SESSION = None


def _init_worker(context_blob, telemetry_dir):
    """Per-process initializer: install the shared context + telemetry."""
    global _WORKER_CONTEXT, _WORKER_SESSION
    _WORKER_CONTEXT = pickle.loads(context_blob)
    if telemetry_dir is not None:
        out = os.path.join(telemetry_dir, f"worker-{os.getpid()}")
        _WORKER_SESSION = activate(TelemetrySession(out))
        # multiprocessing children exit via os._exit (atexit never runs),
        # so register on multiprocessing's own finalizer list as a backstop;
        # _run_cell also flushes after every task.
        from multiprocessing.util import Finalize

        Finalize(None, _close_worker_session, exitpriority=0)


def execute_task(context, task):
    """Execute one generic engine task against ``context``, in-process.

    ``task`` is ``(kind, payload)``: ``("cell", ...)`` runs one
    (scheme, workload) pair via :func:`run_workload`; ``("call", ...)``
    invokes an arbitrary module-level function with ``context`` prepended
    (used by the figure sweeps and the bank packer, whose cells are not
    plain run_workload calls).  This is the single execution semantics
    every runner shares — the serial loop, the worker pools, and the
    control-plane service (:mod:`repro.serve`) all route through it, which
    is what makes their results bit-identical.
    """
    kind, payload = task
    if kind == "cell":
        scheme, workload, seed, max_time, record = payload
        return run_workload(scheme, workload, context, seed=seed,
                            max_time=max_time, record=record)
    if kind == "call":
        fn, args, kwargs = payload
        return fn(context, *args, **kwargs)
    raise ValueError(f"unknown task kind {kind!r}")


def _run_cell(task):
    """Worker-side execution of one task against the installed context."""
    try:
        return execute_task(_WORKER_CONTEXT, task)
    finally:
        # Keep the worker's on-disk telemetry current: children exit via
        # os._exit, so waiting for interpreter shutdown would lose it.
        if _WORKER_SESSION is not None:
            _WORKER_SESSION.flush()


def _task_label(task):
    """Human-readable cell identity for failure records and journal meta."""
    kind, payload = task
    if kind == "cell":
        scheme, workload, seed = payload[0], payload[1], payload[2]
        return f"{scheme}:{workload_name(workload)}:s{seed}"
    fn = payload[0]
    return f"call:{getattr(fn, '__qualname__', fn)}"


def parallel_map(tasks, context, jobs=None, telemetry_dir=None,
                 progress=None, prime=None, on_error=None, checkpoint=None,
                 resume=None, cell_timeout=None, max_retries=None,
                 backoff=None, chaos=None):
    """Run engine tasks across ``jobs`` processes; ordered result list.

    ``tasks`` is a list of ``("cell", payload)`` / ``("call", payload)``
    tuples (see :func:`_run_cell`).  With ``jobs`` ≤ 1 the tasks run in
    this process against ``context`` directly — same code path the workers
    execute, minus the pickling.  ``progress`` (if given) is called with
    each result *in task order*.  ``prime`` restricts pre-pool design
    priming to the named schemes (``None`` primes everything — safe for
    arbitrary ``("call", ...)`` tasks).

    Fault-tolerance knobs (``None`` defers to the active
    :class:`~repro.runtime.policy.ExecutionPolicy`, if any):

    * ``checkpoint`` — a :class:`~repro.runtime.CheckpointJournal` or
      directory; completed cells are journaled as they finish.
    * ``resume`` — serve cells already in the journal from disk and run
      only the missing ones (bit-identical to an uninterrupted run).
    * ``on_error`` — ``"raise"`` (default: first failure propagates) or
      ``"collect"`` (a failed cell becomes a
      :class:`~repro.runtime.CellFailure` in its result slot and every
      sibling survives).
    * ``cell_timeout`` / ``max_retries`` / ``backoff`` / ``chaos`` — any
      of these routes execution through the supervised worker pool
      (:func:`repro.runtime.supervised_map`); the plain pool is kept for
      the fast path.
    """
    from ..cache import MISS
    from ..runtime import CellFailure, CheckpointJournal, task_key
    from ..runtime.executor import RetryPolicy, supervised_map
    from ..runtime.policy import active_policy

    tasks = list(tasks)
    for task in tasks:
        if task[0] not in ("cell", "call"):
            raise ValueError(f"unknown task kind {task[0]!r}")

    policy = active_policy()
    if policy is not None:
        if on_error is None:
            on_error = policy.on_error
        if checkpoint is None:
            checkpoint = policy.checkpoint_dir
        if resume is None:
            resume = policy.resume
        if cell_timeout is None:
            cell_timeout = policy.cell_timeout
        if max_retries is None:
            max_retries = policy.max_retries
        if backoff is None:
            backoff = policy.backoff
        if chaos is None:
            chaos = policy.chaos
    if on_error is None:
        on_error = "raise"

    jobs = resolve_jobs(jobs)
    n = len(tasks)
    session = active_session()

    # --- checkpoint/resume pre-pass --------------------------------------
    journal = CheckpointJournal.resolve(checkpoint)
    keys = None
    resumed = {}
    if journal is not None:
        keys = [task_key(context, task) for task in tasks]
        if resume:
            entries = journal.index()
            for i, key in enumerate(keys):
                entry = entries.get(key)
                if entry is None:
                    continue
                value = journal.get(key, entry.get("sha256"))
                if value is not MISS:
                    resumed[i] = value
            if session is not None:
                if resumed:
                    session.checkpoint_cells.labels(event="resumed").inc(
                        len(resumed))
                if journal.corrupt:
                    session.checkpoint_cells.labels(event="corrupt").inc(
                        journal.corrupt)

    # --- campaign event stream (repro.obs) -------------------------------
    # Written next to the checkpoint journal (or into the telemetry dir
    # when no journal is active); ``repro status`` / ``repro report`` read
    # it back.  No journal and no telemetry → no stream, no overhead.
    events = None
    events_root = None
    if journal is not None:
        events_root = journal.root
    elif session is not None and session.out_dir is not None:
        events_root = session.out_dir
    if events_root is not None:
        from ..obs.events import CampaignEvents, events_path

        events = CampaignEvents(events_path(events_root))
        events.emit("campaign.begin", cells=n, resumed=len(resumed),
                    jobs=jobs)
        for i in sorted(resumed):
            events.emit("cell.resumed", index=i, label=_task_label(tasks[i]))

    results = [None] * n
    done = [False] * n
    for i, value in resumed.items():
        results[i] = value
        done[i] = True
    todo = [i for i in range(n) if i not in resumed]

    delivered = [0]

    def _deliver():
        # Stream results to ``progress`` in task order, interleaving
        # journal-resumed cells with fresh completions.
        nonlocal events
        while delivered[0] < n and done[delivered[0]]:
            i = delivered[0]
            value = results[i]
            if progress is not None:
                progress(value)
            if events is not None and i not in resumed:
                if isinstance(value, CellFailure):
                    events.emit("cell.failed", index=i, label=value.label,
                                reason=value.reason, attempts=value.attempts,
                                error=value.error[:500])
                else:
                    events.emit("cell.completed", index=i,
                                label=_task_label(tasks[i]))
            delivered[0] += 1
        if delivered[0] == n and events is not None:
            # Every cell delivered: the run finished (a crashed/killed run
            # never reaches this, so the stream reads as in-flight).
            events.emit("campaign.end", cells=n, failed=sum(
                1 for r in results if isinstance(r, CellFailure)))
            events.close()
            # emit() after close() would reopen and duplicate the record;
            # drop the handle so trailing _deliver() calls are no-ops.
            events = None

    def _record(i, value):
        # Journal a fresh success (best-effort: checkpointing accelerates
        # recovery, it must never break a run).
        if journal is None:
            return
        try:
            journal.record(keys[i], value,
                           meta={"label": _task_label(tasks[i])})
        except Exception:
            return
        if session is not None:
            session.checkpoint_cells.labels(event="recorded").inc()
        if events is not None:
            events.emit("cell.checkpointed", index=i,
                        label=_task_label(tasks[i]))

    # --- supervised path --------------------------------------------------
    retry = backoff
    if retry is None and max_retries is not None:
        retry = RetryPolicy(max_retries=int(max_retries))
    supervised = bool(
        cell_timeout
        or chaos is not None
        or (retry is not None and retry.max_retries > 0)
    )
    if supervised and todo:
        order = iter(todo)

        def _sub_progress(value):
            i = next(order)
            results[i] = value
            done[i] = True
            _deliver()

        supervised_map(
            [tasks[i] for i in todo], context, jobs=jobs,
            telemetry_dir=telemetry_dir, progress=_sub_progress,
            prime=prime, cell_timeout=cell_timeout,
            retry=retry if retry is not None else RetryPolicy(max_retries=0),
            chaos=chaos, on_error=on_error,
            labels=[_task_label(tasks[i]) for i in todo],
            keys=[keys[i] for i in todo] if keys else None,
            on_result=lambda j, value: _record(todo[j], value),
            events=events,
        )
        _deliver()
        return results

    # --- plain serial path ------------------------------------------------
    if jobs <= 1 or len(todo) <= 1:
        global _WORKER_CONTEXT
        saved = _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            for i in todo:
                try:
                    result = _run_cell(tasks[i])
                except Exception as exc:
                    if on_error != "collect":
                        raise
                    result = CellFailure(
                        index=i, label=_task_label(tasks[i]),
                        reason="exception", attempts=1,
                        error=f"{type(exc).__name__}: {exc}",
                        key=keys[i] if keys else "")
                else:
                    _record(i, result)
                results[i] = result
                done[i] = True
                _deliver()
        finally:
            _WORKER_CONTEXT = saved
        _deliver()
        return results

    # --- plain pool path --------------------------------------------------
    # Prime every lazy design before pickling so workers never synthesize:
    # that keeps workers bit-identical to the parent AND avoids paying the
    # synthesis cost once per process.
    prime_designs(context, prime)
    blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
    tel_dir = str(telemetry_dir) if telemetry_dir is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(todo)),
        initializer=_init_worker,
        initargs=(blob, tel_dir),
    ) as pool:
        futures = {i: pool.submit(_run_cell, tasks[i]) for i in todo}
        for i in todo:  # submission order == collection order
            try:
                result = futures[i].result()
            except Exception as exc:
                if on_error != "collect":
                    raise
                # A dead pool poisons every remaining future; each becomes
                # its own structured failure rather than one fatal raise
                # that discards the completed siblings.
                reason = ("worker-died"
                          if isinstance(exc, BrokenProcessPool)
                          else "exception")
                if session is not None:
                    session.cell_failures.labels(reason=reason).inc()
                result = CellFailure(
                    index=i, label=_task_label(tasks[i]), reason=reason,
                    attempts=1, error=f"{type(exc).__name__}: {exc}",
                    key=keys[i] if keys else "")
            else:
                _record(i, result)
            results[i] = result
            done[i] = True
            _deliver()
    if tel_dir is not None:
        from ..telemetry.merge import merge_worker_dirs

        merge_worker_dirs(tel_dir)
    _deliver()
    return results


def _bank_group(context, cells, max_time, record, on_error="raise"):
    """Engine task: run several layered-scheme cells as one board bank."""
    from .bank_runner import run_cells_banked

    return run_cells_banked(cells, context, max_time=max_time, record=record,
                            on_error=on_error)


def run_matrix(schemes, workloads, context, seed=7, max_time=600.0,
               record=False, progress=None, jobs=None, telemetry_dir=None,
               batch=None, on_error="collect", checkpoint=None, resume=None,
               cell_timeout=None, max_retries=None, backoff=None,
               chaos=None):
    """Parallel counterpart of :func:`runner.run_scheme_matrix`.

    Same nested ``{workload: {scheme: RunMetrics}}`` dict, same cell seeds,
    assembled in the serial loop's (workload, scheme) order.

    ``batch`` > 1 additionally packs up to that many layered-scheme cells
    into one :class:`~repro.board.bank.BoardBank` per engine task, so the
    simulators advance in vectorized lockstep (monolithic-LQG cells keep
    their own loop and run as plain cells).  Banking composes with
    ``jobs``: each bank is one task, fanned across the pool like any
    other.  Results stay bit-identical to the serial path — the bank's
    per-board exactness contract composes with per-cell independence
    (asserted by the ``bank-matrix-vs-serial`` oracle).

    Campaign cells default to ``on_error="collect"``: one raising cell no
    longer discards its completed siblings — it lands in the result dict as
    a :class:`~repro.runtime.CellFailure`.  The checkpoint/supervision
    knobs pass straight through to :func:`parallel_map`.
    """
    schemes = list(schemes)
    workloads = list(workloads)
    tel_dir = telemetry_dir
    if tel_dir is None:
        session = active_session()
        if session is not None and session.out_dir is not None:
            tel_dir = str(session.out_dir)
    order = [
        (scheme, workload)
        for workload in workloads
        for scheme in schemes
    ]
    batch = int(batch) if batch else 0
    if batch > 1:
        from .bank_runner import bankable_scheme

        bankable = [k for k, (s, _) in enumerate(order) if bankable_scheme(s)]
        tasks = []
        slots = []  # per task: list of original cell indices it produces
        for start in range(0, len(bankable), batch):
            group = bankable[start:start + batch]
            tasks.append(("call", (_bank_group, (
                [(order[k][0], order[k][1], seed) for k in group],
                max_time, record,
            ), {"on_error": on_error})))
            slots.append(group)
        for k, (scheme, workload) in enumerate(order):
            if not bankable_scheme(scheme):
                tasks.append(
                    ("cell", (scheme, workload, seed, max_time, record))
                )
                slots.append([k])
        flat = parallel_map(tasks, context, jobs=jobs, telemetry_dir=tel_dir,
                            prime=schemes, on_error=on_error,
                            checkpoint=checkpoint, resume=resume,
                            cell_timeout=cell_timeout,
                            max_retries=max_retries, backoff=backoff,
                            chaos=chaos)
        from ..runtime import CellFailure

        by_cell = [None] * len(order)
        for group, result in zip(slots, flat):
            if isinstance(result, CellFailure):
                # The whole bank task failed: every cell it carried gets
                # the structured failure, so no slot is silently lost.
                group_results = [result] * len(group)
            elif isinstance(result, list):
                group_results = result
            else:
                group_results = [result]
            for k, metrics in zip(group, group_results):
                by_cell[k] = metrics
        if progress is not None:
            for metrics in by_cell:
                progress(metrics)
        it = iter(by_cell)
    else:
        tasks = [
            ("cell", (scheme, workload, seed, max_time, record))
            for scheme, workload in order
        ]
        flat = parallel_map(tasks, context, jobs=jobs, telemetry_dir=tel_dir,
                            progress=progress, prime=schemes,
                            on_error=on_error, checkpoint=checkpoint,
                            resume=resume, cell_timeout=cell_timeout,
                            max_retries=max_retries, backoff=backoff,
                            chaos=chaos)
        it = iter(flat)
    results = {}
    for workload in workloads:
        results[workload_name(workload)] = {
            scheme: next(it) for scheme in schemes
        }
    return results
