"""Parallel experiment engine: fan the evaluation matrix across processes.

The paper's evaluation is embarrassingly parallel — every (scheme ×
workload × seed) cell is an independent closed-loop simulation — but each
cell takes seconds, and the full matrix is hundreds of cells.  This module
fans cells across a :class:`concurrent.futures.ProcessPoolExecutor` while
keeping the three properties the serial harness guarantees:

* **Determinism** — the fully-primed :class:`DesignContext` is pickled once
  and shipped to every worker (workers never re-synthesize), and each cell
  carries its own explicit seed, so a parallel run is *bit-identical* to
  the serial run of the same cells.
* **Ordered collection** — results are reassembled in task-submission
  order regardless of completion order; callers see the same shapes the
  serial loops produce.
* **Telemetry** — each worker process activates its own
  :class:`~repro.telemetry.TelemetrySession` under
  ``<telemetry_dir>/worker-<pid>/``; on join the per-worker directories
  are merged into one coherent parent directory
  (:func:`repro.telemetry.merge_worker_dirs`).

``jobs=None`` or ``jobs=1`` short-circuits to a plain in-process loop, so
every caller can expose a ``--jobs`` knob without special-casing.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

from ..telemetry import TelemetrySession, activate, active_session
from .runner import run_workload, workload_name
from .schemes import prime_designs

__all__ = ["parallel_map", "run_matrix", "resolve_jobs"]

# Worker-process globals, set once by _init_worker.
_WORKER_CONTEXT = None
_WORKER_SESSION = None


def resolve_jobs(jobs):
    """Normalize a ``--jobs`` value: None/0 → serial, -1 → cpu count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= -1:
        return max(os.cpu_count() or 1, 1)
    return max(jobs, 1)


def _close_worker_session():
    global _WORKER_SESSION
    if _WORKER_SESSION is not None:
        _WORKER_SESSION.close()
        _WORKER_SESSION = None


def _init_worker(context_blob, telemetry_dir):
    """Per-process initializer: install the shared context + telemetry."""
    global _WORKER_CONTEXT, _WORKER_SESSION
    _WORKER_CONTEXT = pickle.loads(context_blob)
    if telemetry_dir is not None:
        out = os.path.join(telemetry_dir, f"worker-{os.getpid()}")
        _WORKER_SESSION = activate(TelemetrySession(out))
        # multiprocessing children exit via os._exit (atexit never runs),
        # so register on multiprocessing's own finalizer list as a backstop;
        # _run_cell also flushes after every task.
        from multiprocessing.util import Finalize

        Finalize(None, _close_worker_session, exitpriority=0)


def _run_cell(task):
    """Worker-side execution of one generic task.

    ``task`` is ``(kind, payload)``: ``("cell", ...)`` runs one
    (scheme, workload) pair via :func:`run_workload`; ``("call", ...)``
    invokes an arbitrary module-level function with the worker context
    prepended (used by the figure sweeps whose cells are not plain
    run_workload calls).
    """
    kind, payload = task
    try:
        if kind == "cell":
            scheme, workload, seed, max_time, record = payload
            return run_workload(scheme, workload, _WORKER_CONTEXT, seed=seed,
                                max_time=max_time, record=record)
        if kind == "call":
            fn, args, kwargs = payload
            return fn(_WORKER_CONTEXT, *args, **kwargs)
        raise ValueError(f"unknown task kind {kind!r}")
    finally:
        # Keep the worker's on-disk telemetry current: children exit via
        # os._exit, so waiting for interpreter shutdown would lose it.
        if _WORKER_SESSION is not None:
            _WORKER_SESSION.flush()


def parallel_map(tasks, context, jobs=None, telemetry_dir=None,
                 progress=None, prime=None):
    """Run engine tasks across ``jobs`` processes; ordered result list.

    ``tasks`` is a list of ``("cell", payload)`` / ``("call", payload)``
    tuples (see :func:`_run_cell`).  With ``jobs`` ≤ 1 the tasks run in
    this process against ``context`` directly — same code path the workers
    execute, minus the pickling.  ``progress`` (if given) is called with
    each result *in task order*.  ``prime`` restricts pre-pool design
    priming to the named schemes (``None`` primes everything — safe for
    arbitrary ``("call", ...)`` tasks).
    """
    jobs = resolve_jobs(jobs)
    results = []
    if jobs <= 1 or len(tasks) <= 1:
        global _WORKER_CONTEXT
        saved = _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            for task in tasks:
                result = _run_cell(task)
                if progress is not None:
                    progress(result)
                results.append(result)
        finally:
            _WORKER_CONTEXT = saved
        return results

    # Prime every lazy design before pickling so workers never synthesize:
    # that keeps workers bit-identical to the parent AND avoids paying the
    # synthesis cost once per process.
    prime_designs(context, prime)
    blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
    tel_dir = str(telemetry_dir) if telemetry_dir is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(blob, tel_dir),
    ) as pool:
        futures = [pool.submit(_run_cell, task) for task in tasks]
        for future in futures:  # submission order == collection order
            result = future.result()
            if progress is not None:
                progress(result)
            results.append(result)
    if tel_dir is not None:
        from ..telemetry.merge import merge_worker_dirs

        merge_worker_dirs(tel_dir)
    return results


def _bank_group(context, cells, max_time, record):
    """Engine task: run several layered-scheme cells as one board bank."""
    from .bank_runner import run_cells_banked

    return run_cells_banked(cells, context, max_time=max_time, record=record)


def run_matrix(schemes, workloads, context, seed=7, max_time=600.0,
               record=False, progress=None, jobs=None, telemetry_dir=None,
               batch=None):
    """Parallel counterpart of :func:`runner.run_scheme_matrix`.

    Same nested ``{workload: {scheme: RunMetrics}}`` dict, same cell seeds,
    assembled in the serial loop's (workload, scheme) order.

    ``batch`` > 1 additionally packs up to that many layered-scheme cells
    into one :class:`~repro.board.bank.BoardBank` per engine task, so the
    simulators advance in vectorized lockstep (monolithic-LQG cells keep
    their own loop and run as plain cells).  Banking composes with
    ``jobs``: each bank is one task, fanned across the pool like any
    other.  Results stay bit-identical to the serial path — the bank's
    per-board exactness contract composes with per-cell independence
    (asserted by the ``bank-matrix-vs-serial`` oracle).
    """
    schemes = list(schemes)
    workloads = list(workloads)
    tel_dir = telemetry_dir
    if tel_dir is None:
        session = active_session()
        if session is not None and session.out_dir is not None:
            tel_dir = str(session.out_dir)
    order = [
        (scheme, workload)
        for workload in workloads
        for scheme in schemes
    ]
    batch = int(batch) if batch else 0
    if batch > 1:
        from .bank_runner import bankable_scheme

        bankable = [k for k, (s, _) in enumerate(order) if bankable_scheme(s)]
        tasks = []
        slots = []  # per task: list of original cell indices it produces
        for start in range(0, len(bankable), batch):
            group = bankable[start:start + batch]
            tasks.append(("call", (_bank_group, (
                [(order[k][0], order[k][1], seed) for k in group],
                max_time, record,
            ), {})))
            slots.append(group)
        for k, (scheme, workload) in enumerate(order):
            if not bankable_scheme(scheme):
                tasks.append(
                    ("cell", (scheme, workload, seed, max_time, record))
                )
                slots.append([k])
        flat = parallel_map(tasks, context, jobs=jobs, telemetry_dir=tel_dir,
                            prime=schemes)
        by_cell = [None] * len(order)
        for group, result in zip(slots, flat):
            group_results = result if isinstance(result, list) else [result]
            for k, metrics in zip(group, group_results):
                by_cell[k] = metrics
        if progress is not None:
            for metrics in by_cell:
                progress(metrics)
        it = iter(by_cell)
    else:
        tasks = [
            ("cell", (scheme, workload, seed, max_time, record))
            for scheme, workload in order
        ]
        flat = parallel_map(tasks, context, jobs=jobs, telemetry_dir=tel_dir,
                            progress=progress, prime=schemes)
        it = iter(flat)
    results = {}
    for workload in workloads:
        results[workload_name(workload)] = {
            scheme: next(it) for scheme in schemes
        }
    return results
