"""The experiment runner: one workload under one scheme on the board.

The runner instantiates the workload, wires a scheme session to a fresh
board, drives the 500 ms control loop until completion, and packages the
resulting :class:`~repro.experiments.metrics.RunMetrics`.  The monolithic
LQG scheme gets its own loop (single controller over both layers).
"""

from __future__ import annotations

import time

import numpy as np

from ..board import BIG, LITTLE, Board
from ..core import MultilayerCoordinator, exd_metric
from ..core.characterize import sample_signals
from ..core.layer import HW_OUTPUTS, SW_OUTPUTS
from ..telemetry import active_session
from ..workloads import make_application, make_mix
from .metrics import RunMetrics
from .schemes import DesignContext, SchemeSession, build_session

__all__ = [
    "run_workload",
    "run_scheme_matrix",
    "instantiate_workload",
    "workload_name",
]


def instantiate_workload(workload):
    """Turn a workload name (program or mix) into application instances."""
    if isinstance(workload, (list, tuple)):
        return list(workload)
    try:
        return [make_application(workload)]
    except KeyError:
        return make_mix(workload)


def workload_name(workload):
    """The canonical result-dict key for a workload argument."""
    if isinstance(workload, str):
        return workload
    return "+".join(a.name for a in instantiate_workload(workload))


def _simulate_period(board, period_steps, tel):
    """Advance the board one control period (optionally under a span)."""
    if tel is None:
        board.run_period(period_steps)
        return
    t0 = time.perf_counter()
    with tel.span("sim", cat="period", board_time=board.time):
        board.run_period(period_steps)
    tel.sim_period_hist.observe(time.perf_counter() - t0)


def _monolithic_loop(board, session, period_steps, max_time, telemetry=None,
                     monitor=None):
    """Control loop for the single-controller (monolithic LQG) scheme."""
    import types

    mono = session.monolithic
    hw_opt, sw_opt = session.hw_optimizer, session.sw_optimizer
    tel = telemetry
    # The invariant monitor inspects optimizers through coordinator-shaped
    # attribute access; the monolithic loop has no coordinator, so hand it
    # a shim carrying the same two attributes.
    opt_shim = types.SimpleNamespace(hw_optimizer=hw_opt, sw_optimizer=sw_opt)
    while not board.done and board.time < max_time:
        if tel is not None:
            tel.begin_period(board.time)
        _simulate_period(board, period_steps, tel)
        if board.done:
            break
        if tel is not None:
            with tel.span("sample", board_time=board.time):
                signals = sample_signals(board, period_steps)
        else:
            signals = sample_signals(board, period_steps)
        outputs_hw = np.array([signals[name] for name in HW_OUTPUTS])
        outputs_sw = np.array([signals[name] for name in SW_OUTPUTS])
        total_power = (
            signals["power_big"]
            + signals["power_little"]
            + board.spec.board_static_power
        )
        exd = exd_metric(total_power, signals["bips_total"])
        if hw_opt is not None:
            mono.set_targets(hw_opt.update(exd, outputs_hw))
        if sw_opt is not None:
            mono.set_sw_targets(sw_opt.update(exd, outputs_sw))
        hw_u = mono.step_joint(outputs_hw, outputs_sw)
        n_big, n_little, f_big, f_little = hw_u
        board.set_active_cores(BIG, n_big)
        board.set_active_cores(LITTLE, n_little)
        board.set_cluster_frequency(BIG, f_big)
        board.set_cluster_frequency(LITTLE, f_little)
        sw_u = mono.pending_sw_actuation()
        if sw_u is not None:
            board.set_placement_knobs(*sw_u)
        if tel is not None:
            tel.periods.inc()
            tel.exd_gauge.set(exd)
        if monitor is not None:
            monitor.check_period(board, coordinator=opt_shim,
                                 signals=signals)


def run_workload(
    scheme_name,
    workload,
    context: DesignContext,
    seed=7,
    max_time=600.0,
    record=True,
    telemetry=None,
    monitor=None,
) -> RunMetrics:
    """Run one workload to completion under one scheme.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.TelemetrySession`; omitted, the run inherits
    the process-wide session (``None`` = disabled, the near-zero-overhead
    fast path).  ``monitor`` is an optional
    :class:`~repro.verify.InvariantMonitor` with the same inheritance
    rule (``repro verify`` installs one process-wide).
    """
    from ..verify.invariants import active_monitor

    tel = telemetry if telemetry is not None else active_session()
    mon = monitor if monitor is not None else active_monitor()
    session = build_session(scheme_name, context)
    apps = instantiate_workload(workload)
    board = Board(apps, spec=context.spec, seed=seed, record=record,
                  telemetry=tel)
    period_steps = context.spec.period_steps()
    if session.monolithic is not None:
        _monolithic_loop(board, session, period_steps, max_time,
                         telemetry=tel, monitor=mon)
        coordinator = None
    else:
        coordinator = MultilayerCoordinator(
            session.hw_controller,
            session.sw_controller,
            session.hw_optimizer,
            session.sw_optimizer,
            telemetry=tel,
            monitor=mon,
        )
        while not board.done and board.time < max_time:
            if tel is not None:
                tel.begin_period(board.time)
            _simulate_period(board, period_steps, tel)
            if board.done:
                break
            coordinator.control_step(board, period_steps)
    name = workload if isinstance(workload, str) else "+".join(
        a.name for a in apps
    )
    trace = board.trace.as_arrays() if record and board.trace else {}
    notes = {
        "emergency_trips": board.emergency.state.trip_count,
        "coordinator_records": len(coordinator.records) if coordinator else 0,
    }
    if hasattr(session.hw_controller, "guardband_exhausted"):
        notes["guardband_exhausted"] = session.hw_controller.guardband_exhausted
    return RunMetrics(
        scheme=scheme_name,
        workload=name,
        execution_time=board.time,
        energy=board.energy,
        completed=board.done,
        trace=trace,
        notes=notes,
    )


def run_scheme_matrix(schemes, workloads, context, seed=7, max_time=600.0,
                      record=False, progress=None, jobs=None, batch=None):
    """Run every (scheme, workload) pair; returns nested dict of metrics.

    ``jobs`` > 1 fans the matrix cells across worker processes through the
    parallel experiment engine — results are bit-identical to the serial
    path (same context, same per-cell seeds).  ``batch`` > 1 packs
    layered-scheme cells into lockstep board banks (also bit-identical;
    see :func:`~repro.experiments.engine.run_matrix`).  The result dict is
    keyed by workload name (resolved up front, so empty scheme lists are
    safe).

    A process-wide :class:`~repro.runtime.ExecutionPolicy` (installed by
    the CLI's ``--resume``/``--checkpoint-dir``/``--cell-timeout`` flags)
    also routes through the engine, so checkpointing and worker
    supervision cover serial campaigns too.
    """
    from ..runtime.policy import active_policy

    policy = active_policy()
    if (
        (jobs is not None and jobs != 1)
        or (batch is not None and batch > 1)
        or policy is not None
    ):
        from .engine import run_matrix

        return run_matrix(schemes, workloads, context, seed=seed,
                          max_time=max_time, record=record,
                          progress=progress, jobs=jobs, batch=batch)
    results = {}
    for workload in workloads:
        name = workload_name(workload)
        per_scheme = {}
        for scheme in schemes:
            metrics = run_workload(
                scheme, workload, context, seed=seed, max_time=max_time,
                record=record,
            )
            per_scheme[scheme] = metrics
            if progress is not None:
                progress(metrics)
        results[name] = per_scheme
    return results
