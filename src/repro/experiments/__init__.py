"""Experiment harness: one module per paper table/figure plus the runner.

Every evaluation artifact of the paper has a ``run()`` entry point here
(see the DESIGN.md experiment index) and a matching pytest-benchmark target
under ``benchmarks/``.
"""

from . import (
    ablation,
    engine,
    exhaustion,
    fig9,
    fig10,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
    hwcost,
    resilience,
    scheduling,
    tables,
    three_layer,
)
from .bank_runner import bankable_scheme, run_cells_banked
from .engine import parallel_map, resolve_jobs, run_matrix
from .metrics import RunMetrics, normalize_to, oscillation_stats
from .report import render_bars, render_series, render_table
from .runner import (
    instantiate_workload,
    run_scheme_matrix,
    run_workload,
    workload_name,
)
from .schemes import (
    COORDINATED_HEURISTIC,
    DECOUPLED_HEURISTIC,
    DECOUPLED_LQG,
    MONOLITHIC_LQG,
    SCHEMES,
    YUKTA_HW_SSV_OS_HEUR,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
    SchemeSession,
    build_session,
    prime_designs,
    scheme_descriptions,
)

__all__ = [
    "ablation",
    "exhaustion",
    "resilience",
    "scheduling",
    "three_layer",
    "fig9",
    "fig10",
    "fig12",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "hwcost",
    "tables",
    "RunMetrics",
    "normalize_to",
    "oscillation_stats",
    "render_table",
    "render_bars",
    "render_series",
    "run_workload",
    "run_scheme_matrix",
    "bankable_scheme",
    "run_cells_banked",
    "instantiate_workload",
    "workload_name",
    "engine",
    "parallel_map",
    "run_matrix",
    "resolve_jobs",
    "prime_designs",
    "SCHEMES",
    "COORDINATED_HEURISTIC",
    "DECOUPLED_HEURISTIC",
    "YUKTA_HW_SSV_OS_HEUR",
    "YUKTA_HW_SSV_OS_SSV",
    "DECOUPLED_LQG",
    "MONOLITHIC_LQG",
    "DesignContext",
    "SchemeSession",
    "build_session",
    "scheme_descriptions",
]
