"""Section VI-D: hardware implementation cost of the SSV controller.

The paper reports that the N=20, I=4, O=4, E=3 controller needs ~700
32-bit fixed-point operations per invocation and ~2.6 KB of matrix storage.
This experiment builds the fixed-point state machine from the actual
synthesized hardware controller, counts its operations and storage, and
verifies the fixed-point outputs against the floating-point reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FixedPointController, implementation_cost
from .report import render_table
from .schemes import DesignContext

__all__ = ["HwCostResult", "run"]


@dataclass
class HwCostResult:
    n_states: int
    n_inputs: int
    n_signals: int
    macs: int
    total_operations: int
    storage_kb: float
    fixed_point_error: float
    paper_macs: int = 700
    paper_storage_kb: float = 2.6

    def rows(self):
        return [
            ["state dimension N", self.n_states, 20],
            ["inputs I", self.n_inputs, 4],
            ["signals O+E", self.n_signals, 7],
            ["MAC operations", self.macs, self.paper_macs],
            ["total ops (mul+add)", self.total_operations, 2 * self.paper_macs],
            ["storage (KB)", self.storage_kb, self.paper_storage_kb],
            ["max fixed-point error", self.fixed_point_error, 0.0],
        ]

    def render(self):
        return render_table(["quantity", "measured", "paper"], self.rows(),
                            "Sec. VI-D: hardware SSV controller implementation")


def run(context: DesignContext = None, frac_bits=16, probe_steps=200, seed=3):
    """Regenerate the Sec. VI-D cost analysis."""
    context = context or DesignContext.create()
    controller = context.get_hw_design().controller
    sm = controller.state_machine
    fixed = FixedPointController(sm, frac_bits=frac_bits)
    rng = np.random.default_rng(seed)
    dy = rng.uniform(-0.5, 0.5, size=(probe_steps, sm.n_inputs))
    error = fixed.max_output_error(dy)
    cost = fixed.cost
    return HwCostResult(
        n_states=sm.n_states,
        n_inputs=sm.n_outputs,
        n_signals=sm.n_inputs,
        macs=cost.macs,
        total_operations=cost.total_operations,
        storage_kb=cost.storage_bytes / 1024.0,
        fixed_point_error=float(error),
    )
