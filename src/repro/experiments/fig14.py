"""Figure 14: ExD of the four heterogeneous workload mixes.

Runs blmc / stga / blst / mcga (PARSEC@4t + SPEC@4copies combinations)
under every scheme in the registry, normalized to Coordinated heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..workloads import mix_names
from .metrics import normalize_to
from .report import render_table
from .runner import run_scheme_matrix
from .schemes import COORDINATED_HEURISTIC, SCHEMES, DesignContext

__all__ = ["Fig14Result", "run"]


@dataclass
class Fig14Result:
    schemes: list
    mixes: list
    exd: dict = field(default_factory=dict)

    def averages(self):
        return {
            s: float(np.mean([self.exd[m][s] for m in self.mixes]))
            for s in self.schemes
        }

    def rows(self):
        rows = [[m] + [self.exd[m][s] for s in self.schemes] for m in self.mixes]
        avg = self.averages()
        rows.append(["Avg"] + [avg[s] for s in self.schemes])
        return rows

    def render(self):
        return render_table(
            ["mix"] + self.schemes, self.rows(),
            "Figure 14: normalized ExD on heterogeneous mixes",
        )


def run(context: DesignContext = None, schemes=None, seed=7,
        jobs=None) -> Fig14Result:
    context = context or DesignContext.create()
    schemes = schemes or SCHEMES
    results = run_scheme_matrix(schemes, mix_names(), context, seed=seed,
                                jobs=jobs)
    out = Fig14Result(list(schemes), list(results))
    for mix, per_scheme in results.items():
        out.exd[mix] = normalize_to(per_scheme, COORDINATED_HEURISTIC, "exd")
    return out
