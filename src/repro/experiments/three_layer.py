"""Three-layer scalability demonstration (Sec. III-D).

The paper envisions stacking more layers with neighbour-only communication.
This experiment adds the application (QoS) layer of :mod:`repro.extensions`
on top of the two-layer Yukta stack and compares, on a QoS work-item
stream:

* **two layers** (application runs at fixed full quality) versus
* **three layers** (the application controller trades approximation
  quality for heartbeat rate, reading only the OS layer's signals),

at a feasible and an infeasible heartbeat target.  The three-layer stack
should meet the feasible target exactly and degrade gracefully (quality
shed, heartbeat maximized) at the infeasible one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..board import Board
from ..core import MultilayerCoordinator
from .report import render_table
from .schemes import YUKTA_HW_SSV_OS_SSV, DesignContext, build_session

__all__ = ["ThreeLayerResult", "run"]


@dataclass
class ThreeLayerResult:
    rows_data: list = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)

    def render(self):
        return render_table(
            ["configuration", "hb target", "avg heartbeat", "final quality",
             "energy (J)", "time (s)"],
            self.rows(),
            "Sec. III-D extension: two layers vs three layers on a QoS stream",
        )

    def by_label(self, label):
        for row in self.rows_data:
            if row[0] == label:
                return row
        raise KeyError(label)


def _run_stack(context, app_design, heartbeat_target, total_items=600,
               max_time=300.0, seed=21):
    from ..extensions import AppLayerRuntime, ThreeLayerCoordinator
    from ..extensions.app_layer import make_qos_application

    app = make_qos_application(total_items=total_items)
    board = Board(app, spec=context.spec, seed=seed)
    session = build_session(YUKTA_HW_SSV_OS_SSV, context)
    two = MultilayerCoordinator(
        session.hw_controller, session.sw_controller,
        session.hw_optimizer, session.sw_optimizer,
    )
    if app_design is None:
        coordinator = two
    else:
        runtime = AppLayerRuntime(
            copy.deepcopy(app_design.controller), app,
            heartbeat_target=heartbeat_target,
        )
        coordinator = ThreeLayerCoordinator(two, runtime)
    period_steps = context.spec.period_steps()
    while not board.done and board.time < max_time:
        for _ in range(period_steps):
            board.step()
            if board.done:
                break
        if board.done:
            break
        coordinator.control_step(board, period_steps)
    avg_heartbeat = app.items_completed / max(board.time, 1e-9)
    return avg_heartbeat, app.quality, board.energy, board.time


def run(context: DesignContext = None, targets=(3.5, 6.0), seed=21,
        app_samples=150):
    """Regenerate the three-layer demonstration."""
    from ..extensions import design_app_layer

    context = context or DesignContext.create()
    app_design = design_app_layer(context, samples=app_samples, seed=seed + 50)
    result = ThreeLayerResult()
    hb, quality, energy, time_ = _run_stack(context, None, None, seed=seed)
    result.rows_data.append(
        ["two-layer (fixed quality)", "-", hb, quality, energy, time_]
    )
    for target in targets:
        hb, quality, energy, time_ = _run_stack(
            context, app_design, target, seed=seed
        )
        result.rows_data.append(
            [f"three-layer @ {target}", target, hb, quality, energy, time_]
        )
    return result
