"""Guardband-exhaustion detection (Sec. II-B's runtime promise).

"If the guardband is not large enough and is exhausted at runtime, the
controller detects it dynamically, and may no longer provide all the
guarantees expected."  This experiment makes that concrete with two faults:

* a **heatsink fault** (thermal resistance and switched capacitance jump,
  far outside the +-40% guardband) — the exhaustion flag must raise, and
  the loop must nonetheless settle at a safe degraded operating point
  ("may no longer provide all the guarantees expected" — but detected);
* a **temperature-sensor miscalibration** (the TMU channel under-reads by
  15 degC) — the controller unknowingly regulates the die 15 degC hotter
  than it believes; the stock firmware (reading the true thermal state)
  intervenes, and that sustained firmware override (an OS-visible signal
  on real boards) raises the flag.

Detection combines two runtime monitors: persistent bound-breaking
deviations on critical outputs (in the controller) and sustained emergency-
firmware override (in the coordinator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..board import Board
from ..core import MultilayerCoordinator

# The one-shot injection helpers now live in the fault subsystem
# (repro.faults.library), reimplemented as immediate permanent campaigns
# with identical board effects; re-exported here for compatibility.
from ..faults import inject_heatsink_fault, inject_sensor_fault
from ..workloads import make_application
from .report import render_table
from .schemes import YUKTA_HW_SSV_OS_SSV, DesignContext, build_session

__all__ = [
    "ExhaustionResult",
    "run",
    "inject_heatsink_fault",
    "inject_sensor_fault",
]


@dataclass
class ExhaustionResult:
    healthy_flagged: bool
    heatsink_flagged: bool
    heatsink_stable: bool  # outputs stayed bounded after the absorbable fault
    sensor_flagged: bool
    fault_time: float
    sensor_detection_delay: float  # periods from fault to flag (-1 if never)

    def rows(self):
        return [
            ["healthy run flagged exhaustion", str(self.healthy_flagged), "False"],
            ["heatsink fault flagged", str(self.heatsink_flagged), "True"],
            ["heatsink fault settled safely", str(self.heatsink_stable), "True"],
            ["sensor fault flagged", str(self.sensor_flagged), "True"],
            ["fault injected at (s)", self.fault_time, "-"],
            ["sensor-fault detection delay (periods)",
             self.sensor_detection_delay, "within the run"],
        ]

    def render(self):
        return render_table(
            ["check", "measured", "expected"], self.rows(),
            "Guardband exhaustion detection (Sec. II-B)",
        )


def _run_once(context, fault_fn, workload="gamess", max_time=200.0, seed=11):
    session = build_session(YUKTA_HW_SSV_OS_SSV, context)
    coordinator = MultilayerCoordinator(
        session.hw_controller, session.sw_controller,
        session.hw_optimizer, session.sw_optimizer,
    )
    board = Board(make_application(workload), spec=context.spec, seed=seed,
                  record=False)
    period_steps = context.spec.period_steps()
    fault_time = max_time / 3.0 if fault_fn else None
    faulted = False
    fault_period = -1
    flag_period = -1
    period = 0
    temps = []
    while not board.done and board.time < max_time:
        for _ in range(period_steps):
            board.step()
            if board.done:
                break
        if board.done:
            break
        if fault_fn and not faulted and board.time >= fault_time:
            fault_fn(board)
            faulted = True
            fault_period = period
        coordinator.control_step(board, period_steps)
        temps.append(board.thermal.temperature)
        period += 1
        if session.hw_controller.guardband_exhausted and flag_period < 0:
            flag_period = period
    flagged = session.hw_controller.guardband_exhausted
    delay = (
        flag_period - fault_period
        if (fault_fn and flagged and flag_period >= 0)
        else -1
    )
    # "Bounded" after a fault: true temperature never ran away past the
    # emergency trip point.
    stable = bool(max(temps[-10:], default=0.0) < context.spec.emergency_temp_trip)
    return flagged, (fault_time or 0.0), delay, stable


def run(context: DesignContext = None, workload="gamess", seed=11):
    """Run the healthy / heatsink-fault / sensor-fault triple."""
    context = context or DesignContext.create()
    healthy_flagged, _, _, _ = _run_once(context, None, workload=workload,
                                         seed=seed)
    heatsink_flagged, fault_time, _, heatsink_stable = _run_once(
        context, inject_heatsink_fault, workload=workload, seed=seed
    )
    sensor_flagged, _, delay, _ = _run_once(
        context, inject_sensor_fault, workload=workload, seed=seed
    )
    return ExhaustionResult(
        healthy_flagged, heatsink_flagged, heatsink_stable,
        sensor_flagged, fault_time, delay,
    )
