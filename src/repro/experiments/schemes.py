"""The controller-scheme registry (Table IV plus the LQG variants).

A *scheme* knows how to build a fresh control session (the pair of layer
controllers plus optimizers) against a shared :class:`DesignContext`.  The
expensive artifacts — characterization data and synthesized controllers —
are built once per context and cached, so sweeping fourteen workloads over
six schemes stays tractable.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    CoordinatedHeuristicHW,
    CoordinatedHeuristicOS,
    DecoupledHeuristicHW,
    DecoupledHeuristicOS,
    MonolithicLQGAdapter,
    design_lqg_hw,
    design_lqg_sw,
    design_monolithic_lqg,
)
from ..board import default_xu3_spec
from ..cache import DesignCache, fingerprint
from ..core import (
    ExDOptimizer,
    TargetChannel,
    characterize_board,
    design_layer,
    hardware_layer_spec,
    software_layer_spec,
)

__all__ = [
    "DesignContext",
    "SchemeSession",
    "SCHEMES",
    "build_session",
    "prime_designs",
    "scheme_descriptions",
]

# Table IV names (the registry keys used by every figure module).
COORDINATED_HEURISTIC = "coordinated-heuristic"
DECOUPLED_HEURISTIC = "decoupled-heuristic"
YUKTA_HW_SSV_OS_HEUR = "yukta-hwssv-osheur"
YUKTA_HW_SSV_OS_SSV = "yukta-hwssv-osssv"
DECOUPLED_LQG = "decoupled-lqg"
MONOLITHIC_LQG = "monolithic-lqg"

SCHEMES = [
    COORDINATED_HEURISTIC,
    DECOUPLED_HEURISTIC,
    YUKTA_HW_SSV_OS_HEUR,
    YUKTA_HW_SSV_OS_SSV,
    DECOUPLED_LQG,
    MONOLITHIC_LQG,
]

_DESCRIPTIONS = {
    COORDINATED_HEURISTIC: (
        "OS: HMP-style scheduler using number/type/frequency of cores. "
        "HW: raises frequency/#cores while safe, backs off using the thread "
        "distribution. (Table IV-a, the baseline.)"
    ),
    DECOUPLED_HEURISTIC: (
        "OS: round-robin placement. HW: performance governor at maximum, "
        "threshold backoff on violations, ignores threads. (Table IV-b.)"
    ),
    YUKTA_HW_SSV_OS_HEUR: (
        "OS: coordinated heuristic. HW: SSV controller of Sec. IV-A. "
        "(Table IV-c.)"
    ),
    YUKTA_HW_SSV_OS_SSV: (
        "OS: SSV controller of Sec. IV-B. HW: SSV controller of Sec. IV-A. "
        "(Table IV-d.)"
    ),
    DECOUPLED_LQG: (
        "Independent LQG controllers in each layer, no coordination channel. "
        "(Sec. VI-B.)"
    ),
    MONOLITHIC_LQG: (
        "A single LQG controller sensing and actuating both layers. "
        "(Sec. VI-B.)"
    ),
}


def scheme_descriptions():
    return dict(_DESCRIPTIONS)


@dataclass
class DesignContext:
    """Shared, cached design artifacts for a board spec.

    Build once (``DesignContext.create()``), then mint per-run sessions.
    """

    spec: object
    characterization: object
    hw_design: object = None
    sw_design: object = None
    lqg_hw: object = None
    lqg_sw: object = None
    lqg_mono: object = None
    overrides: dict = field(default_factory=dict)
    cache: object = None  # DesignCache, or None to keep everything in-memory
    char_fingerprint: str = ""  # identifies (spec, characterization params)

    @classmethod
    def create(cls, spec=None, samples_per_program=160, seed=1234,
               bounds_override=None, guardband_override=None,
               input_weight_override=None, cache=None):
        """Characterize the board and synthesize every controller needed.

        ``cache`` (see :meth:`repro.cache.DesignCache.resolve`) memoizes the
        characterization campaign and all synthesized controllers on disk:
        both are deterministic functions of ``(spec, samples_per_program,
        seed)`` plus the design overrides, so a warm cache makes context
        construction near-instant.
        """
        spec = spec or default_xu3_spec()
        cache = DesignCache.resolve(cache)
        char_fp = fingerprint("characterization", spec, samples_per_program,
                              seed)
        build = lambda: characterize_board(
            spec, samples_per_program=samples_per_program, seed=seed
        )
        if cache is not None:
            characterization = cache.fetch(char_fp, build)
        else:
            characterization = build()
        ctx = cls(spec=spec, characterization=characterization,
                  cache=cache, char_fingerprint=char_fp)
        ctx.overrides = {
            "bounds": bounds_override,
            "guardband": guardband_override,
            "input_weight": input_weight_override,
        }
        return ctx

    def variant(self, bounds_override=None, guardband_override=None,
                input_weight_override=None):
        """A sibling context sharing this one's characterization data.

        Sensitivity sweeps (Figs. 15-17) redesign controllers under
        different bounds/guardbands/weights without re-running the training
        campaign — exactly what a design team would do.  The persistent
        cache carries over, so re-synthesized variants hit disk too.
        """
        ctx = DesignContext(spec=self.spec, characterization=self.characterization,
                            cache=self.cache,
                            char_fingerprint=self.char_fingerprint)
        ctx.overrides = {
            "bounds": bounds_override,
            "guardband": guardband_override,
            "input_weight": input_weight_override,
        }
        return ctx

    def _design(self, slot, kind, build):
        """Memoized design lookup: in-memory slot first, then the cache."""
        value = getattr(self, slot)
        if value is not None:
            return value
        if self.cache is not None and self.char_fingerprint:
            key = fingerprint("design", kind, self.char_fingerprint,
                              self.overrides)
            value = self.cache.fetch(key, build)
        else:
            value = build()
        setattr(self, slot, value)
        return value

    # --- lazy designs ------------------------------------------------------
    def _hw_spec(self):
        layer = hardware_layer_spec(self.spec)
        if self.overrides.get("bounds") is not None:
            layer = layer.with_bounds(self.overrides["bounds"])
        if self.overrides.get("guardband") is not None:
            layer = layer.with_guardband(self.overrides["guardband"])
        if self.overrides.get("input_weight") is not None:
            layer = layer.with_input_weights(self.overrides["input_weight"])
        return layer

    def _sw_spec(self):
        layer = software_layer_spec(self.spec)
        if self.overrides.get("guardband") is not None:
            # SW guardband stays 10 points above the HW one, as in the paper.
            layer = layer.with_guardband(
                min(self.overrides["guardband"] + 0.10, 5.0)
            )
        return layer

    def get_hw_design(self):
        return self._design(
            "hw_design", "hw-ssv",
            lambda: design_layer(self._hw_spec(), self.characterization,
                                 reduce_to=20, effort_scale=5.0,
                                 accuracy_boost=10.0),
        )

    def get_sw_design(self):
        # Placement moves are cheap relative to DVFS/hotplug, so the
        # software design runs with a lighter internal effort scale
        # (the user-facing weight stays the paper's 2).
        return self._design(
            "sw_design", "sw-ssv",
            lambda: design_layer(self._sw_spec(), self.characterization,
                                 reduce_to=20, effort_scale=2.5,
                                 accuracy_boost=10.0),
        )

    def get_lqg_hw(self):
        return self._design(
            "lqg_hw", "lqg-hw",
            lambda: design_lqg_hw(self._hw_spec(), self.characterization),
        )

    def get_lqg_sw(self):
        return self._design(
            "lqg_sw", "lqg-sw",
            lambda: design_lqg_sw(self._sw_spec(), self.characterization),
        )

    def get_lqg_mono(self):
        return self._design(
            "lqg_mono", "lqg-mono",
            lambda: design_monolithic_lqg(
                self._hw_spec(), self._sw_spec(), self.characterization
            ),
        )

    # --- optimizer factories ------------------------------------------------
    def hw_optimizer(self):
        char = self.characterization
        perf_hi = char.output_ranges["bips_total"][1]
        return ExDOptimizer(
            [
                TargetChannel("bips_total", initial=0.6 * perf_hi, low=0.3,
                              high=perf_hi, role="performance"),
                TargetChannel("power_big", initial=2.2, low=0.5,
                              high=self.spec.power_limit_big, role="power",
                              forward_step=0.12, backward_step=0.06),
                TargetChannel("power_little", initial=0.15, low=0.04,
                              high=self.spec.power_limit_little, role="power",
                              forward_step=0.12, backward_step=0.06),
                TargetChannel("temperature", initial=self.spec.temp_limit - 1.0,
                              low=45.0, high=self.spec.temp_limit, role="fixed"),
            ]
        )

    def sw_optimizer(self):
        char = self.characterization
        big_hi = char.output_ranges["bips_big"][1]
        little_hi = char.output_ranges["bips_little"][1]
        # Both cluster performances are ceiling-tracked performance
        # channels; the spare-compute difference steers the split.
        return ExDOptimizer(
            [
                TargetChannel("bips_little", initial=0.15 * little_hi, low=0.02,
                              high=little_hi, role="performance"),
                TargetChannel("bips_big", initial=0.6 * big_hi, low=0.2,
                              high=big_hi, role="performance"),
                # Good placements on this board sit at deeply negative
                # spare-compute differences (big cluster fully loaded),
                # so the balance envelope must reach them.
                TargetChannel("delta_spare_capacity", initial=-2.0, low=-9.0,
                              high=3.0, role="balance",
                              forward_step=-0.05, backward_step=-0.05),
            ]
        )


@dataclass
class SchemeSession:
    """A per-run control session: fresh controller state, shared designs."""

    name: str
    hw_controller: object
    sw_controller: object = None
    hw_optimizer: object = None
    sw_optimizer: object = None
    monolithic: object = None  # MonolithicLQGAdapter, if applicable


# Which lazy designs each scheme pulls in (heuristic schemes need none).
_SCHEME_DESIGNS = {
    YUKTA_HW_SSV_OS_HEUR: ("get_hw_design",),
    YUKTA_HW_SSV_OS_SSV: ("get_hw_design", "get_sw_design"),
    DECOUPLED_LQG: ("get_lqg_hw", "get_lqg_sw"),
    MONOLITHIC_LQG: ("get_lqg_mono",),
}


def prime_designs(context: DesignContext, schemes=None):
    """Force-synthesize every design the given schemes will need.

    The parallel experiment engine ships the context to workers by pickling
    it once; priming first means every worker receives finished designs (no
    redundant per-worker synthesis, and — since synthesis is the only
    context mutation — the parent/worker contexts stay identical).
    """
    for scheme in schemes if schemes is not None else SCHEMES:
        for getter in _SCHEME_DESIGNS.get(scheme, ()):
            getattr(context, getter)()
    return context


def build_session(scheme_name, context: DesignContext) -> SchemeSession:
    """Instantiate one run's controllers for a named scheme."""
    spec = context.spec
    if scheme_name == COORDINATED_HEURISTIC:
        return SchemeSession(
            scheme_name,
            hw_controller=CoordinatedHeuristicHW(spec),
            sw_controller=CoordinatedHeuristicOS(spec),
        )
    if scheme_name == DECOUPLED_HEURISTIC:
        return SchemeSession(
            scheme_name,
            hw_controller=DecoupledHeuristicHW(spec),
            sw_controller=DecoupledHeuristicOS(spec),
        )
    if scheme_name == YUKTA_HW_SSV_OS_HEUR:
        hw = copy.deepcopy(context.get_hw_design().controller)
        hw.reset()
        return SchemeSession(
            scheme_name,
            hw_controller=hw,
            sw_controller=CoordinatedHeuristicOS(spec),
            hw_optimizer=context.hw_optimizer(),
        )
    if scheme_name == YUKTA_HW_SSV_OS_SSV:
        hw = copy.deepcopy(context.get_hw_design().controller)
        sw = copy.deepcopy(context.get_sw_design().controller)
        hw.reset()
        sw.reset()
        return SchemeSession(
            scheme_name,
            hw_controller=hw,
            sw_controller=sw,
            hw_optimizer=context.hw_optimizer(),
            sw_optimizer=context.sw_optimizer(),
        )
    if scheme_name == DECOUPLED_LQG:
        hw = copy.deepcopy(context.get_lqg_hw()[0])
        sw = copy.deepcopy(context.get_lqg_sw()[0])
        hw.reset()
        sw.reset()
        return SchemeSession(
            scheme_name,
            hw_controller=hw,
            sw_controller=sw,
            hw_optimizer=context.hw_optimizer(),
            sw_optimizer=context.sw_optimizer(),
        )
    if scheme_name == MONOLITHIC_LQG:
        mono = MonolithicLQGAdapter(copy.deepcopy(context.get_lqg_mono()[0]))
        mono.reset()
        return SchemeSession(
            scheme_name,
            hw_controller=mono,
            sw_controller=None,
            hw_optimizer=context.hw_optimizer(),
            sw_optimizer=context.sw_optimizer(),
            monolithic=mono,
        )
    raise KeyError(f"unknown scheme {scheme_name!r}; known: {SCHEMES}")
