"""Figure 17: sensitivity to the input weights.

Synthesizes hardware controllers with all input weights at 0.5 / 1 / 2,
fixes the big-cluster power target at 2.5 W, and plots the power response
while blackscholes ramps its threads: low weights give a fast, rippling
response; high weights a sluggish one; weight 1 is the balanced default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..board import Board
from ..core import MultilayerCoordinator
from ..workloads import make_application
from .fig15 import HW_FIXED_TARGETS, SW_FIXED_TARGETS
from .report import render_series, render_table
from .schemes import YUKTA_HW_SSV_OS_SSV, DesignContext, build_session

__all__ = ["Fig17Result", "run", "INPUT_WEIGHTS"]

INPUT_WEIGHTS = [0.5, 1.0, 2.0]
POWER_TARGET = 2.5  # W, the Sec. VI-E3 experiment
SETTLE_BAND = 0.25  # W: within-band threshold for the settle-time metric


@dataclass
class Fig17Result:
    weights: list
    series: dict = field(default_factory=dict)  # weight -> (times, power)
    stats: dict = field(default_factory=dict)

    def rows(self):
        return [
            [w, self.stats[w]["actuation_activity"], self.stats[w]["ripple"],
             self.stats[w]["settle_mean"], self.stats[w]["rms_dev"]]
            for w in self.weights
        ]

    def render(self):
        parts = [
            render_table(
                ["input weight", "knob moves/period", "power ripple (W)",
                 "steady P_big (W)", "rms dev from 2.5 W"],
                self.rows(),
                "Figure 17: big-cluster power response vs input weights",
            )
        ]
        for w in self.weights:
            times, power = self.series[w]
            parts.append(
                render_series(times, power, f"Figure 17: P_big(t), weights={w}")
            )
        return "\n\n".join(parts)


def _weight_cell(context, weight, workload, max_time, seed):
    """Engine task: one fixed-power tracking run at one input weight.

    Returns the (times, power, actuation) arrays rather than the live
    coordinator so the payload pickles cheaply back to the parent.
    """
    targets = list(HW_FIXED_TARGETS)
    targets[1] = POWER_TARGET
    variant = context.variant(input_weight_override=weight)
    session = build_session(YUKTA_HW_SSV_OS_SSV, variant)
    session.hw_controller.set_targets(targets)
    session.sw_controller.set_targets(SW_FIXED_TARGETS)
    coordinator = MultilayerCoordinator(
        session.hw_controller, session.sw_controller
    )
    board = Board(make_application(workload), spec=variant.spec, seed=seed)
    period_steps = variant.spec.period_steps()
    while not board.done and board.time < max_time:
        board.run_period(period_steps)
        if board.done:
            break
        coordinator.control_step(board, period_steps)
    times = np.array([r.time for r in coordinator.records])
    power = np.array([r.outputs_hw[1] for r in coordinator.records])
    actuation = np.array(
        [[r.actuation_hw[0], r.actuation_hw[2]] for r in coordinator.records]
    )
    return times, power, actuation


def run(context: DesignContext = None, workload="blackscholes", max_time=120.0,
        seed=7, jobs=None) -> Fig17Result:
    """Regenerate Figure 17 (``jobs`` fans the weight settings out)."""
    from .engine import parallel_map

    context = context or DesignContext.create()
    result = Fig17Result(list(INPUT_WEIGHTS))
    tasks = [
        ("call", (_weight_cell, (weight, workload, max_time, seed), {}))
        for weight in INPUT_WEIGHTS
    ]
    flat = parallel_map(tasks, context, jobs=jobs)
    for weight, (times, power, actuation) in zip(INPUT_WEIGHTS, flat):
        result.series[weight] = (times, power)
        skip = max(len(power) // 4, 4)
        steady = power[skip:]
        diffs = np.diff(steady) if steady.size > 1 else np.zeros(1)
        # Actuation activity: how many quantization notches the controller
        # moves its knobs per period (the paper's eager-vs-sluggish axis).
        if actuation.shape[0] > 1:
            moves = (
                np.abs(np.diff(actuation[:, 0])) / 1.0  # core notches
                + np.abs(np.diff(actuation[:, 1])) / 0.1  # frequency notches
            )
            activity = float(moves.mean())
        else:
            activity = 0.0
        result.stats[weight] = {
            "ripple": float(np.std(diffs)),
            "actuation_activity": activity,
            "settle_mean": float(steady.mean()) if steady.size else float("nan"),
            "rms_dev": float(np.sqrt(np.mean((steady - POWER_TARGET) ** 2)))
            if steady.size else float("nan"),
        }
    return result
