"""Figure 16: sensitivity to the uncertainty guardband.

(a) Achieved output-deviation bounds versus the guardband (+-40% ... +-500%):
    the bound a synthesized controller actually guarantees is the achieved
    H-infinity level times the designed bound over the accuracy boost; the
    figure reports it normalized to the +-40% design.
(b) ExD of Yukta: HW SSV + OS SSV at each guardband (normalized to
    Coordinated heuristic): the default +-40% should be best, with large
    guardbands degrading slowly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .report import render_table
from .runner import run_workload
from .schemes import COORDINATED_HEURISTIC, YUKTA_HW_SSV_OS_SSV, DesignContext

__all__ = ["Fig16Result", "run", "GUARDBANDS"]

GUARDBANDS = [0.40, 1.00, 2.50, 5.00]


@dataclass
class Fig16Result:
    guardbands: list
    achieved_bounds: dict = field(default_factory=dict)  # gb -> relative bound
    gamma: dict = field(default_factory=dict)
    peak_mu: dict = field(default_factory=dict)
    exd: dict = field(default_factory=dict)

    def rows_a(self):
        return [
            [f"+-{100 * gb:.0f}%", self.gamma[gb], self.peak_mu[gb],
             self.achieved_bounds[gb]]
            for gb in self.guardbands if gb in self.gamma
        ]

    def rows_b(self):
        return [
            [f"+-{100 * gb:.0f}%", self.exd[gb]]
            for gb in self.guardbands if gb in self.exd
        ]

    def render(self):
        parts = [
            render_table(
                ["guardband", "gamma", "peak mu", "achieved bounds (rel.)"],
                self.rows_a(),
                "Figure 16(a): guaranteed deviation bounds vs guardband "
                "(normalized to the +-40% design)",
            )
        ]
        if self.exd:
            parts.append(
                render_table(["guardband", "normalized ExD"], self.rows_b(),
                             "Figure 16(b): ExD vs guardband")
            )
        return "\n\n".join(parts)


def _exd_cell(context, guardband, scheme, workload, seed):
    """Engine task: one ExD run on a guardband-override variant."""
    variant = context.variant(guardband_override=guardband)
    return run_workload(scheme, workload, variant, seed=seed)


def run(context: DesignContext = None, workloads=("blackscholes", "gamess"),
        include_exd=True, guardbands=None, seed=7, jobs=None) -> Fig16Result:
    """Regenerate Figure 16."""
    from .engine import parallel_map

    context = context or DesignContext.create()
    guardbands = list(guardbands or GUARDBANDS)
    result = Fig16Result(guardbands)
    reference = None
    for gb in guardbands:
        variant = context.variant(guardband_override=gb)
        design = variant.get_hw_design()
        gamma = design.dk_result.hinf.gamma
        boost = design.dk_result and 1.0  # boost folded into relative bound
        achieved = gamma  # relative achieved accuracy scales with gamma
        if reference is None:
            reference = achieved
        result.gamma[gb] = gamma
        result.peak_mu[gb] = design.dk_result.mu.peak_upper
        result.achieved_bounds[gb] = achieved / reference
    if include_exd:
        tasks = [
            ("call", (_exd_cell, (gb, scheme, workload, seed), {}))
            for gb in guardbands
            for workload in workloads
            for scheme in (YUKTA_HW_SSV_OS_SSV, COORDINATED_HEURISTIC)
        ]
        flat = parallel_map(tasks, context, jobs=jobs)
        it = iter(flat)
        for gb in guardbands:
            ratios = []
            for _ in workloads:
                yukta, base = next(it), next(it)
                ratios.append(yukta.exd / base.exd)
            result.exd[gb] = float(np.mean(ratios))
    return result
