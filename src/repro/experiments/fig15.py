"""Figure 15: sensitivity to the output deviation bounds.

(a) Fixed-target tracking: performance of the system versus time for
    hardware-performance bounds of +-20/30/50%, with the fixed targets of
    Sec. VI-E1 (5.5 BIPS, 2.5 W, 0.2 W, 70 degC hardware; 1 / 4.5 BIPS and
    dSC = 1 software).  Tighter bounds should track closer to the target.
(b) ExD minimization (the Fig. 9 experiment) at each bound setting,
    normalized to Coordinated heuristic: wider bounds -> less optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..board import Board
from ..core import MultilayerCoordinator
from ..workloads import make_application
from .metrics import normalize_to
from .report import render_series, render_table
from .runner import run_workload
from .schemes import (
    COORDINATED_HEURISTIC,
    YUKTA_HW_SSV_OS_SSV,
    DesignContext,
    build_session,
)

__all__ = ["Fig15Result", "run", "run_fixed_targets", "BOUND_SETTINGS"]

# The paper's three settings: performance bound 20/30/50%, critical outputs
# scaled proportionally for the software controller.
BOUND_SETTINGS = {
    "+-20%": [0.20, 0.10, 0.10, 0.10],
    "+-30%": [0.30, 0.15, 0.15, 0.15],
    "+-50%": [0.50, 0.25, 0.25, 0.25],
}

# The paper's Sec. VI-E1 targets (5.5 BIPS / 2.5 W / 0.2 W / 70 degC),
# rescaled to this simulator's feasible envelope: at 2.7 W big-cluster
# power the board sustains ~4 BIPS, so 4.0 plays the role of the paper's
# 5.5.  An infeasible fixed target would turn the tracking experiment into
# a saturation experiment and hide the bounds ordering.
HW_FIXED_TARGETS = [4.0, 2.7, 0.25, 77.0]
SW_FIXED_TARGETS = [0.8, 3.2, 1.0]
FIXED_PERF_TARGET = HW_FIXED_TARGETS[0]


def run_fixed_targets(context, workload="blackscholes", max_time=150.0, seed=7):
    """One fixed-target tracking run; returns (times, perf, all-records)."""
    session = build_session(YUKTA_HW_SSV_OS_SSV, context)
    session.hw_controller.set_targets(HW_FIXED_TARGETS)
    session.sw_controller.set_targets(SW_FIXED_TARGETS)
    coordinator = MultilayerCoordinator(session.hw_controller, session.sw_controller)
    board = Board(make_application(workload), spec=context.spec, seed=seed)
    period_steps = context.spec.period_steps()
    while not board.done and board.time < max_time:
        board.run_period(period_steps)
        if board.done:
            break
        coordinator.control_step(board, period_steps)
    times = np.array([r.time for r in coordinator.records])
    perf = np.array([r.outputs_hw[0] for r in coordinator.records])
    return times, perf, coordinator.records


@dataclass
class Fig15Result:
    settings: list
    tracking: dict = field(default_factory=dict)  # setting -> (times, perf)
    tracking_stats: dict = field(default_factory=dict)
    exd: dict = field(default_factory=dict)  # setting -> normalized ExD

    def rows_a(self):
        rows = []
        for setting in self.settings:
            stats = self.tracking_stats[setting]
            rows.append([setting, stats["mean"], stats["rms_dev"],
                         stats["within_bound_frac"]])
        return rows

    def rms_by_setting(self):
        return {s: self.tracking_stats[s]["rms_dev"] for s in self.settings}

    def rows_b(self):
        return [[s, self.exd[s]] for s in self.settings if s in self.exd]

    def render(self):
        parts = [
            render_table(
                ["bounds", "steady perf (BIPS)",
                 f"rms dev from {FIXED_PERF_TARGET}", "fraction within bound"],
                self.rows_a(),
                "Figure 15(a): fixed-target tracking vs deviation bounds",
            )
        ]
        for setting in self.settings:
            times, perf = self.tracking[setting]
            parts.append(render_series(times, perf,
                                       f"Figure 15(a): perf(t) at {setting}"))
        if self.exd:
            parts.append(
                render_table(["bounds", "normalized ExD"], self.rows_b(),
                             "Figure 15(b): ExD vs deviation bounds "
                             "(normalized to Coordinated heuristic)")
            )
        return "\n\n".join(parts)


def _exd_cell(context, bounds, scheme, workload, seed):
    """Engine task: one ExD run on a bounds-override variant.

    Module-level so it pickles; the variant is rebuilt from the shared
    worker context (the persistent cache makes re-synthesis a hit when the
    parent already designed this variant).
    """
    variant = context.variant(bounds_override=bounds)
    return run_workload(scheme, workload, variant, seed=seed)


def run(context: DesignContext = None, workloads=("blackscholes", "gamess"),
        include_exd=True, seed=7, jobs=None) -> Fig15Result:
    """Regenerate Figure 15 (both halves)."""
    from .engine import parallel_map

    context = context or DesignContext.create()
    result = Fig15Result(list(BOUND_SETTINGS))
    perf_range = context.characterization.range_of("bips_total")
    for setting, fractions in BOUND_SETTINGS.items():
        variant = context.variant(bounds_override=fractions)
        times, perf, _ = run_fixed_targets(variant, seed=seed)
        result.tracking[setting] = (times, perf)
        # Skip the initialization stage when scoring steady tracking.
        skip = max(len(perf) // 5, 4)
        steady = perf[skip:]
        target = HW_FIXED_TARGETS[0]
        bound_abs = fractions[0] * perf_range
        result.tracking_stats[setting] = {
            "mean": float(steady.mean()) if steady.size else float("nan"),
            "rms_dev": float(np.sqrt(np.mean((steady - target) ** 2)))
            if steady.size else float("nan"),
            "within_bound_frac": float(np.mean(np.abs(steady - target) <= bound_abs))
            if steady.size else float("nan"),
        }
    if include_exd:
        tasks = [
            ("call", (_exd_cell, (fractions, scheme, workload, seed), {}))
            for setting, fractions in BOUND_SETTINGS.items()
            for workload in workloads
            for scheme in (YUKTA_HW_SSV_OS_SSV, COORDINATED_HEURISTIC)
        ]
        flat = parallel_map(tasks, context, jobs=jobs)
        it = iter(flat)
        for setting in BOUND_SETTINGS:
            ratios = []
            for _ in workloads:
                yukta, base = next(it), next(it)
                ratios.append(yukta.exd / base.exd)
            result.exd[setting] = float(np.mean(ratios))
    return result
