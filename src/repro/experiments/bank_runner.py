"""Banked matrix execution: many experiment cells on one :class:`BoardBank`.

The experiment engine's unit of work is one (scheme, workload, seed) cell —
an independent closed-loop simulation.  Cells that use a *layered* scheme
all share the same control-loop shape (``run_period`` then
``coordinator.control_step``, every 500 ms), so ``B`` of them can advance
through one :class:`~repro.board.bank.BoardBank` in vectorized lockstep:
one bank window replaces ``B`` separate fast-path windows, amortizing the
per-tick Python overhead across boards.

Exactness contract
------------------
:func:`run_cells_banked` produces, per cell, *the same*
:class:`~repro.experiments.metrics.RunMetrics` — bit-identical execution
time, energy, traces, and notes — as :func:`~repro.experiments.runner.
run_workload` would.  That follows from composing two guarantees: the bank
steps each board bit-identically to ``Board.run_period`` (the bank's own
contract), and each board's controller session only ever reads and
actuates its own board, in the same per-period order the serial runner
uses.  ``tests/test_board_bank.py`` and the ``bank-matrix-vs-serial``
oracle assert the composition.

The monolithic-LQG scheme drives a different loop (single fused
controller, no coordinator) and is not banked; callers route it through
:func:`run_workload` instead.

Each cell's ``notes["bank"]`` carries the bank's full lockstep
accounting (``vector_ticks`` / ``scalar_ticks`` / ``fused_blocks`` /
``fused_ticks`` plus stall-peel and refusal events), so sweep summaries
can report how much of a campaign actually rode the vector and fused
kernels.
"""

from __future__ import annotations

from ..board import Board, BoardBank
from ..core import MultilayerCoordinator
from ..telemetry import active_session
from .metrics import RunMetrics
from .runner import instantiate_workload
from .schemes import MONOLITHIC_LQG, build_session

__all__ = ["bankable_scheme", "run_cells_banked"]


def bankable_scheme(scheme_name):
    """Whether a scheme's control loop can ride the lockstep bank."""
    return scheme_name != MONOLITHIC_LQG


def run_cells_banked(cells, context, max_time=600.0, record=False,
                     telemetry=None, on_error="raise"):
    """Run layered-scheme cells as one bank; ordered ``RunMetrics`` list.

    ``cells`` is an iterable of ``(scheme, workload, seed)`` tuples, each
    a layered scheme (:func:`bankable_scheme`).  All boards share the
    context's spec, so they bank together regardless of workload.

    With ``on_error="collect"`` a board whose controller raises is dropped
    from the bank and its result slot becomes a
    :class:`~repro.runtime.CellFailure` — the sibling boards keep running
    (one bad cell must not sink the whole bank).
    """
    cells = list(cells)
    tel = telemetry if telemetry is not None else active_session()
    from ..verify.invariants import active_monitor

    mon = active_monitor()
    boards = []
    coordinators = []
    for scheme, workload, seed in cells:
        if not bankable_scheme(scheme):
            raise ValueError(
                f"{scheme!r} drives the monolithic loop and cannot be "
                "banked; route it through run_workload"
            )
        session = build_session(scheme, context)
        boards.append(Board(instantiate_workload(workload),
                            spec=context.spec, seed=seed, record=record,
                            telemetry=tel))
        coordinators.append(MultilayerCoordinator(
            session.hw_controller,
            session.sw_controller,
            session.hw_optimizer,
            session.sw_optimizer,
            telemetry=tel,
            monitor=mon,
        ))
    bank = BoardBank(boards, telemetry=tel)
    period_steps = context.spec.period_steps()
    # Mirror run_workload's loop per board: the while-condition check,
    # run_period, the post-period done check, then control_step — the bank
    # just advances every live board's period at once.
    active = [i for i, b in enumerate(boards)
              if not b.done and b.time < max_time]
    failed = {}
    while active:
        if tel is not None:
            tel.begin_period(boards[active[0]].time)
        bank.run_period_bank(period_steps, only=active)
        survivors = []
        for i in active:
            board = boards[i]
            if board.done:
                continue
            try:
                coordinators[i].control_step(board, period_steps)
            except Exception as exc:
                if on_error != "collect":
                    raise
                from ..runtime import CellFailure

                scheme, workload, seed = cells[i]
                name = workload if isinstance(workload, str) else "+".join(
                    a.name for a in board.applications
                )
                failed[i] = CellFailure(
                    index=i, label=f"{scheme}:{name}:s{seed}",
                    reason="exception", attempts=1,
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed=board.time)
                continue
            if not board.done and board.time < max_time:
                survivors.append(i)
        active = survivors
    metrics = []
    for i, ((scheme, workload, seed), board, coordinator) in enumerate(zip(
        cells, boards, coordinators
    )):
        if i in failed:
            metrics.append(failed[i])
            continue
        session_hw = coordinator.hw_controller
        name = workload if isinstance(workload, str) else "+".join(
            a.name for a in board.applications
        )
        trace = board.trace.as_arrays() if record and board.trace else {}
        notes = {
            "emergency_trips": board.emergency.state.trip_count,
            "coordinator_records": len(coordinator.records),
            "bank": bank.counters(),
        }
        if hasattr(session_hw, "guardband_exhausted"):
            notes["guardband_exhausted"] = session_hw.guardband_exhausted
        metrics.append(RunMetrics(
            scheme=scheme,
            workload=name,
            execution_time=board.time,
            energy=board.energy,
            completed=board.done,
            trace=trace,
            notes=notes,
        ))
    return metrics
