"""Persistent design-artifact cache (characterization + synthesis results).

Building a :class:`~repro.experiments.DesignContext` means re-running the
training campaign and re-solving the D-K/mu syntheses and LQG Riccati
equations — seconds to minutes of work that is a pure function of the board
spec, the characterization parameters, and the scheme knobs.  This module
memoizes those artifacts to an on-disk cache so repeat sweeps (and every
worker of the parallel experiment engine) skip re-synthesis entirely.

Keying and invalidation
-----------------------
Entries are keyed by a SHA-256 *fingerprint* of the canonicalized inputs
(:func:`fingerprint`), and every stored payload is stamped with
``repro.__version__``: bumping the package version invalidates the whole
cache, and any fingerprint-relevant input change produces a new key.
Corrupted or stale entries are never fatal — a failed load is treated as a
miss (the entry is deleted best-effort and the artifact recomputed).

The cache root resolves, in order: an explicit path, ``$REPRO_CACHE_DIR``,
``~/.cache/repro``.  ``python -m repro cache info|clear`` inspects and
clears it from the command line.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

from . import __version__

__all__ = [
    "DesignCache",
    "fingerprint",
    "default_cache_dir",
    "MISS",
    "atomic_write_bytes",
    "atomic_write_text",
]

# Sentinel distinguishing "no cached value" from a cached None.
MISS = object()


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    A reader — or a run interrupted by a crash or SIGKILL — never observes
    a partial file: the bytes land in a sibling temp file first, are
    (optionally) fsynced, and only then renamed over the destination.  The
    temp file is unlinked on any failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path, text, fsync=True):
    """Atomic UTF-8 text counterpart of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def default_cache_dir():
    """The default on-disk cache root (``$REPRO_CACHE_DIR`` overrides)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _canonical(obj):
    """A stable, hash-friendly representation of design inputs.

    Handles the types that appear in cache keys: dataclasses (BoardSpec,
    ClusterSpec), plain attribute objects (QuantizedRange), numpy values,
    and ordinary containers.  Floats go through ``repr`` so equal values
    hash equally regardless of formatting.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (np.floating, np.integer)):
        return repr(obj.item())
    if isinstance(obj, np.ndarray):
        return f"ndarray{obj.shape}:" + _canonical(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        return f"{type(obj).__name__}(" + _canonical(fields) + ")"
    if isinstance(obj, dict):
        items = sorted((str(k), _canonical(v)) for k, v in obj.items())
        return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in obj) + "]"
    if hasattr(obj, "__dict__"):
        public = {
            k: v for k, v in vars(obj).items() if not k.startswith("__")
        }
        return f"{type(obj).__name__}(" + _canonical(public) + ")"
    return repr(obj)


def fingerprint(*parts):
    """SHA-256 hex digest of the canonicalized parts (the cache key core)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(_canonical(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class DesignCache:
    """A directory of version-stamped pickled design artifacts."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    @classmethod
    def resolve(cls, cache):
        """Normalize a user-facing cache argument.

        ``None``/``False`` disable caching; ``True`` uses the default
        location; a path-like opens that directory; an existing
        :class:`DesignCache` passes through.
        """
        if cache is None or cache is False:
            return None
        if cache is True:
            return cls()
        if isinstance(cache, cls):
            return cache
        return cls(cache)

    # ------------------------------------------------------------------
    def _path(self, key):
        return self.root / f"{key}.pkl"

    def get(self, key):
        """The cached value for ``key``, or :data:`MISS`.

        Any failure — unreadable file, truncated pickle, version or key
        mismatch — counts as a miss; corrupted entries are deleted
        best-effort so the rewrite starts clean.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (
                not isinstance(payload, dict)
                or payload.get("version") != __version__
                or payload.get("key") != key
            ):
                raise ValueError("stale or mismatched cache entry")
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except Exception:
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.hits += 1
        return payload["value"]

    def put(self, key, value):
        """Store ``value`` under ``key`` (atomic, best-effort).

        Write failures (read-only filesystem, unpicklable artifact) are
        swallowed: the cache accelerates, it must never break a run.
        """
        payload = {"version": __version__, "key": key, "value": value}
        try:
            atomic_write_bytes(
                self._path(key),
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                fsync=False,
            )
        except Exception:
            return False
        return True

    def fetch(self, key, builder):
        """Cached value for ``key``, building and storing it on a miss."""
        value = self.get(key)
        if value is MISS:
            value = builder()
            self.put(key, value)
        return value

    # ------------------------------------------------------------------
    def entries(self):
        """``(name, bytes, mtime)`` for every entry, newest first."""
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path.stem, stat.st_size, stat.st_mtime))
        out.sort(key=lambda e: e[2], reverse=True)
        return out

    def info(self):
        """Human-readable summary of the cache directory."""
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        lines = [
            f"cache dir: {self.root}",
            f"entries: {len(entries)}  total: {total / 1e6:.2f} MB  "
            f"(version stamp: {__version__})",
        ]
        for name, size, _ in entries:
            lines.append(f"  {name[:16]}...  {size / 1e3:.1f} kB")
        return "\n".join(lines)

    def clear(self):
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.pkl") if self.root.is_dir() else []:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
