"""Signal metadata: the vocabulary of a Yukta controller interface.

A Yukta layer declares three kinds of signals (Sec. III-C of the paper):

* :class:`InputSignal` — an actuated knob with *saturation* (a range) and
  *quantization* (the discrete levels the platform supports);
* :class:`OutputSignal` — a monitored goal with a designer-specified
  *deviation bound* expressed as a fraction of the output's observed range;
* :class:`ExternalSignal` — a read-only signal imported from another layer,
  carrying that layer's interface metadata.

The :class:`InterfaceRecord` bundles the metadata two design teams exchange
in the Fig. 3 design flow.
"""

from .interface import InterfaceRecord, exchange_interfaces
from .quantization import QuantizedRange
from .signal_types import ExternalSignal, InputSignal, OutputSignal, SignalDirection

__all__ = [
    "QuantizedRange",
    "InputSignal",
    "OutputSignal",
    "ExternalSignal",
    "SignalDirection",
    "InterfaceRecord",
    "exchange_interfaces",
]
