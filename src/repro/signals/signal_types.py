"""Typed signal declarations for controller layers."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .quantization import QuantizedRange

__all__ = ["SignalDirection", "InputSignal", "OutputSignal", "ExternalSignal"]


class SignalDirection(enum.Enum):
    """Role of a signal as seen from one layer's controller."""

    INPUT = "input"  # actuated by this layer's controller
    OUTPUT = "output"  # observed goal of this layer's controller
    EXTERNAL = "external"  # read-only, imported from another layer


@dataclass(frozen=True)
class InputSignal:
    """An actuated knob (e.g. big-cluster frequency).

    Attributes
    ----------
    name:
        Globally unique signal name.
    allowed:
        Saturation + quantization of the knob.
    weight:
        Actuation-effort weight W (Sec. IV-A); higher means the controller
        is more reluctant to move this knob.
    unit:
        Human-readable unit for reports.
    """

    name: str
    allowed: QuantizedRange
    weight: float = 1.0
    unit: str = ""

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"input weight must be positive, got {self.weight}")

    def describe(self):
        return (
            f"{self.name} in [{self.allowed.low}, {self.allowed.high}] "
            f"({self.allowed.n_levels} levels), weight={self.weight}"
        )


@dataclass(frozen=True)
class OutputSignal:
    """An observed goal (e.g. big-cluster power).

    Attributes
    ----------
    bound_fraction:
        Allowed deviation from target as a fraction of ``value_range``
        (e.g. 0.10 for the paper's +-10% power bounds).
    value_range:
        The output's observed range from the characterization runs
        (Sec. IV-A); the absolute bound is ``bound_fraction * value_range``.
    critical:
        Whether the output is safety-critical (power/temperature in the
        paper get the tighter +-10% bounds; performance gets +-20%).
    enforce_as_limit:
        Limit-style outputs (temperature in the prototype) only need
        *upper-bound* enforcement: the runtime controller reacts strongly
        when the output exceeds its target but barely pulls it up from
        below — a chip running cool is not an error.
    """

    name: str
    bound_fraction: float
    value_range: float
    critical: bool = False
    enforce_as_limit: bool = False
    unit: str = ""

    def __post_init__(self):
        if not 0.0 < self.bound_fraction <= 1.0:
            raise ValueError(
                f"bound_fraction must be in (0, 1], got {self.bound_fraction}"
            )
        if self.value_range <= 0:
            raise ValueError(f"value_range must be positive, got {self.value_range}")

    @property
    def absolute_bound(self):
        """Allowed absolute deviation of the output from its target."""
        return self.bound_fraction * self.value_range

    def describe(self):
        tag = "critical" if self.critical else "non-critical"
        return (
            f"{self.name}: +-{100 * self.bound_fraction:.0f}% of range "
            f"{self.value_range} ({tag})"
        )


@dataclass(frozen=True)
class ExternalSignal:
    """A read-only signal imported from another layer (Sec. III-B).

    Exactly one of ``allowed`` / ``bound`` is set, depending on whether the
    signal is an input or an output in its home layer — that is the interface
    metadata the other team shares (Fig. 3).
    """

    name: str
    source_layer: str
    allowed: QuantizedRange | None = None
    bound: float | None = None
    unit: str = ""

    def __post_init__(self):
        if (self.allowed is None) == (self.bound is None):
            raise ValueError(
                "external signal needs exactly one of allowed levels "
                "(if it is an input in its home layer) or a deviation bound "
                "(if it is an output there)"
            )

    @property
    def value_scale(self):
        """A representative magnitude for normalization in the plant model."""
        if self.allowed is not None:
            return max(abs(self.allowed.low), abs(self.allowed.high), 1e-12)
        return max(self.bound, 1e-12)

    def describe(self):
        if self.allowed is not None:
            return (
                f"{self.name} (from {self.source_layer}): levels in "
                f"[{self.allowed.low}, {self.allowed.high}]"
            )
        return f"{self.name} (from {self.source_layer}): bound +-{self.bound}"


# Convenience alias used in layer specs.
Signal = InputSignal | OutputSignal | ExternalSignal
