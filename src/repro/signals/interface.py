"""Interface-metadata exchange between layer design teams (Fig. 3).

Two teams designing controllers for neighbouring layers exchange:

* for each signal one layer exports as an *external signal* to the other:
  the allowed discrete levels (if it is an input in its home layer) or the
  deviation bound (if it is an output there);
* for outputs *common* to both layers (e.g. both limit temperature): each
  layer's deviation bound, so the controllers can anticipate each other's
  response.

:func:`exchange_interfaces` performs that hand-shake mechanically given two
layer specs, producing the :class:`ExternalSignal` declarations each side
should use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .signal_types import ExternalSignal

__all__ = ["InterfaceRecord", "exchange_interfaces"]


@dataclass
class InterfaceRecord:
    """The metadata one layer publishes about its signals."""

    layer_name: str
    input_levels: dict = field(default_factory=dict)  # name -> QuantizedRange
    output_bounds: dict = field(default_factory=dict)  # name -> absolute bound

    def external_signal_for(self, name):
        """Build the ExternalSignal declaration another layer should import."""
        if name in self.input_levels:
            return ExternalSignal(
                name=name, source_layer=self.layer_name, allowed=self.input_levels[name]
            )
        if name in self.output_bounds:
            return ExternalSignal(
                name=name, source_layer=self.layer_name, bound=self.output_bounds[name]
            )
        raise KeyError(f"layer {self.layer_name!r} does not publish signal {name!r}")

    @property
    def published_names(self):
        return sorted(set(self.input_levels) | set(self.output_bounds))


def exchange_interfaces(record_a: InterfaceRecord, record_b: InterfaceRecord):
    """Perform the Fig. 3 hand-shake between two layers.

    Returns
    -------
    ``(externals_for_a, externals_for_b, common_outputs)`` where the first
    two are lists of :class:`ExternalSignal` (everything the *other* layer
    publishes), and ``common_outputs`` maps output names monitored by both
    layers to the pair of absolute bounds ``(bound_a, bound_b)``.
    """
    externals_for_a = [
        record_b.external_signal_for(name) for name in record_b.published_names
    ]
    externals_for_b = [
        record_a.external_signal_for(name) for name in record_a.published_names
    ]
    common = {}
    for name in record_a.output_bounds:
        if name in record_b.output_bounds:
            common[name] = (record_a.output_bounds[name], record_b.output_bounds[name])
    return externals_for_a, externals_for_b, common
