"""Saturation and quantization of actuated signals.

SSV design takes, for every input, the discrete values the platform allows
(Sec. II-B).  :class:`QuantizedRange` is that description: an inclusive range
plus a step (or an explicit level list), with helpers to clamp-and-snap
continuous controller commands onto legal platform settings.
"""

from __future__ import annotations

import math
from bisect import bisect_left

import numpy as np

__all__ = ["QuantizedRange"]


class QuantizedRange:
    """An inclusive, discretized range of allowed values.

    Parameters
    ----------
    low, high:
        Saturation limits (inclusive).
    step:
        Spacing between allowed levels.  Mutually exclusive with ``levels``.
    levels:
        Explicit sorted sequence of allowed values (overrides low/high/step
        derivation but must lie within [low, high]).
    """

    def __init__(self, low, high, step=None, levels=None):
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = float(low)
        self.high = float(high)
        if levels is not None:
            arr = np.asarray(sorted(float(v) for v in levels))
            if arr.size == 0:
                raise ValueError("levels must be non-empty")
            if arr[0] < self.low - 1e-12 or arr[-1] > self.high + 1e-12:
                raise ValueError("levels must lie within [low, high]")
            self._levels = arr
            self.step = float(np.min(np.diff(arr))) if arr.size > 1 else 0.0
        else:
            if step is None:
                raise ValueError("provide either step or levels")
            if step <= 0:
                raise ValueError(f"step must be positive, got {step}")
            self.step = float(step)
            count = int(math.floor((self.high - self.low) / self.step + 1e-9)) + 1
            self._levels = self.low + self.step * np.arange(count)
        # Plain-list mirror for snap(): controllers snap every actuation,
        # and a bisect on a Python list beats an argmin dispatch ~5x.
        self._levels_list = [float(v) for v in self._levels]

    @property
    def levels(self):
        """The allowed discrete values, ascending."""
        return self._levels.copy()

    @property
    def n_levels(self):
        return int(self._levels.size)

    @property
    def span(self):
        """Width of the saturation range."""
        return self.high - self.low

    @property
    def midpoint(self):
        return 0.5 * (self.low + self.high)

    def clamp(self, value):
        """Saturate a continuous value into [low, high]."""
        return float(min(max(value, self.low), self.high))

    def snap(self, value):
        """Clamp then round to the nearest allowed level."""
        return self._levels_list[self.snap_index(value)]

    def snap_index(self, value):
        """Index of the level that :meth:`snap` would return.

        Equivalent to ``argmin(|levels - value|)`` (ties resolve to the
        lower level, matching argmin's first-minimum rule) but via bisect
        on the sorted levels — this sits on every actuation path.
        """
        value = self.clamp(value)
        levels = self._levels_list
        i = bisect_left(levels, value)
        if i == 0:
            return 0
        if i == len(levels):
            return len(levels) - 1
        return i - 1 if value - levels[i - 1] <= levels[i] - value else i

    def contains(self, value, tol=1e-9):
        """Whether ``value`` is (within tolerance) an allowed level."""
        return bool(np.any(np.abs(self._levels - value) <= tol))

    def quantization_radius(self):
        """Worst-case distance between a clamped command and its snap.

        Used to size the input-discretization uncertainty in the SSV design
        (the Delta_in block of Fig. 1).  With a single allowed level the
        whole saturation range may separate a command from that level.
        """
        boundary_slack = max(self.high - self._levels[-1],
                             self._levels[0] - self.low, 0.0)
        if self._levels.size < 2:
            return float(boundary_slack)
        half_gap = float(np.max(np.diff(self._levels)) / 2.0)
        return max(half_gap, float(boundary_slack))

    def __contains__(self, value):
        return self.contains(value)

    def __iter__(self):
        return iter(self._levels)

    def __len__(self):
        return self.n_levels

    def __eq__(self, other):
        if not isinstance(other, QuantizedRange):
            return NotImplemented
        return (
            self.low == other.low
            and self.high == other.high
            and self._levels.shape == other._levels.shape
            and bool(np.allclose(self._levels, other._levels))
        )

    def __repr__(self):
        return (
            f"QuantizedRange(low={self.low}, high={self.high}, "
            f"n_levels={self.n_levels})"
        )
