"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``            render Tables I-IV
``design``            run the two-layer design flow and print the summaries
``run``               run one workload under one scheme
``fig9`` .. ``fig17`` regenerate a paper figure (text rendering)
``hwcost``            the Sec. VI-D hardware implementation analysis
``exhaustion``        the guardband-exhaustion detection experiment
``resilience``        the fault-matrix sweep under the safe-mode supervisor
``three-layer``       the Sec. III-D three-layer demonstration
``rack``              the rack-scale (third layer) campaign triple
``serve``             long-lived concurrent experiment server (HTTP/JSON)
``loadgen``           deterministic open-loop load generator for ``serve``
``trace``             summarize a recorded telemetry directory
``status``            live progress/ETA/health of a (running) campaign
``report``            combined markdown/HTML campaign report
``verify``            invariant monitor + oracle pairs + golden traces

Telemetry
---------
Every experiment command accepts ``--telemetry DIR``: the run then records
control-loop spans (``spans.jsonl`` + Perfetto-loadable ``trace.json``), a
metrics snapshot (``metrics.prom`` / ``metrics.json``), and flight-recorder
dumps (``flight-*.json``) triggered by supervisor transitions and fault
injections.  Inspect a finished directory with ``python -m repro trace DIR``.
``--profile`` additionally prices each control period's phases (sensing /
controller / optimizer / actuation / plant step / telemetry) into
p50/p90/p99 histograms; campaign runs with ``--checkpoint-dir`` or
``--telemetry`` also append a live ``events.jsonl`` stream that ``repro
status DIR`` and ``repro report DIR`` read back (see
``docs/OBSERVABILITY.md``).

Fault tolerance
---------------
Experiment commands also accept ``--checkpoint-dir DIR`` (journal each
completed campaign cell), ``--resume`` (replay journaled cells and run
only the missing ones — bit-identical to an uninterrupted run),
``--cell-timeout S`` and ``--max-retries N`` (supervised workers: hung or
crashed cells are killed, retried with exponential backoff, and finally
salvaged as structured failures instead of aborting the campaign).  See
``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import argparse
import sys


def _add_context_args(parser):
    parser.add_argument("--samples", type=int, default=160,
                        help="characterization samples per training program")
    parser.add_argument("--seed", type=int, default=1234,
                        help="characterization seed")
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record metrics/spans/flight dumps into DIR")
    parser.add_argument("--profile", action="store_true",
                        help="profile control-loop phases (sensing/"
                             "controller/optimizer/actuation/plant step) "
                             "into p50/p90/p99 histograms (needs "
                             "--telemetry)")
    parser.add_argument("--profile-sample", type=int, default=1, metavar="N",
                        help="profile every Nth control period (default 1 "
                             "= all)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for the experiment matrix "
                             "(-1 = all cores; default serial)")
    parser.add_argument("--batch", type=int, default=None, metavar="B",
                        help="pack up to B same-spec simulations into one "
                             "lockstep board bank per task (bit-identical "
                             "results; composes with --jobs)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="design-artifact cache directory "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent design-artifact cache")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="journal completed campaign cells into DIR "
                             "(append-only, atomically written)")
    parser.add_argument("--resume", action="store_true",
                        help="replay cells already in --checkpoint-dir and "
                             "run only the missing ones (bit-identical to "
                             "an uninterrupted run)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="S",
                        help="kill and retry any cell exceeding S seconds "
                             "of wall-clock (needs --jobs > 1)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="retry a crashed/timed-out/raising cell up to "
                             "N times with exponential backoff (default 2 "
                             "when supervision is active)")


def _resolve_cache(args):
    from repro.cache import DesignCache

    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return DesignCache(args.cache_dir)
    return DesignCache()


def _make_context(args):
    from repro.experiments import DesignContext

    print("Building design context (characterization + synthesis)...",
          file=sys.stderr)
    context = DesignContext.create(samples_per_program=args.samples,
                                   seed=args.seed, cache=_resolve_cache(args))
    if context.cache is not None and context.cache.hits:
        print(f"Design cache: {context.cache.hits} hit(s) from "
              f"{context.cache.root}", file=sys.stderr)
    return context


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Yukta (ISCA 2018) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="render Tables I-IV")

    p_trace = sub.add_parser(
        "trace", help="summarize a recorded --telemetry directory"
    )
    p_trace.add_argument("dir", help="telemetry output directory")

    p_status = sub.add_parser(
        "status",
        help="progress/ETA/retry health of a campaign directory "
             "(works on finished, crashed, and still-running campaigns)",
    )
    p_status.add_argument("dir", help="campaign (checkpoint or telemetry) "
                                      "directory holding events.jsonl")

    p_report = sub.add_parser(
        "report",
        help="combined campaign report: health + control-quality KPIs + "
             "phase profile + telemetry headlines",
    )
    p_report.add_argument("dir", help="campaign directory (checkpoint "
                                      "journal and/or telemetry artifacts)")
    p_report.add_argument("--out", metavar="FILE", default=None,
                          help="write the markdown report to FILE instead "
                               "of stdout")
    p_report.add_argument("--html", metavar="FILE", default=None,
                          help="also write a standalone HTML rendering")
    p_report.add_argument("--title", default=None,
                          help="report title (default: directory name)")

    p_design = sub.add_parser("design", help="two-layer design flow summary")
    _add_context_args(p_design)

    p_run = sub.add_parser("run", help="run one workload under one scheme")
    _add_context_args(p_run)
    p_run.add_argument("scheme", help="scheme name (see 'tables')")
    p_run.add_argument("workload", help="program or mix name")

    figure_commands = {
        "fig9": ("fig9", dict(quick=False)),
        "fig10": ("fig10", {}),
        "fig12": ("fig12", dict(quick=False)),
        "fig14": ("fig14", {}),
        "fig15": ("fig15", {}),
        "fig16": ("fig16", {}),
        "fig17": ("fig17", {}),
        "hwcost": ("hwcost", {}),
        "exhaustion": ("exhaustion", {}),
        "three-layer": ("three_layer", {}),
    }
    for name in figure_commands:
        p_fig = sub.add_parser(name, help=f"regenerate {name}")
        _add_context_args(p_fig)

    p_rack = sub.add_parser(
        "rack",
        help="rack-scale campaign: facility cap distribution over a "
             "board bank (cap step, job stream, fault reallocation)",
    )
    _add_context_args(p_rack)
    p_rack.add_argument("--quick", action="store_true",
                        help="reduced job stream / shorter horizons")
    p_rack.add_argument("--boards", type=int, default=4,
                        help="boards in the rack (default 4)")

    p_serve = sub.add_parser(
        "serve",
        help="start the control-plane service: a concurrent experiment "
             "server with request coalescing, cross-request bank "
             "batching, and bounded-queue admission (see docs/SERVING.md)",
    )
    _add_context_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8752,
                         help="listen port (0 = ephemeral; default 8752)")
    p_serve.add_argument("--batch-wait", type=float, default=0.02,
                         metavar="S",
                         help="how long to hold a bankable cell for "
                              "co-arrivals before dispatching (default "
                              "0.02 s)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="admission queue bound; overflow gets a "
                              "structured 429 (default 64)")
    p_serve.add_argument("--serve-dir", metavar="DIR", default=None,
                         help="campaign directory for events.jsonl and the "
                              "default result store (default: a fresh "
                              "temp dir)")
    p_serve.add_argument("--default-deadline", type=float, default=None,
                         metavar="S",
                         help="deadline applied to requests that do not "
                              "carry their own deadline_s")

    p_load = sub.add_parser(
        "loadgen",
        help="fire a deterministic open-loop request burst at a running "
             "'repro serve' and report rps / p50 / p99 / coalesce rate",
    )
    p_load.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:8752")
    p_load.add_argument("--requests", type=int, default=50,
                        help="requests to fire (default 50)")
    p_load.add_argument("--rate", type=float, default=20.0,
                        help="offered arrival rate, req/s (0 = all at "
                             "once; default 20)")
    p_load.add_argument("--duplicates", type=float, default=0.3,
                        help="probability a request repeats an earlier one "
                             "verbatim (default 0.3)")
    p_load.add_argument("--seed", type=int, default=0,
                        help="stream + arrival seed (default 0)")
    p_load.add_argument("--max-time", type=float, default=6.0,
                        help="simulated horizon per requested cell "
                             "(default 6 s)")
    p_load.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="per-request deadline_s to attach")
    p_load.add_argument("--record", action="store_true",
                        help="request full traces (bigger responses)")
    p_load.add_argument("--timeout", type=float, default=120.0,
                        help="client-side transport timeout (default 120)")
    p_load.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a "
                             "summary line")

    p_res = sub.add_parser(
        "resilience",
        help="fault-matrix sweep under the safe-mode supervisor",
    )
    _add_context_args(p_res)
    p_res.add_argument("--quick", action="store_true",
                       help="reduced 3-scenario fault matrix")
    p_res.add_argument("--fault-time", type=float, default=60.0,
                       help="fault onset time (s)")

    p_verify = sub.add_parser(
        "verify",
        help="invariant monitor + differential oracles + golden traces",
    )
    p_verify.add_argument("--quick", action="store_true",
                          help="CI smoke configuration (smaller budgets)")
    p_verify.add_argument("--regen-golden", action="store_true",
                          help="re-mint the golden traces instead of "
                               "comparing against them")
    p_verify.add_argument("--golden-dir", metavar="DIR", default=None,
                          help="golden-trace directory "
                               "(default tests/golden/)")
    p_verify.add_argument("--samples", type=int, default=None,
                          help="characterization samples per training "
                               "program (default 48 quick / 120 full)")
    p_verify.add_argument("--seed", type=int, default=99,
                          help="verification context seed")
    p_verify.add_argument("--jobs", "-j", type=int, default=2,
                          help="worker processes for the parallel oracle")
    p_verify.add_argument("--telemetry", metavar="DIR", default=None,
                          help="record metrics/spans/flight dumps into DIR")

    p_bench = sub.add_parser(
        "bench",
        help="run the performance benchmark (benchmarks/bench_perf.py) "
             "and enforce its speedup floors",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI smoke configuration (smaller budgets)")
    p_bench.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes for the matrix benchmark")
    p_bench.add_argument("--out", metavar="FILE", default=None,
                         help="write results JSON here "
                              "(default BENCH_perf.json at the repo root)")

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the design-artifact cache"
    )
    p_cache.add_argument("action", choices=("info", "clear"),
                         help="'info' lists entries, 'clear' deletes them")
    p_cache.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache directory (default $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")

    args = parser.parse_args(argv)

    if args.command == "tables":
        from repro.experiments import tables

        print(tables.render_all())
        return 0

    if args.command == "trace":
        from repro.telemetry import summarize_dir

        try:
            print(summarize_dir(args.dir))
        except FileNotFoundError as exc:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "status":
        from repro.obs import render_status

        try:
            print(render_status(args.dir))
        except FileNotFoundError as exc:
            print(f"repro status: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "report":
        from repro.obs import build_report, to_html

        try:
            markdown = build_report(args.dir, title=args.title)
        except FileNotFoundError as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(markdown)
            print(f"report written to {args.out}", file=sys.stderr)
        if args.html:
            from pathlib import Path

            Path(args.html).write_text(to_html(
                markdown, title=args.title or f"repro campaign: {args.dir}"))
            print(f"HTML report written to {args.html}", file=sys.stderr)
        if not args.out and not args.html:
            print(markdown, end="")
        return 0

    if args.command == "bench":
        import runpy
        from pathlib import Path

        bench = (Path(__file__).resolve().parents[2] / "benchmarks"
                 / "bench_perf.py")
        if not bench.is_file():
            print(f"benchmark script not found: {bench} "
                  "(repro bench needs the repository checkout)",
                  file=sys.stderr)
            return 2
        bench_argv = []
        if args.quick:
            bench_argv.append("--quick")
        if args.jobs is not None:
            bench_argv += ["--jobs", str(args.jobs)]
        if args.out is not None:
            bench_argv += ["--out", args.out]
        module = runpy.run_path(str(bench))
        return module["main"](bench_argv)

    if args.command == "loadgen":
        import json as _json

        from repro.serve import run_loadgen, wait_ready

        wait_ready(args.url, timeout=args.timeout)
        report = run_loadgen(
            args.url, requests=args.requests, rate=args.rate,
            duplicates=args.duplicates, seed=args.seed,
            max_time=args.max_time, record=args.record,
            deadline_s=args.deadline, timeout=args.timeout,
        )
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.all_ok else 1

    if args.command == "cache":
        from repro.cache import DesignCache

        cache = DesignCache(args.cache_dir) if args.cache_dir else DesignCache()
        if args.action == "info":
            print(cache.info())
        else:
            removed = cache.clear()
            print(f"removed {removed} cache entr"
                  f"{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0

    session = None
    if getattr(args, "profile", False) and not getattr(args, "telemetry",
                                                       None):
        parser.error("--profile requires --telemetry")
    if getattr(args, "telemetry", None):
        from repro.telemetry import TelemetrySession, activate

        session = activate(TelemetrySession(
            args.telemetry,
            profile=bool(getattr(args, "profile", False)),
            profile_sample=max(int(getattr(args, "profile_sample", 1) or 1),
                               1),
        ))
        print(f"Telemetry enabled: recording to {args.telemetry}"
              + (" (phase profiling on)"
                 if getattr(args, "profile", False) else ""),
              file=sys.stderr)
    policy = None
    wants_runtime = (
        getattr(args, "checkpoint_dir", None)
        or getattr(args, "resume", False)
        or getattr(args, "cell_timeout", None) is not None
        or getattr(args, "max_retries", None) is not None
    )
    if wants_runtime:
        from repro.runtime import ExecutionPolicy, activate_policy

        if getattr(args, "resume", False) and not args.checkpoint_dir:
            parser.error("--resume requires --checkpoint-dir")
        policy = activate_policy(ExecutionPolicy(
            checkpoint_dir=args.checkpoint_dir,
            resume=bool(getattr(args, "resume", False)),
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
        ))
        if args.checkpoint_dir:
            print(f"Checkpointing campaign cells to {args.checkpoint_dir}"
                  + (" (resuming)" if policy.resume else ""),
                  file=sys.stderr)
    try:
        return _dispatch(args, figure_commands)
    finally:
        if policy is not None:
            from repro.runtime import deactivate_policy

            deactivate_policy()
        if session is not None:
            if session.profiler is not None:
                print(session.profiler.render(), file=sys.stderr)
            session.close()
            print(
                f"Telemetry written to {args.telemetry} "
                "(inspect with: python -m repro trace "
                f"{args.telemetry})",
                file=sys.stderr,
            )


def _serve_forever(args, context):
    """Run the control-plane service in the foreground until SIGINT/TERM.

    The design-artifact cache (``--cache-dir``) and the serve result
    store are separate concerns: results default to
    ``<serve-dir>/results`` so a throwaway server never pollutes the
    global design cache, while ``--cache-dir`` points both at a shared
    root for warm restarts.  ``--no-cache`` disables the result store
    (every request executes or coalesces; nothing persists).
    """
    import asyncio
    import signal

    from repro.cache import DesignCache
    from repro.runtime import RetryPolicy
    from repro.serve import ExperimentServer
    from repro.telemetry import active_session

    if getattr(args, "no_cache", False):
        store = None
    elif getattr(args, "cache_dir", None):
        store = DesignCache(args.cache_dir)
    else:
        store = True  # resolved to <serve_dir>/results below

    retry = None
    if getattr(args, "max_retries", None) is not None:
        retry = RetryPolicy(max_retries=max(int(args.max_retries), 0))

    async def _amain():
        serve_dir = args.serve_dir
        server = ExperimentServer(
            context,
            host=args.host,
            port=args.port,
            jobs=args.jobs or 0,
            batch=args.batch or 1,
            batch_wait=args.batch_wait,
            queue_limit=args.queue_limit,
            cache=None if store is True else store,
            serve_dir=serve_dir,
            default_deadline=args.default_deadline,
            retry=retry,
            telemetry=active_session(),
        )
        if store is True:
            server.store = DesignCache(server.serve_dir / "results")
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        print(f"repro serve listening on {server.url} "
              f"(jobs={server.jobs}, batch={server.batch}, "
              f"queue_limit={server.queue_limit}, "
              f"serve_dir={server.serve_dir}) -- Ctrl-C to stop",
              file=sys.stderr)
        try:
            await server.wait_stopped()
        finally:
            await server.stop()
            print("repro serve: stopped", file=sys.stderr)

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0


def _dispatch(args, figure_commands):
    if args.command == "verify":
        from repro.telemetry import active_session
        from repro.verify import run_verify

        report = run_verify(
            quick=args.quick,
            regen_golden=args.regen_golden,
            golden_dir=args.golden_dir,
            samples=args.samples,
            seed=args.seed,
            jobs=args.jobs,
            telemetry=active_session(),
            log=lambda line: print(line, file=sys.stderr),
        )
        print(report.render())
        return 0 if report.ok else 1

    if args.command == "rack":
        # Rack campaigns build their own plant specs — no characterization
        # context needed, so skip the design-flow spin-up entirely.
        from repro.experiments import rack as rack_experiment

        result = rack_experiment.run(
            None, quick=args.quick, seed=args.seed, jobs=args.jobs,
            batch=args.batch, n_boards=args.boards,
            progress=lambda line: print(line, file=sys.stderr),
        )
        print(result.render())
        return 0

    context = _make_context(args)

    if args.command == "serve":
        return _serve_forever(args, context)

    if args.command == "design":
        print(context.get_hw_design().summary())
        print()
        print(context.get_sw_design().summary())
        return 0

    if args.command == "run":
        from repro.experiments import run_workload

        metrics = run_workload(args.scheme, args.workload, context)
        print(metrics.summary())
        return 0

    if args.command == "resilience":
        from repro.experiments import resilience

        result = resilience.run(context, quick=args.quick,
                                fault_time=args.fault_time,
                                jobs=args.jobs,
                                batch=bool(args.batch),
                                progress=lambda line: print(line, file=sys.stderr))
        print(result.render())
        return 0

    module_name, kwargs = figure_commands[args.command]
    import importlib
    import inspect

    module = importlib.import_module(f"repro.experiments.{module_name}")
    parameters = inspect.signature(module.run).parameters
    if "jobs" in parameters:
        kwargs = dict(kwargs, jobs=args.jobs)
    if "batch" in parameters and args.batch:
        kwargs = dict(kwargs, batch=args.batch)
    result = module.run(context, **kwargs)
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
