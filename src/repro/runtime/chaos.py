"""Chaos harness: deterministic fault injection for the campaign executor.

The Yukta supervisor (PR 1) was validated by injecting faults *inside* the
simulation; this module does the same for the execution layer.  A
:class:`ChaosPolicy` attached to a supervised run kills workers with
SIGKILL, wedges cells past their deadline, raises synthetic errors, and
corrupts checkpoint entries — the exact failure modes the executor claims
to survive.  Tests and the CI chaos-smoke job assert that a matrix run
under chaos still completes with every cell either a real result or a
structured :class:`~repro.runtime.executor.CellFailure`.

Determinism: every injection decision is drawn from a
``random.Random(f"{seed}:{kind}:{index}:{attempt}")`` stream, so a chaos
run is exactly reproducible from its seed — no global RNG state, no
cross-talk between cells.  With ``first_attempt_only=True`` (the default)
probabilistic kills/hangs/errors fire only on attempt 0, so any retry
budget guarantees eventual completion.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

__all__ = ["ChaosError", "ChaosPolicy", "corrupt_checkpoint_entry"]


class ChaosError(RuntimeError):
    """A synthetic cell failure raised by the chaos harness."""


@dataclass
class ChaosPolicy:
    """What to break, how often, and with what seed.

    Probabilities are per (cell, attempt) draws; the explicit
    ``kill_cells``/``hang_cells``/``error_cells`` index tuples force an
    injection on those cells' first attempts regardless of probability,
    which is what the acceptance tests use to script "≥3 kills" exactly.
    """

    seed: int = 0
    kill_prob: float = 0.0  # SIGKILL own worker process
    hang_prob: float = 0.0  # sleep past any sane deadline
    delay_prob: float = 0.0  # small latency wobble (not a failure)
    error_prob: float = 0.0  # raise ChaosError
    delay_s: float = 0.02
    hang_s: float = 30.0
    kill_cells: tuple = ()
    hang_cells: tuple = ()
    error_cells: tuple = ()
    first_attempt_only: bool = True
    injected: dict = field(default_factory=dict)

    def _draw(self, kind, index, attempt):
        import random

        return random.Random(f"{self.seed}:{kind}:{index}:{attempt}").random()

    def _fires(self, kind, prob, cells, index, attempt):
        if self.first_attempt_only and attempt > 0:
            return False
        if index in cells:
            # Scripted cells honor first_attempt_only too: with it off
            # they fail *every* attempt (the retry-exhaustion scenario).
            return True
        return prob > 0.0 and self._draw(kind, index, attempt) < prob

    def _note(self, kind):
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def apply(self, index, attempt, in_process=False):
        """Run the injection gauntlet for one cell attempt.

        Called inside the worker just before the task executes.  With
        ``in_process=True`` (the serial executor path) a kill becomes a
        :class:`ChaosError` — SIGKILLing the only process would take the
        test runner down with it.
        """
        if self._fires("kill", self.kill_prob, self.kill_cells, index, attempt):
            self._note("kill")
            if in_process:
                raise ChaosError(f"chaos: simulated kill of cell {index}")
            os.kill(os.getpid(), signal.SIGKILL)
        if self._fires("hang", self.hang_prob, self.hang_cells, index, attempt):
            self._note("hang")
            time.sleep(self.hang_s)
        if self._fires("error", self.error_prob, self.error_cells, index,
                       attempt):
            self._note("error")
            raise ChaosError(f"chaos: injected error in cell {index}")
        # Delays are benign perturbations, exempt from first_attempt_only.
        if self.delay_prob > 0.0 and \
                self._draw("delay", index, attempt) < self.delay_prob:
            self._note("delay")
            time.sleep(self.delay_s)


def corrupt_checkpoint_entry(journal, key, mode="truncate"):
    """Damage one journaled cell payload in place (test-facing).

    ``truncate`` chops the pickle mid-stream; ``garbage`` replaces it with
    non-pickle bytes; ``unlink`` removes the payload while its journal line
    survives.  All three must be detected by
    :meth:`~repro.runtime.checkpoint.CheckpointJournal.get` and turned into
    a re-run, never a crash or a silently wrong result.
    """
    path = journal._cell_path(key)
    if mode == "unlink":
        path.unlink()
        return
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "garbage":
        path.write_bytes(b"\x00chaos" + data[:8][::-1])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
