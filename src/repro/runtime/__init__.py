"""Fault-tolerant campaign execution (checkpoint/resume + supervision).

The simulation layer survives misbehaving controllers (PR 1's supervisor);
this package makes the *execution* layer survive misbehaving workers.  It
provides the checkpoint journal (:mod:`~repro.runtime.checkpoint`), the
supervised worker pool (:mod:`~repro.runtime.executor`), the chaos test
harness (:mod:`~repro.runtime.chaos`), and the process-wide
:class:`~repro.runtime.policy.ExecutionPolicy` the CLI installs.  See
``docs/RESILIENCE.md`` § "Execution-layer fault tolerance".
"""

from .chaos import ChaosError, ChaosPolicy, corrupt_checkpoint_entry
from .checkpoint import CheckpointJournal, task_key
from .executor import (
    CellExecutionError,
    CellFailure,
    RetryPolicy,
    supervised_map,
)
from .policy import (
    ExecutionPolicy,
    activate_policy,
    active_policy,
    deactivate_policy,
)

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "corrupt_checkpoint_entry",
    "CheckpointJournal",
    "task_key",
    "CellExecutionError",
    "CellFailure",
    "RetryPolicy",
    "supervised_map",
    "ExecutionPolicy",
    "activate_policy",
    "active_policy",
    "deactivate_policy",
]
