"""Campaign checkpointing: an append-only journal of completed cells.

A campaign (scheme × workload × seed matrix, resilience sweep, figure
sweep) is a list of independent engine tasks.  The journal makes that list
*resumable*: every completed cell is persisted as it finishes, so a run
killed hours in — worker crash, OOM, SIGKILL, power loss — replays only
the missing cells on ``--resume`` and still produces bit-identical results
(pickle round-trips preserve float bits, and every cell carries its own
explicit seed).

Layout and durability
---------------------
``<root>/cells/<key>.pkl``
    One pickled payload per completed cell, written atomically
    (:func:`repro.cache.atomic_write_bytes`), where ``<key>`` is the
    cell's SHA-256 design fingerprint (:func:`task_key`).
``<root>/journal.jsonl``
    The append-only index.  A line is appended (flushed + fsynced) only
    *after* its payload file is durable, so a torn write can at worst lose
    the final in-flight cell — never corrupt an earlier one.  Each line
    records the payload's own SHA-256 digest; a corrupted or truncated
    payload (the chaos harness injects both) is detected on load and the
    cell is simply re-run.

Malformed journal lines (the tail of an interrupted append) are skipped,
and the last record for a key wins, so re-running a partially-complete
campaign against the same directory is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from ..cache import MISS, atomic_write_bytes, fingerprint

__all__ = ["CheckpointJournal", "task_key"]


def task_key(context, task):
    """The SHA-256 identity of one engine task under one design context.

    Two tasks share a key exactly when they are guaranteed to produce the
    same result: same characterization fingerprint and design overrides
    (the :class:`~repro.experiments.schemes.DesignContext` identity), and
    same cell parameters.  ``("cell", ...)`` tasks hash their (scheme,
    workload, seed, horizon, record) tuple; ``("call", ...)`` tasks hash
    the target function's qualified name plus its canonicalized arguments.
    """
    kind, payload = task
    if kind == "cell":
        from ..experiments.runner import workload_name

        scheme, workload, seed, max_time, record = payload
        ident = ("cell", scheme, workload_name(workload), seed, max_time,
                 bool(record))
    elif kind == "call":
        fn, args, kwargs = payload
        ident = ("call", f"{fn.__module__}.{fn.__qualname__}", args, kwargs)
    else:
        raise ValueError(f"unknown task kind {kind!r}")
    return fingerprint(
        "task",
        getattr(context, "char_fingerprint", ""),
        getattr(context, "overrides", {}),
        ident,
    )


class CheckpointJournal:
    """Append-only, atomically-written record of completed campaign cells."""

    def __init__(self, root):
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.journal_path = self.root / "journal.jsonl"
        self.recorded = 0  # cells persisted by this instance
        self.resumed = 0  # cells served back from disk
        self.corrupt = 0  # entries rejected (bad digest / torn payload)

    @classmethod
    def resolve(cls, checkpoint):
        """Normalize a user-facing checkpoint argument.

        ``None``/``False`` disable checkpointing; a path-like opens that
        directory; an existing journal passes through.
        """
        if checkpoint is None or checkpoint is False:
            return None
        if isinstance(checkpoint, cls):
            return checkpoint
        return cls(checkpoint)

    # ------------------------------------------------------------------
    def _cell_path(self, key):
        return self.cells_dir / f"{key}.pkl"

    def record(self, key, value, meta=None):
        """Persist one completed cell: payload first, then the journal line."""
        payload = pickle.dumps({"key": key, "value": value},
                               protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        atomic_write_bytes(self._cell_path(key), payload)
        line = json.dumps(
            {"key": key, "sha256": digest, "meta": meta or {}},
            sort_keys=True,
        )
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.recorded += 1

    def index(self):
        """``{key: journal record}`` for every parseable line (last wins).

        Unparseable lines — typically the torn tail of an append that was
        killed mid-write — are skipped silently: losing the in-flight cell
        is the designed failure mode, it just gets re-run.
        """
        entries = {}
        try:
            with open(self.journal_path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and "key" in record:
                        entries[record["key"]] = record
        except OSError:
            return {}
        return entries

    def get(self, key, expected_sha=None):
        """The journaled value for ``key``, or :data:`~repro.cache.MISS`.

        Every failure mode — missing or truncated payload, digest mismatch
        (a corrupted entry), unpicklable bytes, key mismatch — counts as a
        miss, so callers fall back to re-running the cell.
        """
        try:
            payload = self._cell_path(key).read_bytes()
        except OSError:
            self.corrupt += 1
            return MISS
        if expected_sha is not None:
            if hashlib.sha256(payload).hexdigest() != expected_sha:
                self.corrupt += 1
                return MISS
        try:
            record = pickle.loads(payload)
            if not isinstance(record, dict) or record.get("key") != key:
                raise ValueError("checkpoint payload / key mismatch")
        except Exception:
            self.corrupt += 1
            return MISS
        self.resumed += 1
        return record["value"]

    def completed_keys(self):
        """Keys with a journal entry (payloads verified lazily by get)."""
        return set(self.index())

    def clear(self):
        """Delete every journaled cell and the journal; returns count."""
        removed = 0
        if self.cells_dir.is_dir():
            for path in self.cells_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        try:
            self.journal_path.unlink()
        except OSError:
            pass
        return removed

    def stats(self):
        return {
            "recorded": self.recorded,
            "resumed": self.resumed,
            "corrupt": self.corrupt,
        }
