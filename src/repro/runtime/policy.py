"""Process-wide execution policy: how campaigns should survive failure.

Mirrors the telemetry session's ``activate``/``active_session`` pattern:
the CLI parses ``--checkpoint-dir`` / ``--resume`` / ``--cell-timeout`` /
``--max-retries`` once, installs an :class:`ExecutionPolicy`, and every
campaign entry point (scheme matrix, resilience sweep, figure sweeps)
picks it up from :func:`active_policy` without threading four extra
parameters through the whole call graph.  Explicit keyword arguments to
:func:`~repro.experiments.engine.parallel_map` always win over the policy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ExecutionPolicy",
    "activate_policy",
    "deactivate_policy",
    "active_policy",
]

_ACTIVE = None


@dataclass
class ExecutionPolicy:
    """Fault-tolerance knobs for campaign execution.

    ``checkpoint_dir`` enables the journal; ``resume`` replays completed
    cells from it; ``cell_timeout``/``max_retries``/``backoff`` configure
    worker supervision; ``chaos`` attaches a
    :class:`~repro.runtime.chaos.ChaosPolicy` (tests only); ``on_error``
    is ``"collect"`` (salvage partial results, the default) or
    ``"raise"``.
    """

    checkpoint_dir: object = None
    resume: bool = False
    cell_timeout: float = None
    max_retries: int = None
    backoff: object = None  # RetryPolicy, or None for the default
    chaos: object = None
    on_error: str = "collect"

    @property
    def supervised(self):
        """Whether these knobs require the supervised worker pool."""
        return bool(
            self.cell_timeout
            or self.chaos is not None
            or (self.max_retries not in (None, 0))
        )


def activate_policy(policy):
    """Install a policy as the process-wide default; returns it."""
    global _ACTIVE
    _ACTIVE = policy
    return policy


def deactivate_policy():
    """Clear the process-wide policy."""
    global _ACTIVE
    _ACTIVE = None


def active_policy():
    """The process-wide policy, or ``None`` (plain execution)."""
    return _ACTIVE
