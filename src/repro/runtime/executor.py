"""Supervised worker pool: timeouts, retry with backoff, crash survival.

The plain engine pool (:mod:`repro.experiments.engine`) is fast but
brittle: one worker SIGKILL tears down the whole
``ProcessPoolExecutor`` (``BrokenProcessPool``) and a hung cell stalls the
campaign forever.  This module runs the same engine tasks under a parent
supervisor that treats worker failure as a first-class input, mirroring the
simulation-level NOMINAL→DEGRADED supervisor one layer up:

* each worker is a dedicated process on its own duplex
  :func:`multiprocessing.Pipe` — no shared queue, so a worker killed
  mid-message can never poison a lock other workers need;
* the parent waits on pipes *and* process sentinels, so crashes and kills
  are detected immediately, the victim's cell is retried elsewhere, and a
  replacement worker is spawned;
* per-cell wall-clock deadlines (``cell_timeout``) catch hangs: the wedged
  worker is killed outright and the cell counts as a timed-out attempt;
* failed attempts are re-queued with exponential backoff + deterministic
  jitter (:class:`RetryPolicy`); a cell that exhausts its budget becomes a
  structured :class:`CellFailure` in the results — partial-result salvage —
  instead of an exception that discards every completed sibling.

Results are delivered to ``progress`` in task order, same as the plain
engine, and per-worker telemetry directories are merged on shutdown.

The serial path (``jobs`` ≤ 1) applies the same retry accounting in
process; wall-clock deadlines need a killable worker process, so
``cell_timeout`` is only enforced when ``jobs`` > 1.
"""

from __future__ import annotations

import heapq
import os
import pickle
import random
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait

__all__ = [
    "CellFailure",
    "CellExecutionError",
    "RetryPolicy",
    "supervised_map",
]

# Placeholder for a cell that has not finalized yet (internal).
_PENDING = object()


@dataclass
class CellFailure:
    """A cell that exhausted its retry budget, kept in the result set.

    Duck-types the failure-relevant corner of ``RunMetrics``
    (``completed`` is always ``False``) so matrix consumers can filter
    failures with one ``isinstance`` check while every sibling result
    survives.
    """

    index: int
    label: str
    reason: str  # "exception" | "timeout" | "worker-died"
    attempts: int
    error: str
    key: str = ""  # checkpoint task key, when checkpointing is active
    elapsed: float = 0.0

    completed = False  # class attribute: never a successful run

    def describe(self):
        return (f"cell {self.index} [{self.label}] failed after "
                f"{self.attempts} attempt(s): {self.reason}: {self.error}")


class CellExecutionError(RuntimeError):
    """Raised (``on_error="raise"``) when a cell exhausts its retries."""

    def __init__(self, failure):
        super().__init__(failure.describe())
        self.failure = failure


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attempt ``k`` (0-based) that fails is re-queued after
    ``min(backoff_base * 2**k, backoff_max)`` seconds, scaled by a jitter
    factor drawn from ``random.Random(f"{seed}:{index}:{attempt}")`` — so
    two campaigns with the same seed back off identically, and concurrent
    retries of different cells de-synchronize.
    """

    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_max: float = 8.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, index, attempt):
        base = min(self.backoff_base * (2.0 ** attempt), self.backoff_max)
        rng = random.Random(f"{self.seed}:{index}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def _worker_main(worker_id, conn, context_blob, telemetry_dir, chaos_blob):
    """Supervised worker loop: recv (index, attempt, task), send verdicts.

    Reuses the engine's worker globals (``_WORKER_CONTEXT`` /
    ``_WORKER_SESSION``) so :func:`repro.experiments.engine._run_cell` —
    including its per-task telemetry flush — runs unchanged under
    supervision.
    """
    from ..experiments import engine as _engine
    from ..telemetry import TelemetrySession, activate

    _engine._WORKER_CONTEXT = pickle.loads(context_blob)
    if telemetry_dir is not None:
        out = os.path.join(telemetry_dir, f"worker-{os.getpid()}")
        _engine._WORKER_SESSION = activate(TelemetrySession(out))
    chaos = pickle.loads(chaos_blob) if chaos_blob is not None else None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            index, attempt, task = msg
            try:
                if chaos is not None:
                    chaos.apply(index, attempt)
                result = _engine._run_cell(task)
            except BaseException as exc:
                try:
                    conn.send(("err", index, attempt,
                               f"{type(exc).__name__}: {exc}",
                               traceback.format_exc()))
                except Exception:
                    break
            else:
                try:
                    conn.send(("ok", index, attempt, result, None))
                except Exception as exc:
                    # A result the pipe cannot carry is still a cell failure,
                    # not a dead worker.
                    try:
                        conn.send(("err", index, attempt,
                                   f"unsendable result: "
                                   f"{type(exc).__name__}: {exc}", None))
                    except Exception:
                        break
    finally:
        if _engine._WORKER_SESSION is not None:
            _engine._WORKER_SESSION.close()
            _engine._WORKER_SESSION = None


def _serial_supervised(tasks, context, progress, retry, chaos, on_error,
                       labels, keys, on_result, events=None):
    """In-process path: same retry/salvage semantics, no process to kill."""
    from ..experiments import engine as _engine
    from ..telemetry import active_session

    results = []
    saved = _engine._WORKER_CONTEXT
    _engine._WORKER_CONTEXT = context
    try:
        for index, task in enumerate(tasks):
            attempt = 0
            started = time.monotonic()
            if events is not None:
                events.emit("cell.started", index=index,
                            label=labels[index] if labels else f"task-{index}")
            while True:
                try:
                    if chaos is not None:
                        chaos.apply(index, attempt, in_process=True)
                    result = _engine._run_cell(task)
                except Exception as exc:
                    session = active_session()
                    if attempt < retry.max_retries:
                        if session is not None:
                            session.cell_retries.labels(
                                reason="exception").inc()
                        if events is not None:
                            events.emit("cell.retried", index=index,
                                        reason="exception", attempt=attempt)
                        time.sleep(retry.delay(index, attempt))
                        attempt += 1
                        continue
                    if on_error == "raise":
                        raise
                    if session is not None:
                        session.cell_failures.labels(reason="exception").inc()
                    result = CellFailure(
                        index=index,
                        label=labels[index] if labels else f"task-{index}",
                        reason="exception",
                        attempts=attempt + 1,
                        error=f"{type(exc).__name__}: {exc}",
                        key=keys[index] if keys else "",
                        elapsed=time.monotonic() - started,
                    )
                else:
                    if on_result is not None:
                        on_result(index, result)
                break
            if progress is not None:
                progress(result)
            results.append(result)
    finally:
        _engine._WORKER_CONTEXT = saved
    return results


def supervised_map(tasks, context, jobs=None, telemetry_dir=None,
                   progress=None, prime=None, cell_timeout=None,
                   retry=None, chaos=None, on_error="collect",
                   labels=None, keys=None, on_result=None, events=None):
    """Run engine tasks under worker supervision; ordered result list.

    Drop-in sibling of :func:`repro.experiments.engine.parallel_map` with
    fault tolerance: per-cell ``cell_timeout`` (seconds of wall-clock,
    enforced with ``jobs`` > 1), bounded ``retry`` (a :class:`RetryPolicy`,
    default 2 retries), optional ``chaos`` injection
    (:class:`~repro.runtime.chaos.ChaosPolicy`), and ``on_error`` handling:
    ``"collect"`` (default) places a :class:`CellFailure` in the result
    slot of a cell that exhausts retries, ``"raise"`` raises
    :class:`CellExecutionError` (or the original exception, serially).

    ``labels``/``keys`` annotate failures; ``on_result(index, value)``
    fires on each *successful* fresh result (the checkpoint hook).
    ``events`` (a :class:`~repro.obs.events.CampaignEvents`) receives
    ``cell.started`` / ``cell.retried`` / ``cell.timeout`` records as the
    supervisor makes those decisions.
    """
    import multiprocessing as mp

    from ..experiments.engine import resolve_jobs
    from ..experiments.schemes import prime_designs
    from ..telemetry import active_session

    if retry is None:
        retry = RetryPolicy()
    jobs = resolve_jobs(jobs)
    n = len(tasks)
    if jobs <= 1 or n <= 1:
        return _serial_supervised(tasks, context, progress, retry, chaos,
                                  on_error, labels, keys, on_result,
                                  events=events)

    prime_designs(context, prime)
    blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
    chaos_blob = (pickle.dumps(chaos, protocol=pickle.HIGHEST_PROTOCOL)
                  if chaos is not None else None)
    tel_dir = str(telemetry_dir) if telemetry_dir is not None else None
    ctx = mp.get_context()

    results = [_PENDING] * n
    ready = [(0.0, i, 0) for i in range(n)]  # (ready_time, index, attempt)
    heapq.heapify(ready)
    outstanding = n
    delivered = 0
    started_at = {}
    workers = {}  # wid -> (process, parent_conn)
    busy = {}  # wid -> (index, attempt, deadline)
    idle = []
    next_wid = 0
    session = active_session()
    raised = None

    def _label(index):
        return labels[index] if labels else f"task-{index}"

    def _spawn():
        nonlocal next_wid
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(next_wid, child_conn, blob, tel_dir, chaos_blob),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        workers[next_wid] = (proc, parent_conn)
        idle.append(next_wid)
        next_wid += 1

    def _retire(wid, reason, respawn=True):
        """Kill/reap one worker and (optionally) replace it."""
        proc, conn = workers.pop(wid)
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        try:
            conn.close()
        except OSError:
            pass
        if wid in idle:
            idle.remove(wid)
        if session is not None:
            session.worker_restarts.labels(reason=reason).inc()
        if respawn and outstanding > len(busy) and \
                len(workers) < min(jobs, outstanding):
            _spawn()

    def _deliver():
        nonlocal delivered
        while delivered < n and results[delivered] is not _PENDING:
            if progress is not None:
                progress(results[delivered])
            delivered += 1

    def _finalize_ok(index, value):
        nonlocal outstanding
        if results[index] is not _PENDING:
            return  # late duplicate (e.g. timed-out attempt that finished)
        results[index] = value
        outstanding -= 1
        if on_result is not None:
            on_result(index, value)
        _deliver()

    def _attempt_failed(index, attempt, reason, error):
        nonlocal outstanding, raised
        if results[index] is not _PENDING:
            return
        if attempt < retry.max_retries:
            if session is not None:
                session.cell_retries.labels(reason=reason).inc()
            if events is not None:
                events.emit("cell.retried", index=index, reason=reason,
                            attempt=attempt)
            delay = retry.delay(index, attempt)
            heapq.heappush(ready,
                           (time.monotonic() + delay, index, attempt + 1))
            return
        if session is not None:
            session.cell_failures.labels(reason=reason).inc()
            if reason == "worker-died":
                session.dump_flight(
                    "worker-died",
                    extra={"cell": index, "label": _label(index),
                           "error": error})
        failure = CellFailure(
            index=index, label=_label(index), reason=reason,
            attempts=attempt + 1, error=error,
            key=keys[index] if keys else "",
            elapsed=time.monotonic() - started_at.get(index,
                                                      time.monotonic()),
        )
        if on_error == "raise":
            raised = CellExecutionError(failure)
            return
        results[index] = failure
        outstanding -= 1
        _deliver()

    def _worker_died(wid, index, attempt):
        _retire(wid, "worker-died")
        _attempt_failed(index, attempt, "worker-died",
                        "worker process died (crashed or killed)")

    for _ in range(min(jobs, n)):
        _spawn()

    try:
        while outstanding > 0 and raised is None:
            now = time.monotonic()
            # Dispatch due cells to idle workers.
            while idle and ready and ready[0][0] <= now:
                _, index, attempt = heapq.heappop(ready)
                if results[index] is not _PENDING:
                    continue
                wid = idle.pop()
                proc, conn = workers[wid]
                try:
                    conn.send((index, attempt, tasks[index]))
                except (BrokenPipeError, OSError):
                    # Worker died while idle: replace it, requeue the cell
                    # without burning an attempt.
                    heapq.heappush(ready, (now, index, attempt))
                    _retire(wid, "worker-died")
                    continue
                busy[wid] = (index, attempt,
                             now + cell_timeout if cell_timeout else None)
                if events is not None and index not in started_at:
                    events.emit("cell.started", index=index,
                                label=_label(index))
                started_at.setdefault(index, now)

            # How long may we block?  Until the nearest deadline, or until
            # the next backed-off retry becomes due for an idle worker.
            deadlines = [d for (_, _, d) in busy.values() if d is not None]
            if ready and (idle or not busy):
                deadlines.append(ready[0][0])
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            if busy:
                wait_on = []
                for wid in busy:
                    proc, conn = workers[wid]
                    wait_on.extend((conn, proc.sentinel))
                if timeout is None or timeout > 0:
                    _conn_wait(wait_on, timeout)
            elif timeout:
                time.sleep(timeout)

            # Collect verdicts, detect deaths, enforce deadlines.
            now = time.monotonic()
            for wid in list(busy):
                proc, conn = workers[wid]
                index, attempt, deadline = busy[wid]
                msg = None
                try:
                    if conn.poll():
                        msg = conn.recv()
                except (EOFError, OSError):
                    busy.pop(wid)
                    _worker_died(wid, index, attempt)
                    continue
                if msg is not None:
                    kind, m_index, m_attempt, payload, _tb = msg
                    busy.pop(wid)
                    idle.append(wid)
                    if kind == "ok":
                        _finalize_ok(m_index, payload)
                    else:
                        _attempt_failed(m_index, m_attempt, "exception",
                                        payload)
                elif not proc.is_alive():
                    busy.pop(wid)
                    _worker_died(wid, index, attempt)
                elif deadline is not None and now >= deadline:
                    busy.pop(wid)
                    if session is not None:
                        session.cell_timeouts.inc()
                    if events is not None:
                        events.emit("cell.timeout", index=index,
                                    attempt=attempt)
                    _retire(wid, "timeout")
                    _attempt_failed(
                        index, attempt, "timeout",
                        f"cell exceeded cell_timeout={cell_timeout}s")
    finally:
        for wid, (proc, conn) in list(workers.items()):
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for wid, (proc, conn) in list(workers.items()):
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
            try:
                conn.close()
            except OSError:
                pass
        workers.clear()
        if tel_dir is not None:
            from ..telemetry.merge import merge_worker_dirs

            merge_worker_dirs(tel_dir)
    if raised is not None:
        raise raised
    return results
