"""repro: a full-system reproduction of *Yukta: Multilayer Resource
Controllers to Maximize Efficiency* (ISCA 2018).

Subpackages
-----------
``repro.lti``
    LTI systems substrate (state space, norms, LFTs, model reduction).
``repro.sysid``
    Black/gray-box system identification (ARX, Box-Jenkins-style,
    subspace, graybox, validation).
``repro.robust``
    Robust control: generalized-plant construction, H-infinity synthesis,
    structured-singular-value analysis, D-K iteration.
``repro.lqg``
    The LQG baseline synthesis.
``repro.signals``
    Signal metadata (quantized inputs, bounded outputs, external signals)
    and interface exchange.
``repro.board``
    The simulated ODROID XU3 big.LITTLE board.
``repro.workloads``
    Synthetic PARSEC/SPEC-shaped applications and mixes.
``repro.core``
    Yukta itself: layer specs, the design flow, runtime controllers,
    optimizers, multilayer coordination, fixed-point implementation.
``repro.baselines``
    The comparison controllers (heuristics and LQG variants).
``repro.experiments``
    The evaluation harness: one module per paper table/figure.
``repro.telemetry``
    Observability: metrics registry, control-loop span tracing, and the
    flight recorder (off by default; ``--telemetry DIR`` on the CLI).

Quickstart
----------
>>> from repro.experiments import DesignContext, run_workload
>>> context = DesignContext.create(samples_per_program=120)
>>> metrics = run_workload("yukta-hwssv-osssv", "blackscholes", context)
>>> print(metrics.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "lti",
    "sysid",
    "robust",
    "lqg",
    "signals",
    "board",
    "workloads",
    "core",
    "baselines",
    "experiments",
    "telemetry",
]
