"""The control-plane service: a concurrent experiment server.

``repro serve`` turns the batch harness into a long-lived service: clients
POST experiment requests as JSON, the server schedules them onto a worker
pool reusing the parallel engine's task machinery, and three mechanisms
keep throughput scaling with load instead of degrading:

1. **Request coalescing** — a request's identity is its
   :func:`~repro.runtime.task_key` fingerprint (the checkpoint journal's
   own SHA-256 content address).  Identical in-flight requests share one
   execution; completed results persist in a
   :class:`~repro.cache.DesignCache` result store, so warm requests are
   answered from disk without touching a worker.
2. **Cross-request bank batching** — bankable cells from *different*
   concurrent requests are packed into one
   :func:`~repro.experiments.bank_runner.run_cells_banked` group, so the
   service rides the fused :class:`~repro.board.bank.BoardBank` kernel's
   B-sweep: throughput scales with how many requests are in flight, not
   with per-request B.
3. **Backpressure and admission** — a bounded queue rejects overflow with
   a structured 429 (``Retry-After`` included); per-request deadlines
   produce structured 504s that mirror
   :class:`~repro.runtime.CellFailure` semantics; execution exceptions
   are retried under a :class:`~repro.runtime.RetryPolicy` before
   becoming structured 500s.

The HTTP layer is a deliberately small HTTP/1.1 implementation over
``asyncio`` streams — JSON bodies, keep-alive, an NDJSON event stream on
``/watch`` — matching the repo's stdlib-only rule.  Endpoints:

======================  =====================================================
``POST /run``           execute (or coalesce) one experiment request
``GET /healthz``        liveness + uptime
``GET /stats``          service counters (coalesce/batch/queue/store)
``GET /status``         campaign health rollup (``repro status`` body)
``GET /report``         full campaign report (markdown; ``?html=1``)
``GET /metrics``        Prometheus rendering of the telemetry registry
``GET /watch``          live NDJSON event stream (``max_events``/``timeout``)
``POST /shutdown``      graceful stop
======================  =====================================================

Responses are **bit-identical to the CLI**: a served result equals the
``run_workload`` result for the same fingerprint, float for float (JSON
round-trips every float64 exactly; the ``serve-vs-cli`` oracle in ``repro
verify`` enforces this, cold, banked, and warm).
"""

from __future__ import annotations

import asyncio
import json
import pickle
import tempfile
import threading
import time
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ..cache import MISS, DesignCache
from ..experiments.metrics import RunMetrics
from ..obs.events import CampaignEvents, events_path
from ..runtime.executor import CellFailure, RetryPolicy
from .protocol import (
    ProtocolError,
    ServeRequest,
    failure_to_wire,
    parse_request,
    result_to_wire,
)

__all__ = ["ExperimentServer", "ServerHandle", "serve_background"]

_SERVER_NAME = "repro-serve"


class _Work:
    """One admitted request waiting for (or sharing) an execution."""

    __slots__ = ("request", "key", "future", "enqueued_at", "deadline")

    def __init__(self, request, key, future, deadline=None):
        self.request = request
        self.key = key
        self.future = future  # resolves to (http_status, wire_dict)
        self.enqueued_at = time.perf_counter()
        self.deadline = deadline  # absolute loop.time(), or None


class ExperimentServer:
    """Asyncio experiment server over one :class:`DesignContext`.

    ``jobs=0`` (the default) executes cells on a single in-process worker
    thread against the live context — no pickling, instant startup, ideal
    for tests and the differential oracle.  ``jobs >= 1`` fans cells over
    a ``ProcessPoolExecutor`` primed exactly like the parallel engine's
    (same initializer, same worker task function), so results are
    bit-identical in every mode.
    """

    def __init__(self, context, host="127.0.0.1", port=0, jobs=0, batch=1,
                 batch_wait=0.02, queue_limit=64, cache=None, serve_dir=None,
                 default_deadline=None, retry=None, telemetry=None):
        self.context = context
        self.host = host
        self.port = int(port)
        self.jobs = max(int(jobs), 0)
        self.batch = max(int(batch), 1)
        self.batch_wait = float(batch_wait)
        self.queue_limit = max(int(queue_limit), 1)
        self.default_deadline = default_deadline
        self.retry = retry if retry is not None else RetryPolicy(max_retries=0)
        self.telemetry = telemetry
        self.store = DesignCache.resolve(cache)
        self.serve_dir = Path(serve_dir) if serve_dir is not None else \
            Path(tempfile.mkdtemp(prefix="repro-serve-"))
        self.stats = {
            "requests_total": 0,
            "bad_requests": 0,
            "executed": 0,
            "coalesced": 0,
            "cached": 0,
            "rejected": 0,
            "deadline_timeouts": 0,
            "failures": 0,
            "retries": 0,
            "batches": 0,
            "bank_batches": 0,
            "banked_cells": 0,
            "solo_cells": 0,
        }
        self._counters = None
        if telemetry is not None:
            reg = telemetry.registry
            self._counters = reg.counter(
                "serve_requests_total",
                "control-plane service requests by outcome",
                labels=("outcome",))
        self._inflight = {}  # fingerprint -> asyncio.Future
        self._outstanding = 0  # admitted work not yet resolved
        self._queue = None  # asyncio.Queue of _Work, created on start()
        self._watchers = []  # list[asyncio.Queue] of /watch subscribers
        self._writers = set()  # open connection writers (for shutdown)
        self._events = CampaignEvents(events_path(self.serve_dir))
        self._batcher = None
        self._dispatches = set()
        self._pool = None
        self._pool_runner = None
        self._server = None
        self._loop = None
        self._stopping = None
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self):
        """Bind the listener, start the worker pool and the batcher."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._init_pool()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.create_task(self._batch_loop())
        self._started_at = time.time()
        self._emit("campaign.begin", cells=0, resumed=0, jobs=self.jobs,
                   mode="serve", batch=self.batch, port=self.port)
        return self

    def _init_pool(self):
        from ..experiments import engine

        if self.jobs <= 0:
            # In-process worker thread: executes against the live context.
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-worker")
            context = self.context

            def _run(task):
                return engine.execute_task(context, task)

            self._pool_runner = _run
        else:
            from concurrent.futures import ProcessPoolExecutor

            from ..experiments.schemes import prime_designs

            # Prime every design before pickling, exactly like the engine's
            # plain pool path, so workers never re-synthesize and stay
            # bit-identical to the parent.
            prime_designs(self.context, None)
            blob = pickle.dumps(self.context,
                                protocol=pickle.HIGHEST_PROTOCOL)
            tel_dir = None
            if self.telemetry is not None and \
                    self.telemetry.out_dir is not None:
                tel_dir = str(self.telemetry.out_dir)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=engine._init_worker,
                initargs=(blob, tel_dir),
            )
            self._pool_runner = engine._run_cell

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    def request_stop(self):
        """Signal a graceful stop (thread-safe only via call_soon)."""
        if self._stopping is not None:
            self._stopping.set()

    async def wait_stopped(self):
        await self._stopping.wait()

    async def stop(self):
        """Stop accepting, drain dispatches, shut the pool down."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge keep-alive handlers off their readline so they finish
        # cleanly before the loop tears down (wait_closed() does not wait
        # for connection handlers until 3.12).
        for writer in list(self._writers):
            try:
                writer.close()
            except OSError:
                pass
        for _ in range(100):
            if not self._writers:
                break
            await asyncio.sleep(0.01)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        if self._dispatches:
            await asyncio.gather(*self._dispatches, return_exceptions=True)
        # Timed-out-but-still-queued work gets a terminal answer.
        while self._queue is not None and not self._queue.empty():
            work = self._queue.get_nowait()
            self._finish_timeout(work, reason="server-stopped")
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._emit("campaign.end", cells=self.stats["executed"],
                   failed=self.stats["failures"])
        self._events.close()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _emit(self, event, **fields):
        """Append to events.jsonl and fan out to /watch subscribers."""
        self._events.emit(event, **fields)
        if self._watchers:
            record = {"event": event, "t": round(time.time(), 3)}
            record.update(fields)
            for queue in list(self._watchers):
                try:
                    queue.put_nowait(record)
                except asyncio.QueueFull:
                    pass  # slow watcher: drop, never block the service

    def _count(self, outcome, amount=1):
        self.stats[outcome] += amount
        if self._counters is not None:
            self._counters.labels(outcome=outcome).inc(amount)

    # ------------------------------------------------------------------
    # Batcher + dispatch
    # ------------------------------------------------------------------
    async def _batch_loop(self):
        """Pull admitted work; pack compatible bankable cells together.

        Natural dynamic batching: while the pool is busy, requests pile
        up in the queue, so later pulls see full batches.  ``batch_wait``
        additionally holds the first cell of a would-be bank briefly so
        near-simultaneous arrivals pack instead of running solo.
        """
        loop = asyncio.get_running_loop()
        while True:
            work = await self._queue.get()
            group = [work]
            if self.batch > 1 and work.request.bankable:
                hold_until = loop.time() + self.batch_wait
                while len(group) < self.batch:
                    remaining = hold_until - loop.time()
                    if remaining <= 0 and self._queue.empty():
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), max(remaining, 0.0))
                    except asyncio.TimeoutError:
                        break
                    if (nxt.request.bankable
                            and nxt.request.bank_group
                            == work.request.bank_group):
                        group.append(nxt)
                    else:
                        # Incompatible cell: runs solo, the bank keeps
                        # collecting (slight reorder, same results).
                        self._spawn_dispatch([nxt])
            self._spawn_dispatch(group)

    def _spawn_dispatch(self, group):
        task = asyncio.get_running_loop().create_task(self._dispatch(group))
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    def _finish_timeout(self, work, reason="deadline"):
        """Resolve a work item as a structured timeout (HTTP 504)."""
        self._count("deadline_timeouts")
        failure = CellFailure(
            index=0, label=work.request.label(), reason="timeout",
            attempts=0, error=f"request {reason} expired before execution",
            key=work.key,
            elapsed=time.perf_counter() - work.enqueued_at)
        self._emit("request.timeout", label=work.request.label(),
                   reason=reason, fingerprint=work.key[:16])
        self._resolve(work.key, work.future, 504, failure_to_wire(failure))

    def _resolve(self, key, future, status, wire):
        self._outstanding = max(self._outstanding - 1, 0)
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result((status, wire))

    async def _dispatch(self, group):
        """Execute one group (a bank pack or a solo task) on the pool."""
        loop = asyncio.get_running_loop()
        # Shed work whose deadline already expired while queued.
        live = []
        for work in group:
            if work.deadline is not None and loop.time() > work.deadline:
                self._finish_timeout(work)
            else:
                live.append(work)
        if not live:
            return
        self._count("batches")
        banked = len(live) > 1
        if banked:
            from ..experiments.engine import _bank_group

            self._count("bank_batches")
            self._count("banked_cells", len(live))
            cells = [(w.request.scheme, w.request.workload, w.request.seed)
                     for w in live]
            max_time, record = live[0].request.bank_group
            task = ("call", (_bank_group, (cells, max_time, record),
                             {"on_error": "collect"}))
            self._emit("batch.dispatched", size=len(live), batch=self.batch,
                       fill=round(len(live) / self.batch, 3))
        else:
            self._count("solo_cells")
            task = live[0].request.task()
        for work in live:
            self._emit("cell.started", label=work.request.label(),
                       fingerprint=work.key[:16])

        results = None
        attempt = 0
        while True:
            try:
                raw = await loop.run_in_executor(
                    self._pool, self._pool_runner, task)
                results = raw if banked else [raw]
                break
            except Exception as exc:  # noqa: BLE001 - worker failure
                if attempt < self.retry.max_retries:
                    self._count("retries")
                    for work in live:
                        self._emit("cell.retried", label=work.request.label(),
                                   reason="exception", attempt=attempt + 1)
                    await asyncio.sleep(self.retry.delay(0, attempt))
                    attempt += 1
                    continue
                results = [CellFailure(
                    index=i, label=w.request.label(), reason="exception",
                    attempts=attempt + 1,
                    error=f"{type(exc).__name__}: {exc}", key=w.key)
                    for i, w in enumerate(live)]
                break

        for work, result in zip(live, results):
            wire = result_to_wire(result)
            if isinstance(result, CellFailure):
                self._count("failures")
                self._emit("cell.failed", label=work.request.label(),
                           reason=result.reason, attempts=result.attempts,
                           error=result.error[:500])
                self._resolve(work.key, work.future, 500, wire)
                continue
            self._count("executed")
            if (self.store is not None and not work.request.no_cache
                    and isinstance(result, RunMetrics)):
                self.store.put(work.key, wire)
            self._emit("cell.completed", label=work.request.label(),
                       fingerprint=work.key[:16])
            self._resolve(work.key, work.future, 200, wire)

    # ------------------------------------------------------------------
    # /run
    # ------------------------------------------------------------------
    async def _handle_run(self, payload):
        loop = asyncio.get_running_loop()
        try:
            request = parse_request(payload)
        except ProtocolError as exc:
            self._count("bad_requests")
            return 400, {"ok": False, "error": "bad-request",
                         "detail": str(exc)}, {}
        t0 = time.perf_counter()
        key = request.fingerprint(self.context)

        def _ok(source, status, wire):
            body = {
                "ok": status == 200,
                "source": source,
                "fingerprint": key,
                "elapsed_s": round(time.perf_counter() - t0, 6),
                "result": wire,
            }
            if status != 200:
                body["error"] = wire.get("reason", "failed") \
                    if isinstance(wire, dict) else "failed"
            return status, body, {}

        # 1. Warm path: the persistent result store.
        if self.store is not None and not request.no_cache:
            wire = self.store.get(key)
            if wire is not MISS:
                self._count("cached")
                self._emit("request.cached", label=request.label(),
                           fingerprint=key[:16])
                return _ok("cache", 200, wire)

        # 2. Coalesce onto an identical in-flight execution.
        future = self._inflight.get(key)
        if future is not None:
            self._count("coalesced")
            self._emit("request.coalesced", label=request.label(),
                       fingerprint=key[:16])
            source = "coalesced"
        else:
            # 3. Admission control: bounded queue, structured overflow.
            deadline = request.deadline_s
            if deadline is None:
                deadline = self.default_deadline
            abs_deadline = (loop.time() + float(deadline)
                            if deadline is not None else None)
            # Admission counts *outstanding* work — admitted but not yet
            # resolved — not just what currently sits in the queue: the
            # batcher pulls eagerly, so queue depth alone would never
            # reflect a saturated pool.  (Coalesced and cached requests
            # never count against the bound; they add no execution.)
            if self._outstanding >= self.queue_limit:
                self._count("rejected")
                self._emit("request.rejected", label=request.label(),
                           outstanding=self._outstanding)
                retry_after = max(self.batch_wait * 4, 0.25)
                return 429, {
                    "ok": False, "error": "queue-full",
                    "outstanding": self._outstanding,
                    "queue_limit": self.queue_limit,
                    "retry_after_s": retry_after,
                }, {"Retry-After": f"{retry_after:.3f}"}
            future = loop.create_future()
            work = _Work(request, key, future, deadline=abs_deadline)
            self._outstanding += 1
            self._queue.put_nowait(work)  # cannot overflow: size <= outstanding
            self._inflight[key] = future
            self._emit("request.received", label=request.label(),
                       fingerprint=key[:16],
                       queue_depth=self._queue.qsize())
            source = "executed"

        # 4. Wait for the shared execution, bounded by this request's
        #    deadline (the execution itself keeps running and still
        #    populates the store for future warm requests).
        timeout = request.deadline_s
        if timeout is None:
            timeout = self.default_deadline
        try:
            if timeout is not None:
                status, wire = await asyncio.wait_for(
                    asyncio.shield(future), float(timeout))
            else:
                status, wire = await asyncio.shield(future)
        except asyncio.TimeoutError:
            self._count("deadline_timeouts")
            self._emit("request.timeout", label=request.label(),
                       reason="deadline", fingerprint=key[:16])
            failure = CellFailure(
                index=0, label=request.label(), reason="timeout", attempts=1,
                error=f"deadline of {timeout}s expired while "
                      f"{'coalesced' if source == 'coalesced' else 'running'}",
                key=key, elapsed=time.perf_counter() - t0)
            return _ok(source, 504, failure_to_wire(failure))
        return _ok(source, status, wire)

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _stats_body(self):
        run_total = (self.stats["executed"] + self.stats["coalesced"]
                     + self.stats["cached"] + self.stats["failures"])
        hits = self.stats["coalesced"] + self.stats["cached"]
        packing = None
        if self.stats["bank_batches"]:
            packing = self.stats["banked_cells"] / (
                self.stats["bank_batches"] * self.batch)
        body = dict(self.stats)
        body.update({
            "uptime_s": round(time.time() - self._started_at, 3),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "outstanding": self._outstanding,
            "queue_limit": self.queue_limit,
            "inflight": len(self._inflight),
            "jobs": self.jobs,
            "batch": self.batch,
            "coalesce_hit_rate": round(hits / run_total, 4) if run_total
            else 0.0,
            "bank_packing_efficiency": round(packing, 4)
            if packing is not None else None,
            "store": None if self.store is None else {
                "root": str(self.store.root),
                "hits": self.store.hits,
                "misses": self.store.misses,
            },
            "watchers": len(self._watchers),
        })
        return body

    def _status_body(self, fmt):
        from ..obs.health import load_health, render_status

        try:
            if fmt == "json":
                health = load_health(self.serve_dir).to_dict()
                health["serve"] = self._stats_body()
                return 200, health, "application/json"
            return 200, render_status(self.serve_dir), "text/plain"
        except FileNotFoundError as exc:
            return 404, {"ok": False, "error": "no-events",
                         "detail": str(exc)}, "application/json"

    def _report_body(self, html):
        from ..obs.report import build_report, to_html

        try:
            markdown = build_report(self.serve_dir,
                                    title=f"repro serve on :{self.port}")
        except FileNotFoundError as exc:
            return 404, {"ok": False, "error": "no-artifacts",
                         "detail": str(exc)}, "application/json"
        if html:
            return 200, to_html(markdown), "text/html"
        return 200, markdown, "text/markdown"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer):
        self._writers.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = \
                        request_line.decode("latin-1").split(None, 2)
                except ValueError:
                    await self._respond(writer, 400, {"ok": False,
                                        "error": "bad-request-line"})
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = b""
                length = int(headers.get("content-length", 0) or 0)
                if length:
                    body = await reader.readexactly(length)
                keep_alive = headers.get("connection", "").lower() != "close"
                done = await self._route(
                    writer, method.upper(), target, body, keep_alive)
                if not keep_alive or done == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        except asyncio.CancelledError:
            return  # loop teardown: exit quietly, the writer is closed below
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _route(self, writer, method, target, body, keep_alive):
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        self.stats["requests_total"] += 1

        if path == "/run" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as exc:
                self._count("bad_requests")
                await self._respond(writer, 400, {
                    "ok": False, "error": "bad-json", "detail": str(exc)},
                    keep_alive=keep_alive)
                return None
            status, out, extra = await self._handle_run(payload)
            await self._respond(writer, status, out, extra_headers=extra,
                                keep_alive=keep_alive)
            return None

        if path == "/healthz":
            await self._respond(writer, 200, {
                "ok": True, "service": _SERVER_NAME,
                "uptime_s": round(time.time() - self._started_at, 3)},
                keep_alive=keep_alive)
            return None

        if path == "/stats":
            await self._respond(writer, 200, self._stats_body(),
                                keep_alive=keep_alive)
            return None

        if path == "/status":
            status, out, ctype = self._status_body(query.get("format"))
            await self._respond(writer, status, out, content_type=ctype,
                                keep_alive=keep_alive)
            return None

        if path == "/report":
            status, out, ctype = self._report_body(html="html" in query)
            await self._respond(writer, status, out, content_type=ctype,
                                keep_alive=keep_alive)
            return None

        if path == "/metrics":
            if self.telemetry is None:
                await self._respond(writer, 404, {
                    "ok": False, "error": "no-telemetry",
                    "detail": "start the server with --telemetry to "
                              "expose /metrics"}, keep_alive=keep_alive)
                return None
            await self._respond(
                writer, 200, self.telemetry.registry.render_prometheus(),
                content_type="text/plain; version=0.0.4",
                keep_alive=keep_alive)
            return None

        if path == "/watch":
            await self._handle_watch(writer, query)
            return "close"

        if path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"ok": True, "stopping": True},
                                keep_alive=False)
            self._stopping.set()
            return "close"

        if path == "/":
            await self._respond(writer, 200, {
                "ok": True, "service": _SERVER_NAME,
                "endpoints": ["/run", "/healthz", "/stats", "/status",
                              "/report", "/metrics", "/watch", "/shutdown"],
            }, keep_alive=keep_alive)
            return None

        await self._respond(writer, 404, {
            "ok": False, "error": "not-found", "path": path},
            keep_alive=keep_alive)
        return None

    async def _handle_watch(self, writer, query):
        """Stream service events as NDJSON until a bound is hit.

        The stream ends after ``max_events`` events or ``timeout``
        seconds (default 30), whichever comes first; framing is
        connection-close, so plain ``urlopen(...).read()`` clients work.
        """
        loop = asyncio.get_running_loop()
        try:
            max_events = int(query.get("max_events", 0)) or None
            timeout = float(query.get("timeout", 30.0))
        except ValueError:
            await self._respond(writer, 400, {
                "ok": False, "error": "bad-query"}, keep_alive=False)
            return
        queue = asyncio.Queue(maxsize=1024)
        self._watchers.append(queue)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            await writer.drain()
            end = loop.time() + timeout
            sent = 0
            while max_events is None or sent < max_events:
                remaining = end - loop.time()
                if remaining <= 0 or self._stopping.is_set():
                    break
                try:
                    record = await asyncio.wait_for(
                        queue.get(), min(remaining, 0.25))
                except asyncio.TimeoutError:
                    continue
                writer.write(json.dumps(record).encode("utf-8") + b"\n")
                await writer.drain()
                sent += 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                self._watchers.remove(queue)
            except ValueError:
                pass

    _REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                429: "Too Many Requests", 500: "Internal Server Error",
                504: "Gateway Timeout"}

    async def _respond(self, writer, status, body,
                       content_type="application/json", extra_headers=None,
                       keep_alive=True):
        if isinstance(body, (dict, list)):
            payload = json.dumps(body).encode("utf-8")
        elif isinstance(body, str):
            payload = body.encode("utf-8")
        else:
            payload = bytes(body)
        reason = self._REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(payload)}",
                f"Server: {_SERVER_NAME}",
                "Connection: " + ("keep-alive" if keep_alive else "close")]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


# ---------------------------------------------------------------------------
# Background-thread harness (tests, benchmarks, the verify oracle)
# ---------------------------------------------------------------------------
class ServerHandle:
    """A running server on a daemon thread; ``stop()`` joins it."""

    def __init__(self, server, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self):
        return self.server.url

    @property
    def port(self):
        return self.server.port

    def stop(self, timeout=10.0):
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
        return False


def serve_background(context, timeout=30.0, **kwargs):
    """Start an :class:`ExperimentServer` on a daemon thread.

    Returns a :class:`ServerHandle` once the listener is bound (so
    ``handle.url`` is immediately usable).  The server event loop runs on
    its own thread; ``handle.stop()`` requests a graceful shutdown.
    """
    started = threading.Event()
    holder = {}

    async def _amain():
        server = ExperimentServer(context, **kwargs)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.wait_stopped()
        await server.stop()

    def _runner():
        try:
            asyncio.run(_amain())
        except Exception as exc:  # pragma: no cover - startup failure
            holder["error"] = exc
            started.set()

    thread = threading.Thread(target=_runner, daemon=True,
                              name="repro-serve")
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("server failed to start within "
                           f"{timeout}s")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(holder["server"], holder["loop"], thread)
