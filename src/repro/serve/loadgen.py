"""Deterministic open-loop load generator for the experiment service.

Open-loop means arrivals are scheduled ahead of time from a seeded
exponential process and fired on schedule regardless of how fast the
server answers — the honest way to measure a service under load (a
closed-loop client self-throttles and hides queueing collapse).  The
request *content* stream is deterministic too: a seeded mix of (scheme,
workload) cells with a configurable duplicate ratio, so coalescing
behaviour is reproducible run to run.

Each fired request records wall-clock latency, HTTP status, and the
server-reported ``source`` (executed / coalesced / cache); the summary
rolls those into requests/s, p50/p99 latency, and the client-observed
coalesce hit-rate that ``bench_serve.py`` pins with floors.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from .client import ServeClient

__all__ = ["LoadgenReport", "default_mix", "generate_requests",
           "run_loadgen"]


def default_mix():
    """The default request mix: the paper's layered schemes x programs."""
    return [
        ("coordinated-heuristic", "blackscholes"),
        ("coordinated-heuristic", "mcf"),
        ("decoupled-heuristic", "fluidanimate"),
        ("yukta-hwssv-osheur", "blackscholes"),
        ("yukta-hwssv-osssv", "mcf"),
    ]


@dataclass
class LoadgenReport:
    """Outcome of one load-generation burst."""

    sent: int = 0
    ok: int = 0
    failed: int = 0
    rejected: int = 0  # HTTP 429 (admission)
    timeouts: int = 0  # HTTP 504 (deadline)
    errors: int = 0  # transport-level failures
    by_source: dict = field(default_factory=dict)
    latencies_ms: list = field(default_factory=list)
    wall_s: float = 0.0
    offered_rate: float = 0.0
    duplicate_ratio: float = 0.0

    @property
    def all_ok(self):
        return self.ok == self.sent and self.errors == 0

    @property
    def achieved_rps(self):
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def coalesce_hit_rate(self):
        """Fraction of answered requests served without a fresh execution."""
        hits = self.by_source.get("coalesced", 0) + \
            self.by_source.get("cache", 0)
        return hits / self.ok if self.ok else 0.0

    def percentile(self, q):
        if not self.latencies_ms:
            return 0.0
        values = sorted(self.latencies_ms)
        index = min(int(round(q / 100.0 * (len(values) - 1))),
                    len(values) - 1)
        return values[index]

    def to_dict(self):
        return {
            "sent": self.sent,
            "ok": self.ok,
            "failed": self.failed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "by_source": dict(self.by_source),
            "wall_s": round(self.wall_s, 4),
            "offered_rate": self.offered_rate,
            "achieved_rps": round(self.achieved_rps, 2),
            "duplicate_ratio": self.duplicate_ratio,
            "coalesce_hit_rate": round(self.coalesce_hit_rate, 4),
            "p50_ms": round(self.percentile(50), 3),
            "p99_ms": round(self.percentile(99), 3),
        }

    def render(self):
        return (
            f"loadgen: {self.ok}/{self.sent} ok "
            f"({self.rejected} rejected, {self.timeouts} timed out, "
            f"{self.errors} errors) in {self.wall_s:.2f}s -> "
            f"{self.achieved_rps:.1f} req/s, "
            f"p50 {self.percentile(50):.1f} ms, "
            f"p99 {self.percentile(99):.1f} ms, "
            f"coalesce hit-rate {self.coalesce_hit_rate:.0%} "
            f"(sources: {self.by_source})"
        )


def generate_requests(n, seed=0, mix=None, duplicates=0.0, max_time=6.0,
                      record=False, deadline_s=None, seed_base=100):
    """The deterministic request stream: ``n`` request dicts.

    With probability ``duplicates`` a request repeats an earlier one
    verbatim (same fingerprint — the coalescing/caching target);
    otherwise it draws a fresh (scheme, workload) from ``mix`` with a
    unique cell seed.
    """
    rng = random.Random(seed)
    mix = list(mix) if mix else default_mix()
    stream = []
    unique = 0
    for _ in range(int(n)):
        if stream and rng.random() < duplicates:
            stream.append(dict(stream[rng.randrange(len(stream))]))
            continue
        scheme, workload = mix[rng.randrange(len(mix))]
        request = {
            "kind": "run",
            "scheme": scheme,
            "workload": workload,
            "seed": seed_base + unique,
            "max_time": float(max_time),
            "record": bool(record),
        }
        if deadline_s is not None:
            request["deadline_s"] = float(deadline_s)
        stream.append(request)
        unique += 1
    return stream


def run_loadgen(url, requests=50, rate=20.0, duplicates=0.3, seed=0,
                mix=None, max_time=6.0, record=False, deadline_s=None,
                timeout=120.0, progress=None):
    """Fire an open-loop burst at ``url``; returns a :class:`LoadgenReport`.

    ``rate`` is the offered arrival rate (requests/second); inter-arrival
    gaps are exponential draws from ``random.Random(seed)``.  Each request
    runs on its own thread so a slow response never delays the next
    arrival (open-loop).  ``rate=0`` fires everything at once (a burst).
    """
    stream = generate_requests(requests, seed=seed, mix=mix,
                               duplicates=duplicates, max_time=max_time,
                               record=record, deadline_s=deadline_s)
    rng = random.Random(f"arrivals:{seed}")
    offsets = []
    t = 0.0
    for _ in stream:
        offsets.append(t)
        if rate and rate > 0:
            t += rng.expovariate(rate)

    report = LoadgenReport(offered_rate=float(rate),
                           duplicate_ratio=float(duplicates))
    report.sent = len(stream)
    lock = threading.Lock()

    def _fire(request, offset, start):
        delay = start + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        t0 = time.perf_counter()
        outcome = source = None
        try:
            with ServeClient(url, timeout=timeout) as client:
                response = client.run(request, timeout=timeout)
            status = response.get("status") if isinstance(response, dict) \
                else None
            if status == 200:
                outcome = "ok"
                source = response.get("source", "?")
            elif status == 429:
                outcome = "rejected"
            elif status == 504:
                outcome = "timeout"
            else:
                outcome = "failed"
        except Exception:  # noqa: BLE001 - transport failures are data here
            outcome = "error"
        latency_ms = (time.perf_counter() - t0) * 1e3
        with lock:
            if outcome == "ok":
                report.ok += 1
                report.latencies_ms.append(latency_ms)
                report.by_source[source] = \
                    report.by_source.get(source, 0) + 1
            elif outcome == "rejected":
                report.rejected += 1
            elif outcome == "timeout":
                report.timeouts += 1
            elif outcome == "error":
                report.errors += 1
            else:
                report.failed += 1
            if progress is not None:
                progress(len(report.latencies_ms), report.sent)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=_fire, args=(request, offset, start),
                         daemon=True)
        for request, offset in zip(stream, offsets)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    report.wall_s = time.perf_counter() - start
    return report
