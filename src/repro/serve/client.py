"""Blocking stdlib client for the control-plane service.

A thin wrapper over :mod:`http.client` with connection keep-alive —
enough for the load generator, the benchmarks, the differential oracle,
and CI smoke checks.  Every method returns decoded JSON (or text for the
text endpoints); :meth:`ServeClient.run` returns the full response
envelope (``ok``/``source``/``fingerprint``/``result``) plus the HTTP
status under ``"status"``.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlencode, urlsplit

__all__ = ["ServeClient", "ServeError", "wait_ready"]


class ServeError(RuntimeError):
    """Transport-level failure talking to the service."""


class ServeClient:
    """One keep-alive HTTP connection to a running experiment server."""

    def __init__(self, url, timeout=60.0):
        split = urlsplit(url if "//" in url else f"http://{url}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self._conn = None

    # -- transport -----------------------------------------------------
    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self):
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def request(self, method, path, body=None, timeout=None):
        """One round trip; returns ``(status, decoded_body)``.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests).
        """
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            if timeout is not None:
                conn.timeout = timeout
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                status = response.status
                ctype = response.getheader("Content-Type", "")
                break
            except (http.client.HTTPException, ConnectionError, OSError) \
                    as exc:
                self.close()
                if attempt:
                    raise ServeError(
                        f"{method} {path} failed: {exc}") from exc
        if timeout is not None:
            conn.timeout = self.timeout
        if "json" in ctype:
            try:
                return status, json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                raise ServeError(
                    f"{method} {path}: invalid JSON body: {exc}") from exc
        return status, raw.decode("utf-8", "replace")

    # -- endpoints -----------------------------------------------------
    def run(self, request, timeout=None):
        """POST one experiment request; returns the response envelope.

        ``request`` is a plain dict (see :mod:`repro.serve.protocol`) or
        a :class:`~repro.serve.protocol.ServeRequest`.
        """
        if hasattr(request, "to_dict"):
            request = request.to_dict()
        status, body = self.request("POST", "/run", body=request,
                                    timeout=timeout)
        if isinstance(body, dict):
            body["status"] = status
        return body

    def healthz(self):
        return self.request("GET", "/healthz")[1]

    def stats(self):
        return self.request("GET", "/stats")[1]

    def status(self, fmt=None):
        path = "/status" + (f"?format={fmt}" if fmt else "")
        return self.request("GET", path)[1]

    def report(self, html=False):
        return self.request("GET", "/report" + ("?html=1" if html else ""))[1]

    def metrics(self):
        return self.request("GET", "/metrics")[1]

    def watch(self, max_events=10, timeout=5.0):
        """Collect up to ``max_events`` service events (own connection).

        The stream is connection-close framed, so this opens a dedicated
        connection and reads NDJSON lines until the server ends the
        stream.
        """
        query = urlencode({"max_events": max_events, "timeout": timeout})
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout + 10.0)
        try:
            conn.request("GET", f"/watch?{query}")
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        events = []
        for line in raw.decode("utf-8", "replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
        return events

    def shutdown(self):
        try:
            return self.request("POST", "/shutdown")[1]
        except ServeError:
            return {"ok": True, "stopping": True}  # raced the close


def wait_ready(url, timeout=30.0, interval=0.1):
    """Poll ``/healthz`` until the service answers (or raise)."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(url, timeout=interval * 5 + 1.0) as client:
                body = client.healthz()
            if isinstance(body, dict) and body.get("ok"):
                return body
        except (ServeError, OSError) as exc:
            last = exc
        time.sleep(interval)
    raise ServeError(f"service at {url} not ready after {timeout}s: {last}")
