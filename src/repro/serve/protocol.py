"""Wire protocol for the control-plane service: requests, results, identity.

The service speaks JSON over HTTP, but its *identity* model is the repo's
existing content-addressed one: a run request normalizes to exactly the
engine task tuple the batch CLI would execute (``("cell", (scheme,
workload, seed, max_time, record))``) and its fingerprint is
:func:`repro.runtime.task_key` under the server's
:class:`~repro.experiments.DesignContext` — the same SHA-256 identity the
checkpoint journal uses.  Two requests coalesce exactly when a checkpoint
would have deduplicated them, and a served response is bit-identical to
the CLI run of the same cell (the ``serve-vs-cli`` oracle in ``repro
verify`` holds the contract).

Bit-exactness across JSON relies on Python's shortest-round-trip float
repr: ``json.dumps``/``loads`` preserve every finite float64 exactly, and
the stdlib encoder's ``NaN``/``Infinity`` extension covers the non-finite
values fault scenarios can produce.

A second request kind, ``sleep``, executes a pure wall-clock delay in the
worker.  It exists for deterministic tests and load probes of the queueing
path (admission, deadlines, coalescing) without simulating anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..experiments.bank_runner import bankable_scheme
from ..experiments.runner import instantiate_workload, workload_name
from ..experiments.schemes import SCHEMES
from ..runtime.executor import CellFailure

__all__ = [
    "ProtocolError",
    "ServeRequest",
    "parse_request",
    "jsonable",
    "metrics_to_wire",
    "metrics_from_wire",
    "failure_to_wire",
    "sleep_cell",
]


class ProtocolError(ValueError):
    """A malformed or unserviceable request (HTTP 400)."""


def jsonable(obj):
    """Recursively convert a result payload to JSON-safe builtins.

    Numpy scalars become Python numbers, arrays become lists, tuples
    become lists (JSON has no tuple), dict keys become strings.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    return repr(obj)


def sleep_cell(context, duration, nonce):
    """Engine ``("call", ...)`` target: a pure wall-clock delay.

    Returns a small wire-ready dict so the response pipeline treats it
    like any other result.
    """
    time.sleep(float(duration))
    return {"kind": "sleep", "duration": float(duration), "nonce": nonce}


@dataclass(frozen=True)
class ServeRequest:
    """One normalized, validated service request."""

    kind: str  # "run" | "sleep"
    scheme: str = ""
    workload: str = ""
    seed: int = 7
    max_time: float = 600.0
    record: bool = False
    duration: float = 0.0  # sleep kind only
    nonce: str = ""  # sleep kind only
    deadline_s: float = None  # admission + completion deadline
    no_cache: bool = False  # skip the persistent result store (still coalesces)

    @property
    def bankable(self):
        """Whether this request's cell can ride a shared BoardBank."""
        return self.kind == "run" and bankable_scheme(self.scheme)

    @property
    def bank_group(self):
        """Cells bank together only when their loop horizons agree."""
        return (self.max_time, self.record)

    def task(self):
        """The engine task tuple this request executes — the CLI's own."""
        if self.kind == "run":
            return ("cell", (self.scheme, self.workload, self.seed,
                             self.max_time, self.record))
        return ("call", (sleep_cell, (self.duration, self.nonce), {}))

    def fingerprint(self, context):
        """Content-addressed identity under ``context`` (coalescing key)."""
        from ..runtime import task_key

        return task_key(context, self.task())

    def label(self):
        if self.kind == "run":
            return f"{self.scheme}:{self.workload}:s{self.seed}"
        return f"sleep:{self.duration:g}:{self.nonce}"

    def to_dict(self):
        out = {"kind": self.kind}
        if self.kind == "run":
            out.update(scheme=self.scheme, workload=self.workload,
                       seed=self.seed, max_time=self.max_time,
                       record=self.record)
        else:
            out.update(duration=self.duration, nonce=self.nonce)
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.no_cache:
            out["no_cache"] = True
        return out


def _number(payload, name, default, minimum=None):
    value = payload.get(name, default)
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"field {name!r} must be a number, "
                            f"got {value!r}")
    if minimum is not None and value < minimum:
        raise ProtocolError(f"field {name!r} must be >= {minimum}, "
                            f"got {value!r}")
    return value


def parse_request(payload):
    """Validate a decoded JSON body into a :class:`ServeRequest`.

    Raises :class:`ProtocolError` with a client-actionable message on any
    malformed field — the server maps that to HTTP 400.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    kind = payload.get("kind", "run")
    if kind not in ("run", "sleep"):
        raise ProtocolError(f"unknown request kind {kind!r} "
                            "(expected 'run' or 'sleep')")
    deadline = payload.get("deadline_s")
    if deadline is not None:
        deadline = _number(payload, "deadline_s", None, minimum=0.0)
    no_cache = bool(payload.get("no_cache", False))

    if kind == "sleep":
        return ServeRequest(
            kind="sleep",
            duration=_number(payload, "duration", 0.0, minimum=0.0),
            nonce=str(payload.get("nonce", "")),
            deadline_s=deadline,
            no_cache=no_cache,
        )

    scheme = payload.get("scheme")
    if scheme not in SCHEMES:
        raise ProtocolError(f"unknown scheme {scheme!r} "
                            f"(expected one of {', '.join(SCHEMES)})")
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ProtocolError("field 'workload' must be a non-empty string")
    try:
        instantiate_workload(workload)
    except Exception:
        raise ProtocolError(f"unknown workload {workload!r}")
    seed = payload.get("seed", 7)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError(f"field 'seed' must be an integer, got {seed!r}")
    return ServeRequest(
        kind="run",
        scheme=scheme,
        workload=workload_name(workload),
        seed=seed,
        max_time=_number(payload, "max_time", 600.0, minimum=0.0),
        record=bool(payload.get("record", False)),
        deadline_s=deadline,
        no_cache=no_cache,
    )


# ---------------------------------------------------------------------------
# Result wire formats
# ---------------------------------------------------------------------------
def metrics_to_wire(metrics):
    """A :class:`~repro.experiments.metrics.RunMetrics` as a JSON dict.

    The ``bank`` note — the lockstep runner's lane/tick diagnostic — is
    dropped: a response must be a pure function of the request
    fingerprint, indistinguishable whether the cell ran solo, rode a
    shared bank, or came back warm from the store.  Execution-path
    diagnostics stay observable via ``/stats`` and the event stream.
    """
    notes = dict(metrics.notes or {})
    notes.pop("bank", None)
    return {
        "type": "run_metrics",
        "scheme": metrics.scheme,
        "workload": metrics.workload,
        "execution_time": float(metrics.execution_time),
        "energy": float(metrics.energy),
        "completed": bool(metrics.completed),
        "trace": {name: jsonable(np.asarray(arr).tolist())
                  for name, arr in (metrics.trace or {}).items()},
        "notes": jsonable(notes),
    }


def metrics_from_wire(wire):
    """Rebuild :class:`RunMetrics` from its wire dict (floats bit-exact)."""
    from ..experiments.metrics import RunMetrics

    return RunMetrics(
        scheme=wire["scheme"],
        workload=wire["workload"],
        execution_time=float(wire["execution_time"]),
        energy=float(wire["energy"]),
        completed=bool(wire["completed"]),
        trace={name: np.asarray(values, dtype=float)
               for name, values in (wire.get("trace") or {}).items()},
        notes=wire.get("notes") or {},
    )


def failure_to_wire(failure):
    """A structured :class:`CellFailure` as a JSON dict (HTTP 500 body)."""
    return {
        "type": "cell_failure",
        "label": failure.label,
        "reason": failure.reason,
        "attempts": failure.attempts,
        "error": failure.error,
        "elapsed": failure.elapsed,
    }


def result_to_wire(result):
    """Dispatch any executed task result to its wire form."""
    from ..experiments.metrics import RunMetrics

    if isinstance(result, RunMetrics):
        return metrics_to_wire(result)
    if isinstance(result, CellFailure):
        return failure_to_wire(result)
    return jsonable(result)
