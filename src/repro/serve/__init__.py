"""Control-plane service: the harness as a long-lived concurrent server.

``python -m repro serve`` starts an asyncio HTTP service that accepts
experiment requests, coalesces identical ones onto a single execution
(keyed by the checkpoint journal's SHA-256 task fingerprints), packs
bankable cells from *different* concurrent requests into shared
:class:`~repro.board.bank.BoardBank` lanes, and answers warm repeats from
a persistent :class:`~repro.cache.DesignCache` result store.  See
``docs/SERVING.md``.
"""

from .client import ServeClient, ServeError, wait_ready
from .loadgen import LoadgenReport, generate_requests, run_loadgen
from .protocol import (
    ProtocolError,
    ServeRequest,
    metrics_from_wire,
    metrics_to_wire,
    parse_request,
)
from .server import ExperimentServer, ServerHandle, serve_background

__all__ = [
    "ExperimentServer",
    "ServerHandle",
    "serve_background",
    "ServeClient",
    "ServeError",
    "wait_ready",
    "LoadgenReport",
    "generate_requests",
    "run_loadgen",
    "ProtocolError",
    "ServeRequest",
    "parse_request",
    "metrics_to_wire",
    "metrics_from_wire",
]
