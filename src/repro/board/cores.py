"""Core performance model.

A thread's instruction rate on a core follows a two-term latency model:

``seconds/instruction = cpi_execute / f  +  exposed_memory_stall``

where the execute term scales with frequency and the memory term is a
constant wall-clock cost per instruction (misses/instruction x DRAM latency
x the fraction of latency the core cannot hide).  This gives the classic
behaviour the controllers must cope with: compute-bound code scales with
frequency while memory-bound code saturates — which is why a formal
optimizer finds lower-energy operating points that heuristics miss.

Threads sharing a core time-multiplex it equally.  A cluster-wide memory
bandwidth cap (saturating) adds cross-core contention.
"""

from __future__ import annotations

import numpy as np

from .specs import ClusterSpec

__all__ = ["thread_rate_gips", "core_execution", "memory_traffic_gbs"]

_CACHE_LINE_BYTES = 64.0


def _sum_small(values):
    """Bit-exact sum of a small sequence, without NumPy dispatch overhead.

    ``np.sum`` accumulates sequentially (left to right) below its 8-element
    pairwise/unrolled threshold, so a plain Python loop reproduces it
    bit-for-bit there — and a 1-element-at-a-time loop costs ~20x less than
    a ufunc dispatch.  At >= 8 elements NumPy's 8-way unrolled reduction
    reassociates, so we must fall back to ``np.sum`` itself to preserve the
    historical bit pattern.  Pinned by tests/test_board_bank.py.
    """
    if len(values) < 8:
        total = 0.0
        for value in values:
            total += value
        return total
    return float(np.sum(values))


def thread_rate_gips(cluster: ClusterSpec, freq_ghz, phase, mem_latency_ns,
                     time_share=1.0, bandwidth_scale=1.0):
    """Instruction rate (giga-instructions/s) of one thread on a core.

    ``time_share`` is the fraction of core time the thread receives when the
    core is shared; ``bandwidth_scale`` (<= 1) models DRAM contention.
    """
    if freq_ghz <= 0 or time_share <= 0:
        return 0.0
    cpi = cluster.cpi_execute * phase.cpi_scale
    exec_ns = cpi / freq_ghz
    mem_ns = (phase.mpki / 1000.0) * mem_latency_ns * cluster.mem_stall_factor
    mem_ns /= max(bandwidth_scale, 1e-3)
    return time_share / (exec_ns + mem_ns)


def core_execution(cluster: ClusterSpec, freq_ghz, threads_phases, dt,
                   mem_latency_ns, bandwidth_scale=1.0):
    """Execute one simulator step on a single core.

    Parameters
    ----------
    threads_phases:
        List of ``(thread, phase)`` pairs currently placed on this core.
    bandwidth_scale:
        <= 1; throttle applied by the cluster-level bandwidth model.

    Returns
    -------
    ``(work, busy_fraction, activity)`` where ``work`` is a list of
    giga-instructions executed per thread, ``busy_fraction`` is the fraction
    of the step the core was busy, and ``activity`` is the
    switching-activity factor for the power model (stall cycles switch less).
    """
    if not threads_phases or freq_ghz <= 0:
        return [], 0.0, 0.0
    n = len(threads_phases)
    share = 1.0 / n
    work = []
    total_active_ns = 0.0
    total_exec_ns = 0.0
    for thread, phase in threads_phases:
        available = dt * share
        # Migration penalty eats into this thread's share.
        if thread.migration_stall > 0:
            stall = min(thread.migration_stall, available)
            thread.migration_stall -= stall
            available -= stall
        cpi = cluster.cpi_execute * phase.cpi_scale
        exec_ns = cpi / freq_ghz
        mem_ns = (phase.mpki / 1000.0) * mem_latency_ns * cluster.mem_stall_factor
        mem_ns /= max(bandwidth_scale, 1e-3)
        ns_per_inst = exec_ns + mem_ns
        rate_gips = 1.0 / ns_per_inst  # giga-instructions per second
        done = rate_gips * available
        work.append(done)
        total_active_ns += available * 1e9
        total_exec_ns += done * exec_ns * 1e9
    share_dt = dt / n
    busy_sum = 0.0
    for _ in range(n):
        busy_sum += share_dt
    busy = min(busy_sum, dt) / dt
    # Activity: fraction of busy time actually switching (executing), scaled
    # by the phase's intrinsic activity factor.  _sum_small / min / max
    # reproduce np.mean / np.clip bit-for-bit (see _sum_small).
    mean_activity = _sum_small([p.activity for _, p in threads_phases]) / n
    exec_fraction = total_exec_ns / max(total_active_ns, 1e-30)
    if exec_fraction < 0.05:
        exec_fraction = 0.05
    elif exec_fraction > 1.0:
        exec_fraction = 1.0
    activity = float(mean_activity * exec_fraction)
    return work, busy, activity


def memory_traffic_gbs(threads_phases_rates):
    """Aggregate DRAM traffic (GB/s) from (phase, rate_gips) pairs."""
    traffic = 0.0
    for phase, rate_gips in threads_phases_rates:
        misses_per_s = (phase.mpki / 1000.0) * rate_gips * 1e9
        traffic += misses_per_s * _CACHE_LINE_BYTES / 1e9
    return traffic
