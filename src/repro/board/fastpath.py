"""Vectorized control-period stepping (the board simulation fast path).

:meth:`~repro.board.Board.run_period` advances a whole control period at
once.  Almost everything :meth:`Board.step` computes is invariant across
the ticks of one period — the placement membership, the per-core execution
rates, the DRAM-contention factor, and the dynamic/idle power terms only
change when a controller actuates, a fault fires, the emergency firmware
trips, or an application changes phase, none of which happen mid-period in
the common case.  The fast path therefore *plans* the period once (hoisting
all of that out of the tick loop, including the numpy reductions in
``core_execution``/``cluster_power``) and then advances only the genuinely
sequential state per tick: the thermal/leakage fixed point, the windowed
power sensors, the RNG noise draw, the emergency-firmware timers, and the
instruction crediting.

Exactness contract
------------------
``run_window`` performs, per tick, the *same floating-point operations in
the same order* as ``Board.step`` would, so the resulting board state —
time, energy, temperatures, sensor windows, RNG stream, traces, application
progress — is bit-identical to scalar stepping.  Whenever that cannot be
guaranteed the planner refuses (returns ``None``) and the caller falls back
to scalar ``step()``:

* a fault-injection hook is installed (sensor or actuator);
* a hotplug or thread-migration stall is still draining;
* and, mid-window, the moment an application changes phase / finishes a
  thread or the emergency firmware changes state, the window ends and the
  next tick is re-planned (the tick that *caused* the change is still exact:
  scalar stepping reads rates at the top of the tick too).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cores import _sum_small, core_execution
from .power import _REFERENCE_TEMP
from .specs import BIG, LITTLE

__all__ = ["plan_window", "run_window", "WindowPlan"]


@dataclass
class _ClusterPlan:
    """Step-invariant per-cluster terms of one planned window."""

    dyn: float  # dynamic power (W), constant while rates hold
    leak_base: float  # cores_on * leak_coeff * voltage (W per temp factor)
    leak_temp_coeff: float
    idle: float  # idle power (W)
    instructions: float  # giga-instructions retired per tick
    powered: bool  # False replicates the cores_on<=0 / freq<=0 guard


@dataclass
class WindowPlan:
    """Everything ``run_window`` needs to replay ticks without re-planning."""

    big: _ClusterPlan
    little: _ClusterPlan
    credits: list  # [(app, thread, giga_instructions_per_tick), ...] in order
    bips: dict  # the constant _instant_bips payload
    apps: list  # [(app, runnable-thread snapshot), ...] membership guard
    emergency_snapshot: tuple  # (thermal, power big, power little) throttles
    # Plan-reuse metadata (consumed by BoardBank._plan_for):
    # works: the memo-cached per-cluster credit amounts this plan's credits
    # were built from; layout: {cluster: (per-core [(thread, app)], sig)}.
    works: dict = None
    layout: dict = None


def _emergency_snapshot(board):
    state = board.emergency.state
    return (
        state.thermal_throttled,
        state.power_throttled[BIG],
        state.power_throttled[LITTLE],
    )


def plan_window(board, memo=None):
    """Plan a fast window from the board's current state (or ``None``).

    Mirrors the top half of :meth:`Board.step` exactly — including the
    one side effect scalar stepping performs there, the placement-membership
    refresh — and captures every step-invariant quantity.

    ``memo`` (an ordinary dict owned by the caller, e.g. a
    :class:`~repro.board.bank.BoardBank`) caches the plan *arithmetic* —
    the per-cluster power constants, retired-instruction rates, and
    per-thread credit amounts — keyed by the values it depends on: the
    spec object, each cluster's effective frequency and core count, and
    the (cpi_scale, mpki, activity) characteristics of every placed
    thread's current phase, in placement order.  Boards at the same
    operating point (across lanes of a bank *and* across control periods)
    then skip ``core_execution`` / bandwidth modelling entirely; only the
    board-specific credit list, membership snapshot, and emergency
    snapshot are rebuilt.  Cache hits are exact by construction: the
    cached numbers are pure functions of the key.
    """
    # Any installed fault hook means per-tick fault semantics may apply;
    # stay on the scalar path for the whole faulted region.
    if board.fault_hooks is not None:
        return None
    if board.temp_sensor.fault_hook is not None:
        return None
    if any(s.fault_hook is not None for s in board.power_sensors.values()):
        return None
    for runtime in board.clusters.values():
        if runtime.pending_hotplug_stall > 0:
            return None
    board._refresh_placement_membership()
    phase_of = {}
    apps = []
    for app in board.applications:
        if app.done:
            continue
        runnable = app.runnable_threads()
        apps.append((app, runnable))
        for thread in runnable:
            if thread.migration_stall > 0:
                return None
            phase_of[thread] = (app, app.current_phase)
    if not phase_of:
        return None
    spec = board.spec
    dt = spec.sim_dt
    # Collect the live (thread, phase) placement per computed core — the
    # basis of both the memo key and (on a miss) the plan arithmetic.
    # Cores at index >= cores_active contribute exactly 0.0 activity and
    # no credits, so only the computed prefix matters.
    layout = {}
    for name in (BIG, LITTLE):
        cspec = spec.cluster(name)
        freq = board._effective_frequency(name)
        cores_active = board._effective_cores(name)
        assignment = board.placement.assignment[name]
        per_core = []
        sig = []
        for idx in range(min(cores_active, cspec.n_cores)):
            core_threads = [
                (t, phase_of[t][1]) for t in assignment[idx] if t in phase_of
            ]
            per_core.append(core_threads)
            sig.append(tuple(
                (p.cpi_scale, p.mpki, p.activity) for _, p in core_threads
            ))
        layout[name] = (freq, cores_active, per_core, tuple(sig))
    cached = None
    key = None
    if memo is not None:
        fb, cb, _, sb = layout[BIG]
        fl, cl, _, sl = layout[LITTLE]
        key = (id(spec), fb, cb, sb, fl, cl, sl)
        cached = memo.get(key)
        if cached is not None and cached[0] is not spec:
            cached = None  # id() reuse after GC; never serve a stale spec
    if cached is not None:
        _, plans, bips, works = cached
        credits = []
        for name in (BIG, LITTLE):
            per_core = layout[name][2]
            for core_threads, work in zip(per_core, works[name]):
                for (thread, _), done in zip(core_threads, work):
                    credits.append((phase_of[thread][0], thread, done))
    else:
        # The joint key above misses whenever *any* knob moved, but each
        # quantity below depends on only a slice of it, so sub-memo the
        # slices: the DRAM-contention factor is a pure function of the
        # placed phase characteristics, and each cluster's plan/credit
        # arithmetic is a pure function of that cluster's operating point
        # plus the shared contention factor.  Exact for the same reason
        # the joint memo is: cached numbers are pure functions of the key.
        bw_scale = None
        if memo is not None:
            bw_key = ("bw", id(spec), sb, sl)
            bw_cached = memo.get(bw_key)
            if bw_cached is not None and bw_cached[0] is spec:
                bw_scale = bw_cached[1]
        if bw_scale is None:
            bw_scale = board._bandwidth_scale(phase_of)
            if memo is not None:
                memo[bw_key] = (spec, bw_scale)
        plans = {}
        credits = []
        bips = {}
        works = {}
        for name in (BIG, LITTLE):
            cspec = spec.cluster(name)
            freq, cores_active, per_core, sig = layout[name]
            centry = None
            if memo is not None:
                ckey = ("cluster", id(spec), name, freq, cores_active,
                        sig, bw_scale)
                centry = memo.get(ckey)
                if centry is not None and centry[0] is not spec:
                    centry = None
            if centry is not None:
                _, plans[name], cluster_works, bips[name] = centry
                works[name] = cluster_works
                for core_threads, work in zip(per_core, cluster_works):
                    for (thread, _), done in zip(core_threads, work):
                        credits.append((phase_of[thread][0], thread, done))
                continue
            busy_activity = []
            instructions = 0.0
            cluster_works = []
            for core_threads in per_core:
                work, busy, activity = core_execution(
                    cspec, freq, core_threads, dt,
                    spec.mem_latency_ns, bw_scale,
                )
                cluster_works.append(tuple(work))
                for (thread, _), done in zip(core_threads, work):
                    credits.append((phase_of[thread][0], thread, done))
                    instructions += done
                busy_activity.append(busy * activity)
            works[name] = cluster_works
            if cores_active <= 0 or freq <= 0:
                plans[name] = _ClusterPlan(
                    0.0, 0.0, 0.0, 0.0, instructions, False
                )
            else:
                voltage = cspec.voltage(freq)
                activity_sum = (
                    _sum_small(busy_activity[:cores_active])
                    if len(busy_activity) else 0.0
                )
                plans[name] = _ClusterPlan(
                    dyn=float(
                        cspec.ceff_dynamic * voltage**2 * freq * activity_sum
                    ),
                    leak_base=cores_active * cspec.leak_coeff * voltage,
                    leak_temp_coeff=cspec.leak_temp_coeff,
                    idle=float(cores_active * cspec.idle_power),
                    instructions=instructions,
                    powered=True,
                )
            bips[name] = instructions / dt
            if memo is not None:
                memo[ckey] = (spec, plans[name], cluster_works, bips[name])
        if memo is not None:
            memo[key] = (spec, plans, bips, works)
    return WindowPlan(
        big=plans[BIG],
        little=plans[LITTLE],
        credits=credits,
        bips=bips,
        apps=apps,
        emergency_snapshot=_emergency_snapshot(board),
        works=works if memo is not None else None,
        layout={
            name: (
                [[(t, phase_of[t][0]) for t, _ in core]
                 for core in layout[name][2]],
                layout[name][3],
            )
            for name in (BIG, LITTLE)
        } if memo is not None else None,
    )


def _membership_changed(apps):
    """Did any application's runnable-thread set change since planning?"""
    for app, snapshot in apps:
        if app.done:
            return True
        runnable = app.runnable_threads()
        if len(runnable) != len(snapshot):
            return True
        for now, then in zip(runnable, snapshot):
            if now is not then:
                return True
    return False


def run_window(board, plan, max_steps):
    """Advance up to ``max_steps`` ticks under ``plan``; returns ticks run.

    Stops early (after completing the offending tick, exactly like scalar
    stepping would) when an application event or an emergency-firmware
    state change invalidates the plan.
    """
    spec = board.spec
    dt = spec.sim_dt
    static_power = spec.board_static_power
    thermal = board.thermal
    emergency = board.emergency
    temp_sensor = board.temp_sensor
    sensor_big = board.power_sensors[BIG]
    sensor_little = board.power_sensors[LITTLE]
    counter_big = board.perf_counters[BIG]
    counter_little = board.perf_counters[LITTLE]
    pb, pl = plan.big, plan.little
    credits = plan.credits
    snapshot = plan.emergency_snapshot
    # Hoisted is-None checks: whether the board records a trace is fixed
    # for the board's lifetime, so the disabled path pays one branch per
    # window instead of one per tick.
    record = board.trace is not None
    steps = 0
    while steps < max_steps:
        temperature = thermal.temperature
        # Exact replay of cluster_power().total for each cluster: dynamic
        # and idle are constants, leakage tracks the hot-spot temperature.
        if pb.powered:
            factor = 1.0 + pb.leak_temp_coeff * (temperature - _REFERENCE_TEMP)
            power_big = pb.dyn + pb.leak_base * max(factor, 0.2) + pb.idle
        else:
            power_big = 0.0
        if pl.powered:
            factor = 1.0 + pl.leak_temp_coeff * (temperature - _REFERENCE_TEMP)
            power_little = pl.dyn + pl.leak_base * max(factor, 0.2) + pl.idle
        else:
            power_little = 0.0
        # Application crediting (scalar stepping credits with the tick-start
        # time plus dt; clamping and phase advancement live in execute()).
        now = board.time + dt
        for app, thread, done in credits:
            app.execute(thread, done, now)
        power = {BIG: power_big, LITTLE: power_little}
        thermal.step(power_big, power_little, dt)
        total_power = power_big + power_little + static_power
        board.energy += total_power * dt
        sensor_big.update(power_big)
        counter_big.add(pb.instructions)
        sensor_little.update(power_little)
        counter_little.add(pl.instructions)
        temp_sensor.update(thermal.temperature)
        emergency.update(thermal.temperature, power, dt)
        board._instant_power = power
        board._instant_bips = plan.bips
        board.time += dt
        if record:
            board._record(power)
        steps += 1
        if _emergency_snapshot(board) != snapshot:
            break
        if _membership_changed(plan.apps):
            break
    return steps
