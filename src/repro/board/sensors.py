"""On-board sensors: windowed power meters, temperature, perf counters.

The XU3's INA231 power sensors integrate over ~260 ms and only then update
their register — controllers never see instantaneous power.  That sensor
delay is part of what makes the control problem interesting, so it is
modelled faithfully.

Both analog sensors expose a ``fault_hook`` attribute: when set to a
callable, every ``read()`` passes the healthy value through it.  This is
the seam the fault-injection subsystem (:mod:`repro.faults`) uses for
bias, stuck-at, and dropout faults; a dropped-out sensor reads the NaN
sentinel (:data:`repro.faults.DROPOUT_SENTINEL`).
"""

from __future__ import annotations

__all__ = ["WindowedPowerSensor", "TemperatureSensor", "PerformanceCounter"]


class WindowedPowerSensor:
    """Averages instantaneous power over a fixed window, then latches it."""

    __slots__ = ("period", "dt", "fault_hook",
                 "_accumulated", "_elapsed", "_latched")

    def __init__(self, period, dt):
        self.period = float(period)
        self.dt = float(dt)
        self.fault_hook = None  # optional callable applied by read()
        self._accumulated = 0.0
        self._elapsed = 0.0
        self._latched = 0.0

    def update(self, instantaneous_power):
        """Feed one simulator step of instantaneous power."""
        self._accumulated += instantaneous_power * self.dt
        self._elapsed += self.dt
        if self._elapsed + 1e-12 >= self.period:
            self._latched = self._accumulated / self._elapsed
            self._accumulated = 0.0
            self._elapsed = 0.0

    def read(self):
        """The last latched average power (W), through any fault hook."""
        if self.fault_hook is not None:
            return self.fault_hook(self._latched)
        return self._latched

    def reset(self):
        self._accumulated = 0.0
        self._elapsed = 0.0
        self._latched = 0.0


class TemperatureSensor:
    """Instantaneous on-die temperature readout with Gaussian noise."""

    __slots__ = ("noise_rms", "_rng", "fault_hook", "_last")

    def __init__(self, noise_rms, rng):
        self.noise_rms = float(noise_rms)
        self._rng = rng
        self.fault_hook = None  # optional callable applied by read()
        self._last = 0.0

    def update(self, true_temperature):
        noise = self._rng.normal(scale=self.noise_rms) if self.noise_rms > 0 else 0.0
        self._last = true_temperature + noise
        return self._last

    def read(self):
        if self.fault_hook is not None:
            return self.fault_hook(self._last)
        return self._last


class PerformanceCounter:
    """Cumulative retired-instruction counter (per cluster)."""

    __slots__ = ("total_giga", "_last_read")

    def __init__(self):
        self.total_giga = 0.0
        self._last_read = 0.0

    def add(self, giga_instructions):
        self.total_giga += giga_instructions

    def read_cumulative(self):
        return self.total_giga

    def read_delta(self):
        """Instructions retired since the previous delta read (giga)."""
        delta = self.total_giga - self._last_read
        self._last_read = self.total_giga
        return delta

    def reset(self):
        self.total_giga = 0.0
        self._last_read = 0.0
