"""The simulated ODROID XU3 board.

:class:`Board` glues together the cluster performance model, power model,
thermal model, sensors, emergency firmware, and thread placement into one
discrete-time simulator with the actuation/sensing interface the paper's
controllers use:

* actuation: per-cluster frequency (cpufreq), per-cluster powered-core
  count (hotplug), and thread placement (sched_setaffinity);
* sensing: 260 ms-windowed power sensors, a noisy temperature sensor, and
  per-cluster retired-instruction counters.

The board runs one or more :class:`~repro.workloads.app.Application`
instances concurrently and records full traces for the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cores import core_execution, memory_traffic_gbs, thread_rate_gips
from .fastpath import plan_window, run_window
from .placement import PlacementState, plan_placement, spare_capacity
from .power import cluster_power_total
from .sensors import PerformanceCounter, TemperatureSensor, WindowedPowerSensor
from .specs import BIG, LITTLE, BoardSpec, default_xu3_spec
from .thermal import ThermalModel
from .tmu import EmergencyManager

__all__ = ["Board", "BoardTrace", "ClusterRuntime"]


@dataclass
class ClusterRuntime:
    """Mutable runtime state of one cluster."""

    frequency: float
    cores_on: int
    pending_hotplug_stall: float = 0.0


@dataclass
class BoardTrace:
    """Per-step history recorded during a run."""

    times: list = field(default_factory=list)
    power_big: list = field(default_factory=list)
    power_little: list = field(default_factory=list)
    temperature: list = field(default_factory=list)
    bips_total: list = field(default_factory=list)
    bips_big: list = field(default_factory=list)
    bips_little: list = field(default_factory=list)
    freq_big: list = field(default_factory=list)
    freq_little: list = field(default_factory=list)
    cores_big: list = field(default_factory=list)
    cores_little: list = field(default_factory=list)
    emergency: list = field(default_factory=list)

    def as_arrays(self):
        return {name: np.asarray(values) for name, values in vars(self).items()}


class Board:
    """Discrete-time simulator of the 8-core big.LITTLE board.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.TelemetrySession`; when omitted the board
    picks up the process-wide session (usually ``None`` — telemetry
    disabled), and every instrumented path stays behind a single
    ``is not None`` check.

    ``enable_fast_path`` (class attribute, overridable per instance)
    controls whether :meth:`run_period` may use the vectorized window
    stepping of :mod:`repro.board.fastpath`; disabling it forces scalar
    :meth:`step` everywhere (used by benchmarks to measure the speedup).
    """

    enable_fast_path = True

    def __init__(self, applications, spec: BoardSpec = None, seed=0, record=True,
                 telemetry=None):
        if telemetry is None:
            from ..telemetry import active_session

            telemetry = active_session()
        self.telemetry = telemetry
        self.spec = spec or default_xu3_spec()
        self._rng = np.random.default_rng(seed)
        if not isinstance(applications, (list, tuple)):
            applications = [applications]
        self.applications = list(applications)
        self.time = 0.0
        self.energy = 0.0
        self.clusters = {
            BIG: ClusterRuntime(self.spec.big.freq_range.high, self.spec.big.n_cores),
            LITTLE: ClusterRuntime(
                self.spec.little.freq_range.high, self.spec.little.n_cores
            ),
        }
        self.placement = PlacementState()
        self.thermal = ThermalModel(
            self.spec.ambient_temp,
            self.spec.thermal_resistance,
            self.spec.thermal_tau,
            self.spec.thermal_weight_little,
        )
        # Workloads arrive warm: start near a plausible loaded temperature.
        self.thermal.reset(self.spec.ambient_temp + 15.0)
        self.emergency = EmergencyManager(self.spec)
        self.power_sensors = {
            BIG: WindowedPowerSensor(self.spec.power_sensor_period, self.spec.sim_dt),
            LITTLE: WindowedPowerSensor(self.spec.power_sensor_period, self.spec.sim_dt),
        }
        self.temp_sensor = TemperatureSensor(self.spec.temp_sensor_noise, self._rng)
        self.perf_counters = {BIG: PerformanceCounter(), LITTLE: PerformanceCounter()}
        self.trace = BoardTrace() if record else None
        # Actuator-fault hook layer (installed by repro.faults.FaultInjector):
        # any object with blocks_dvfs/blocks_hotplug/blocks_placement.
        self.fault_hooks = None
        # Commands rejected (non-finite) or clamped (out of range) by the
        # actuation API; the safe-mode supervisor monitors these counters.
        # ``nonfinite_commands`` counts the dropped-outright subset.
        # Read them through :meth:`counters`.
        self.rejected_actuations = {"frequency": 0, "cores": 0, "placement": 0}
        self.nonfinite_commands = {"frequency": 0, "cores": 0, "placement": 0}
        if self.telemetry is not None:
            self.emergency.on_trip = self._tmu_trip
        self._instant_power = {BIG: 0.0, LITTLE: 0.0}
        self._instant_bips = {BIG: 0.0, LITTLE: 0.0}
        # Reused per-tick scratch (step() runs millions of times; fresh
        # dicts/lists per tick dominated its allocation profile).  The
        # power/bips buffers are published via _instant_power/_instant_bips,
        # which consumers read between ticks and never retain.
        self._phase_of_buf = {}
        self._instr_buf = {BIG: 0.0, LITTLE: 0.0}
        self._power_buf = {BIG: 0.0, LITTLE: 0.0}
        self._bips_buf = {BIG: 0.0, LITTLE: 0.0}
        self._busy_buf = {BIG: [], LITTLE: []}
        # Monotonic change counters consumed by BoardBank's plan-reuse
        # logic: _actuation_epoch ticks on every actuation call that lands
        # a real state change, _placement_epoch only on calls that can
        # move threads or cores (DVFS leaves thread placement — and hence
        # the plan's placement layout — untouched).  No-op commands
        # (repeating the current frequency/count, an identical placement
        # deal, a rejected value) change nothing a plan depends on, so
        # they must not invalidate cached plans; every stall-charging
        # path bumps _placement_epoch, which the bank also uses to skip
        # redundant stall scans.
        self._actuation_epoch = 0
        self._placement_epoch = 0
        self._default_placement()

    # ------------------------------------------------------------------
    # Actuation interface (what controllers may call)
    # ------------------------------------------------------------------
    def _validate_command(self, kind, value, low, high):
        """Validate one actuation command against its legal range.

        Non-finite commands are rejected outright (returns ``None``; the
        previous setting survives) and out-of-range commands clamp to the
        legal range — both increment ``rejected_actuations[kind]`` instead
        of silently producing undefined board states.
        """
        try:
            value = float(value)
            finite = np.isfinite(value)
        except (TypeError, ValueError):
            finite = False
        if not finite:
            self.rejected_actuations[kind] += 1
            self.nonfinite_commands[kind] += 1
            if self.telemetry is not None:
                self.telemetry.rejected.labels(kind=kind).inc()
                self.telemetry.nonfinite.labels(kind=kind).inc()
            return None
        if value < low - 1e-9 or value > high + 1e-9:
            self.rejected_actuations[kind] += 1
            if self.telemetry is not None:
                self.telemetry.rejected.labels(kind=kind).inc()
            return float(min(max(value, low), high))
        return value

    def set_cluster_frequency(self, cluster_name, freq_ghz):
        """Request a cluster frequency; snapped to the DVFS table.

        Invalid commands are clamped-and-counted (see ``_validate_command``);
        a non-finite command leaves the current frequency untouched.
        """
        spec = self.spec.cluster(cluster_name)
        freq_ghz = self._validate_command(
            "frequency", freq_ghz, spec.freq_range.low, spec.freq_range.high
        )
        if freq_ghz is None:
            return
        if self.fault_hooks is not None and self.fault_hooks.blocks_dvfs(cluster_name):
            return  # DVFS write silently dropped (injected actuator fault)
        runtime = self.clusters[cluster_name]
        snapped = spec.freq_range.snap(freq_ghz)
        if snapped != runtime.frequency:
            # Re-commanding the current frequency is a no-op and must not
            # invalidate cached plans (excitation sequences hold levels).
            self._actuation_epoch += 1
            runtime.frequency = snapped

    def set_active_cores(self, cluster_name, count):
        """Hotplug cores on/off; clamped to [1, 4]; charges a stall."""
        spec = self.spec.cluster(cluster_name)
        runtime = self.clusters[cluster_name]
        count = self._validate_command("cores", count, 1, spec.n_cores)
        if count is None:
            return
        if self.fault_hooks is not None and self.fault_hooks.blocks_hotplug(
            cluster_name
        ):
            return  # hotplug request silently dropped (injected fault)
        count = int(round(count))
        if count != runtime.cores_on:
            # Only a real hotplug moves threads; repeating the current
            # count is a no-op and must not invalidate cached plans.
            self._actuation_epoch += 1
            self._placement_epoch += 1
            runtime.pending_hotplug_stall += self.spec.hotplug_cost_s
            runtime.cores_on = count
            self._repack_overflow(cluster_name)

    def set_placement_knobs(self, n_threads_big, tpc_big, tpc_little):
        """Software-layer actuation: the three aggregate placement knobs."""
        total_cores = self.spec.big.n_cores + self.spec.little.n_cores
        n_threads_big = self._validate_command(
            "placement", n_threads_big, 0, 4 * total_cores
        )
        tpc_big = self._validate_command("placement", tpc_big, 1.0, 8.0)
        tpc_little = self._validate_command("placement", tpc_little, 1.0, 8.0)
        if n_threads_big is None or tpc_big is None or tpc_little is None:
            return
        if self.fault_hooks is not None and self.fault_hooks.blocks_placement():
            return  # placement knobs stuck (injected fault)
        threads = self._gather_runnable_threads()
        new_assignment = plan_placement(
            threads,
            n_threads_big,
            tpc_big,
            tpc_little,
            self.clusters[BIG].cores_on,
            self.clusters[LITTLE].cores_on,
        )
        if new_assignment == self.placement.assignment:
            return  # identical deal: no migrations, keep cached plans valid
        self._actuation_epoch += 1
        self._placement_epoch += 1
        self.placement.apply(new_assignment, self.spec.migration_cost_s)

    def set_raw_placement(self, assignment):
        """Direct per-core assignment (used by heuristic OS controllers)."""
        if assignment == self.placement.assignment:
            return  # identical deal: no migrations, keep cached plans valid
        self._actuation_epoch += 1
        self._placement_epoch += 1
        self.placement.apply(assignment, self.spec.migration_cost_s)

    # ------------------------------------------------------------------
    # Sensing interface
    # ------------------------------------------------------------------
    def read_power(self, cluster_name):
        return self.power_sensors[cluster_name].read()

    def read_temperature(self):
        return self.temp_sensor.read()

    def read_instructions_delta(self, cluster_name):
        """Giga-instructions retired since the last delta read."""
        return self.perf_counters[cluster_name].read_delta()

    def observe_placement(self):
        """What the layers can see of the current placement (Eq. 2 inputs)."""
        result = {}
        for name in (BIG, LITTLE):
            threads = self.placement.threads_on(name)
            busy = self.placement.busy_cores(name)
            cores_on = self.clusters[name].cores_on
            result[name] = {
                "n_threads": len(threads),
                "busy_cores": busy,
                "cores_on": cores_on,
                "threads_per_busy_core": len(threads) / busy if busy else 0.0,
                "spare_capacity": spare_capacity(len(threads), busy, cores_on),
            }
        return result

    def runnable_thread_count(self):
        return len(self._gather_runnable_threads())

    def counters(self):
        """Public snapshot of the board's actuation-health counters.

        ``rejected`` counts every command the actuation API refused or
        clamped (the superset); ``nonfinite`` counts the dropped-outright
        NaN/inf subset.  ``tmu_trips`` / ``tmu_throttle_time`` expose the
        emergency firmware's interventions.
        """
        return {
            "rejected": dict(self.rejected_actuations),
            "nonfinite": dict(self.nonfinite_commands),
            "tmu_trips": self.emergency.state.trip_count,
            "tmu_throttle_time": self.emergency.state.throttle_time,
        }

    def reset_counters(self):
        """Zero the rejected/non-finite actuation counters."""
        for counter in (self.rejected_actuations, self.nonfinite_commands):
            for key in counter:
                counter[key] = 0

    @property
    def done(self):
        return all(app.done for app in self.applications)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self):
        """Advance the board by one simulator step."""
        dt = self.spec.sim_dt
        self._refresh_placement_membership()
        phase_of = self._phase_of_buf
        phase_of.clear()
        for app in self.applications:
            if app.done:
                continue
            for thread in app.runnable_threads():
                phase_of[thread] = (app, app.current_phase)
        # --- bandwidth contention (one global saturating DRAM model) ----
        bw_scale = self._bandwidth_scale(phase_of)
        instructions = self._instr_buf
        instructions[BIG] = 0.0
        instructions[LITTLE] = 0.0
        power = self._power_buf
        for name in (BIG, LITTLE):
            spec = self.spec.cluster(name)
            runtime = self.clusters[name]
            freq = self._effective_frequency(name)
            cores_active = self._effective_cores(name)
            busy_activity = self._busy_buf[name]
            del busy_activity[:]
            stall = min(runtime.pending_hotplug_stall, dt)
            runtime.pending_hotplug_stall -= stall
            effective_dt = dt - stall
            for idx in range(spec.n_cores):
                if idx >= cores_active:
                    busy_activity.append(0.0)
                    continue
                core_threads = [
                    (t, phase_of[t][1])
                    for t in self.placement.assignment[name][idx]
                    if t in phase_of
                ]
                work, busy, activity = core_execution(
                    spec, freq, core_threads, effective_dt,
                    self.spec.mem_latency_ns, bw_scale,
                )
                for (thread, _), done in zip(core_threads, work):
                    app, _ = phase_of[thread]
                    app.execute(thread, done, self.time + dt)
                    instructions[name] += done
                busy_activity.append(busy * activity)
            power[name] = cluster_power_total(
                spec, freq, cores_active, busy_activity, self.thermal.temperature
            )
        # --- thermal, sensors, firmware ---------------------------------
        self.thermal.step(power[BIG], power[LITTLE], dt)
        total_power = power[BIG] + power[LITTLE] + self.spec.board_static_power
        self.energy += total_power * dt
        for name in (BIG, LITTLE):
            self.power_sensors[name].update(power[name])
            self.perf_counters[name].add(instructions[name])
        self.temp_sensor.update(self.thermal.temperature)
        self.emergency.update(self.thermal.temperature, power, dt)
        self._instant_power = power
        bips = self._bips_buf
        bips[BIG] = instructions[BIG] / dt
        bips[LITTLE] = instructions[LITTLE] / dt
        self._instant_bips = bips
        self.time += dt
        if self.trace is not None:
            self._record(power)

    def run_period(self, n_steps):
        """Advance up to ``n_steps`` ticks (typically one control period).

        Uses the vectorized fast path of :mod:`repro.board.fastpath`
        whenever the board state permits, falling back to scalar
        :meth:`step` around faults, draining stalls, emergency-firmware
        transitions, and application phase changes.  The resulting board
        state is bit-identical to calling :meth:`step` ``n_steps`` times
        (stopping when all applications finish); returns the number of
        ticks actually executed.
        """
        executed = 0
        fast = self.enable_fast_path  # hoisted: one attribute read per call
        while executed < n_steps and not self.done:
            plan = plan_window(self) if fast else None
            if plan is None:
                self.step()
                executed += 1
            else:
                executed += run_window(self, plan, n_steps - executed)
        return executed

    def run(self, duration=None, max_time=1e9, callback=None):
        """Step until all applications finish (or limits hit).

        ``callback(board)`` fires after every step; controllers are driven
        by the experiment runner instead, so this is mostly for tests.
        """
        end = self.time + duration if duration is not None else max_time
        if callback is None:
            # Hoisted is-None check: the common no-callback loop pays no
            # per-tick branch for the disabled path.
            while self.time < end:
                if duration is None and self.done:
                    break
                self.step()
        else:
            while self.time < end:
                if duration is None and self.done:
                    break
                self.step()
                callback(self)
        return self

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tmu_trip(self, kind):
        """Emergency-firmware trip callback (installed when telemetry is on)."""
        tel = self.telemetry
        if tel is not None:
            tel.tmu_trips.labels(type=kind).inc()
            tel.instant("tmu.trip", cat="firmware", kind=kind,
                        board_time=self.time)

    def _effective_frequency(self, cluster_name):
        freq = self.clusters[cluster_name].frequency
        cap = self.emergency.frequency_cap(cluster_name)
        if cap is not None:
            freq = min(freq, cap)
        return freq

    def _effective_cores(self, cluster_name):
        cores = self.clusters[cluster_name].cores_on
        cap = self.emergency.core_cap(cluster_name)
        if cap is not None:
            cores = min(cores, cap)
        return cores

    def _gather_runnable_threads(self):
        threads = []
        for app in self.applications:
            threads.extend(app.runnable_threads())
        return threads

    def _default_placement(self):
        threads = self._gather_runnable_threads()
        assignment = plan_placement(
            threads,
            n_threads_big=min(len(threads), self.clusters[BIG].cores_on),
            threads_per_core_big=1,
            threads_per_core_little=1,
            cores_on_big=self.clusters[BIG].cores_on,
            cores_on_little=self.clusters[LITTLE].cores_on,
        )
        self.placement.assignment = assignment

    def _refresh_placement_membership(self):
        """Drop finished threads; pick up threads from new phases."""
        live = set(self._gather_runnable_threads())
        placed = set(self.placement.all_threads())
        if placed == live:
            return
        self._placement_epoch += 1
        # Keep surviving threads where they are; deal new ones round-robin
        # over the busiest-available cores (cheap, deterministic).
        for name in (BIG, LITTLE):
            for core in self.placement.assignment[name]:
                core[:] = [t for t in core if t in live]
        new_threads = sorted(live - placed, key=lambda t: (t.app_name, t.thread_id))
        if new_threads:
            slots = []
            for name in (BIG, LITTLE):
                for idx in range(self.clusters[name].cores_on):
                    slots.append((len(self.placement.assignment[name][idx]), name, idx))
            slots.sort()
            for i, thread in enumerate(new_threads):
                _, name, idx = slots[i % len(slots)]
                self.placement.assignment[name][idx].append(thread)

    def _repack_overflow(self, cluster_name):
        """Move threads off hotplugged-out cores onto remaining ones."""
        runtime = self.clusters[cluster_name]
        cores = self.placement.assignment[cluster_name]
        overflow = []
        for idx in range(runtime.cores_on, len(cores)):
            overflow.extend(cores[idx])
            cores[idx] = []
        for i, thread in enumerate(overflow):
            cores[i % runtime.cores_on].append(thread)
            thread.migration_stall += self.spec.migration_cost_s

    def _bandwidth_scale(self, phase_of):
        """Global DRAM-saturation factor from the would-be traffic."""
        demands = []
        for name in (BIG, LITTLE):
            spec = self.spec.cluster(name)
            freq = self._effective_frequency(name)
            for idx in range(self._effective_cores(name)):
                core_threads = self.placement.assignment[name][idx]
                live = [t for t in core_threads if t in phase_of]
                if not live:
                    continue
                share = 1.0 / len(live)
                for t in live:
                    phase = phase_of[t][1]
                    rate = thread_rate_gips(
                        spec, freq, phase, self.spec.mem_latency_ns, share
                    )
                    demands.append((phase, rate))
        traffic = memory_traffic_gbs(demands)
        if traffic <= self.spec.mem_bandwidth_gbs:
            return 1.0
        return float(self.spec.mem_bandwidth_gbs / traffic)

    def _record(self, power):
        trace = self.trace
        trace.times.append(self.time)
        trace.power_big.append(power[BIG])
        trace.power_little.append(power[LITTLE])
        trace.temperature.append(self.thermal.temperature)
        trace.bips_big.append(self._instant_bips[BIG])
        trace.bips_little.append(self._instant_bips[LITTLE])
        trace.bips_total.append(self._instant_bips[BIG] + self._instant_bips[LITTLE])
        trace.freq_big.append(self._effective_frequency(BIG))
        trace.freq_little.append(self._effective_frequency(LITTLE))
        trace.cores_big.append(self.clusters[BIG].cores_on)
        trace.cores_little.append(self.clusters[LITTLE].cores_on)
        trace.emergency.append(self.emergency.state.any_active)
