"""Cluster power model: dynamic CV^2f plus temperature-dependent leakage."""

from __future__ import annotations

from .cores import _sum_small
from .specs import ClusterSpec

__all__ = ["cluster_power", "cluster_power_total", "PowerBreakdown"]

_REFERENCE_TEMP = 55.0  # degC at which leak_coeff is specified


class PowerBreakdown:
    """Per-cluster power split into dynamic / leakage / idle components."""

    def __init__(self, dynamic, leakage, idle):
        self.dynamic = float(dynamic)
        self.leakage = float(leakage)
        self.idle = float(idle)

    @property
    def total(self):
        return self.dynamic + self.leakage + self.idle

    def __repr__(self):
        return (
            f"PowerBreakdown(dyn={self.dynamic:.3f}, leak={self.leakage:.3f}, "
            f"idle={self.idle:.3f})"
        )


def cluster_power(
    cluster: ClusterSpec, freq_ghz, cores_on, busy_activity, temperature
):
    """Instantaneous power (W) of one cluster.

    Parameters
    ----------
    freq_ghz:
        Current cluster frequency (all cores in a cluster share DVFS).
    cores_on:
        Number of powered cores (hotplugged-off cores draw nothing).
    busy_activity:
        Sequence of per-core ``busy_fraction * activity`` products for the
        powered cores (zeros for idle cores).
    temperature:
        Hot-spot temperature (degC), driving leakage.
    """
    if cores_on <= 0 or freq_ghz <= 0:
        return PowerBreakdown(0.0, 0.0, 0.0)
    voltage = cluster.voltage(freq_ghz)
    # Dynamic: Ceff (nF) * V^2 * f (GHz) yields Watts directly
    # (1e-9 F * V^2 * 1e9 Hz = W).
    activity_sum = _sum_small(busy_activity[:cores_on]) if len(busy_activity) else 0.0
    dynamic = cluster.ceff_dynamic * voltage**2 * freq_ghz * activity_sum
    # Leakage: per powered core, linear in V, exponential-ish in T
    # (linearized: fractional increase per degree).
    temp_factor = 1.0 + cluster.leak_temp_coeff * (temperature - _REFERENCE_TEMP)
    leakage = cores_on * cluster.leak_coeff * voltage * max(temp_factor, 0.2)
    idle = cores_on * cluster.idle_power
    return PowerBreakdown(dynamic, leakage, idle)


def cluster_power_total(
    cluster: ClusterSpec, freq_ghz, cores_on, busy_activity, temperature
):
    """``cluster_power(...).total`` without the breakdown allocation.

    The tick loop only consumes the total; the identical operation
    sequence keeps the result bit-for-bit equal to the breakdown path.
    """
    if cores_on <= 0 or freq_ghz <= 0:
        return 0.0
    voltage = cluster.voltage(freq_ghz)
    activity_sum = _sum_small(busy_activity[:cores_on]) if len(busy_activity) else 0.0
    dynamic = cluster.ceff_dynamic * voltage**2 * freq_ghz * activity_sum
    temp_factor = 1.0 + cluster.leak_temp_coeff * (temperature - _REFERENCE_TEMP)
    leakage = cores_on * cluster.leak_coeff * voltage * max(temp_factor, 0.2)
    idle = cores_on * cluster.idle_power
    return dynamic + leakage + idle
