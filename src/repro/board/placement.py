"""Thread-to-core placement mechanics.

The software controller does not move individual threads; it actuates three
aggregate knobs (Sec. IV-B): the number of threads on the big cluster, and
the average threads-per-busy-core in each cluster.  :func:`plan_placement`
turns those knob values into a concrete per-core assignment, and
:class:`PlacementState` tracks the current assignment so migration penalties
can be charged when it changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .specs import BIG, LITTLE

__all__ = ["PlacementState", "plan_placement", "spare_capacity"]


@dataclass
class PlacementState:
    """Current assignment: cluster -> list of per-core thread lists."""

    assignment: dict = field(
        default_factory=lambda: {BIG: [[] for _ in range(4)], LITTLE: [[] for _ in range(4)]}
    )

    def threads_on(self, cluster_name):
        return [t for core in self.assignment[cluster_name] for t in core]

    def all_threads(self):
        return self.threads_on(BIG) + self.threads_on(LITTLE)

    def busy_cores(self, cluster_name):
        return sum(1 for core in self.assignment[cluster_name] if core)

    def core_of(self, thread):
        for cluster_name in (BIG, LITTLE):
            for idx, core in enumerate(self.assignment[cluster_name]):
                if thread in core:
                    return cluster_name, idx
        return None, None

    def apply(self, new_assignment, migration_cost_s):
        """Install a new assignment, charging migration stalls for moves."""
        old_location = {}
        for cluster_name in (BIG, LITTLE):
            for idx, core in enumerate(self.assignment[cluster_name]):
                for thread in core:
                    old_location[thread] = (cluster_name, idx)
        moved = 0
        for cluster_name in (BIG, LITTLE):
            for idx, core in enumerate(new_assignment[cluster_name]):
                for thread in core:
                    if old_location.get(thread, (None, None)) != (cluster_name, idx):
                        if thread in old_location:
                            thread.migration_stall += migration_cost_s
                            moved += 1
        self.assignment = new_assignment
        return moved


def plan_placement(
    threads,
    n_threads_big,
    threads_per_core_big,
    threads_per_core_little,
    cores_on_big,
    cores_on_little,
):
    """Map the software controller's three knobs onto a concrete assignment.

    Threads are dealt in order: the first ``n_threads_big`` go to the big
    cluster packed ``threads_per_core_big`` to a core (without exceeding the
    powered-core count), the rest to the little cluster likewise.  Knob
    values are clamped to what the thread count and powered cores allow.
    """
    threads = list(threads)
    total = len(threads)
    n_big = int(round(min(max(n_threads_big, 0), total)))
    big_threads = threads[:n_big]
    little_threads = threads[n_big:]
    assignment = {BIG: [[] for _ in range(4)], LITTLE: [[] for _ in range(4)]}

    def pack(cluster_threads, per_core, cores_on, cluster_name):
        if not cluster_threads:
            return
        per_core = max(1.0, float(per_core))
        want_cores = max(1, math.ceil(len(cluster_threads) / per_core))
        use_cores = min(want_cores, max(cores_on, 1))
        for i, thread in enumerate(cluster_threads):
            assignment[cluster_name][i % use_cores].append(thread)

    pack(big_threads, threads_per_core_big, cores_on_big, BIG)
    pack(little_threads, threads_per_core_little, cores_on_little, LITTLE)
    return assignment


def spare_capacity(n_threads, busy_cores, cores_on):
    """The paper's Spare Compute metric (Eq. 2).

    ``SC = idle_cores_on - (threads - cores_on)``.
    """
    idle_on = max(cores_on - busy_cores, 0)
    return idle_on - (n_threads - cores_on)
