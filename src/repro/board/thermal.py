"""First-order RC thermal model of the SoC hot spot.

The Exynos hot spot sits in the A15 cluster; little-cluster and board power
contribute with a reduced coupling weight.  The model is the standard
lumped RC:  ``tau * dT/dt = (T_amb + R * P_eff) - T``.
"""

from __future__ import annotations

__all__ = ["ThermalModel"]


class ThermalModel:
    """Lumped hot-spot temperature state."""

    def __init__(self, ambient, resistance, tau, little_weight):
        self.ambient = float(ambient)
        self.resistance = float(resistance)
        self.tau = float(tau)
        self.little_weight = float(little_weight)
        self.temperature = float(ambient)

    def steady_state(self, power_big, power_little):
        """Equilibrium temperature for a constant power draw."""
        effective = power_big + self.little_weight * power_little
        return self.ambient + self.resistance * effective

    def step(self, power_big, power_little, dt):
        """Advance the hot-spot temperature by ``dt`` seconds."""
        target = self.steady_state(power_big, power_little)
        alpha = dt / max(self.tau, 1e-9)
        alpha = min(alpha, 1.0)
        self.temperature += alpha * (target - self.temperature)
        return self.temperature

    def reset(self, temperature=None):
        self.temperature = self.ambient if temperature is None else float(temperature)
