"""Batched board bank: structure-of-arrays lockstep simulation.

Yukta's evaluation is dominated by simulating many *independent* board
instances — (scheme × workload × seed) matrix cells, fault-campaign
replicas, and the excitation experiments behind characterization.  The
single-board fast path (:mod:`repro.board.fastpath`) already hoists the
step-invariants of one board out of the tick loop; :class:`BoardBank`
goes one axis further and advances ``B`` boards *in lockstep*, holding
the genuinely sequential per-tick state as structure-of-arrays (one
NumPy lane per board) so each tick is a handful of vectorized kernels
instead of ``B`` Python interpreter passes:

* hot-spot temperature, dynamic/leakage/idle power, and energy
  integrate as ``(2, B)`` / ``(B,)`` arrays (clusters stacked on the
  leading axis);
* the windowed power sensors and performance counters update under
  boolean latch masks;
* per-board temperature-sensor noise is pre-drawn in blocks from each
  board's own generator (NumPy ``Generator`` draws are bit-identical
  whether batched or sequential — asserted by the test suite) and the
  generator is rewound to the exact number of draws consumed, so RNG
  streams match scalar stepping;
* the emergency-firmware threshold state machine runs as masked array
  updates — with a window-level contraction bound that proves, up
  front, that no lane can trip this window, collapsing the machine to
  one vector op per tick in the common case;
* application crediting runs as per-slot scatter-adds over a flat cell
  array (threads' barrier budgets, apps' shared pools, completed
  instructions) for as long as a conservatively computed horizon
  guarantees no budget can clamp or run dry — the exact floating-point
  subtraction sequence scalar ``Application.execute`` performs.

Planning is also amortized: the bank passes a shared memo to
:func:`repro.board.fastpath.plan_window`, so boards at the same
operating point (same spec object, effective frequencies, core counts,
and per-core phase characteristics) reuse one window plan's math
across lanes *and* across control periods.

On top of the per-period kernel, :meth:`BoardBank.run_schedule_bank`
*fuses* whole DVFS schedules: it validates and snaps up to
``block_periods`` upcoming frequency commands at once, plans every lane
for every distinct operating point in the block, proves one no-trip
temperature bound and one credit horizon for the whole block, and then
advances all lanes ``K x period_steps`` ticks in a single resident
pass — board state is gathered and scattered once per block instead of
once per period, and no per-board Python actuation code runs between
fused periods.  Blocks that cannot be proven quiet fall back to the
exact per-period path one period at a time and retry fusing from the
next period.

Exactness contract
------------------
Every lane performs, per tick, the *same floating-point operations in
the same order* as that board's scalar :meth:`Board.step` (equivalently
the single-board fast path) would, so each board's resulting state —
time, energy, temperatures, sensor windows, RNG stream, traces,
application progress, emergency timers — is **bit-identical** to running
the ``B`` boards independently.  Boards that diverge into scalar-only
territory are masked out of the lockstep kernel and finished through
the existing scalar/fastpath machinery:

* a lane with a draining hotplug/migration stall peels exactly the
  stalled ticks through the scalar stepper, then rejoins the lockstep
  kernel the moment the planner accepts it again (lanes whose placement
  epoch is unchanged since their last stall-free check skip the scan
  entirely);
* boards with fault hooks or a registered per-tick hook (e.g. a fault
  injector's ``advance``) always run the scalar per-tick loop;
* mid-window, the moment a board's emergency firmware changes state or
  an application's runnable-thread set changes, the lockstep window ends
  (the offending tick is still exact), only that board's plan is
  invalidated, and every lane — including the divergent one, under its
  refreshed plan — re-enters the vector kernel at the next window.
"""

from __future__ import annotations

import numpy as np

from .fastpath import (
    WindowPlan,
    _emergency_snapshot,
    _membership_changed,
    plan_window,
    run_window,
)
from .power import _REFERENCE_TEMP
from .specs import BIG, LITTLE

__all__ = ["BoardBank"]


def _power_emergency_cap(spec, name):
    """The constant frequency the firmware clamps to on a power trip."""
    cspec = spec.cluster(name)
    return cspec.freq_range.snap(
        cspec.freq_range.low + 0.3 * cspec.freq_range.span
    )


class _MembershipGuard:
    """Cheap exact re-derivation of fastpath's ``_membership_changed``.

    Runnable-thread sets only change through ``Application.execute`` side
    effects (phase advancement, barrier threads finishing), and the bank
    is the only caller of ``execute`` mid-window — so instead of
    rebuilding the runnable list every tick, it suffices to watch each
    planned app's phase index / done flag, plus (for barrier phases) the
    snapshot threads' remaining budgets hitting zero.
    """

    __slots__ = ("entries",)

    def __init__(self, plan):
        self.entries = [
            (app, app.phase_index, app.current_phase.barrier, snapshot)
            for app, snapshot in plan.apps
        ]

    def changed(self):
        for app, phase_index, barrier, snapshot in self.entries:
            if app.done or app.phase_index != phase_index:
                return True
            if barrier:
                for thread in snapshot:
                    if thread.remaining <= 0:
                        return True
        return False


class _CreditSchedule:
    """Vectorized replay of one window's per-tick application crediting.

    Scalar stepping calls ``app.execute(thread, done, now)`` for every
    planned credit, every tick — a min-clamp, one subtraction from the
    thread's barrier budget or the app's shared pool, one addition to the
    app's completed-instruction counter, and a phase-advance check.  Far
    from exhaustion none of the clamps or advances can fire, so the whole
    tick reduces to the same subtractions/additions on a flat float
    array: one scatter-add per credit *slot* (position in the per-board
    credit list) covers every board at once while preserving the exact
    per-cell operation order.

    ``horizon`` is the number of ticks this is provably safe for: each
    budget cell keeps at least three full ticks of decrement in reserve
    (crushing both the ``min(done, remaining)`` clamp and the ``1e-12``
    phase-advance threshold, with orders of magnitude to spare over
    accumulated rounding).  At the horizon the caller scatters the cells
    back into the Python objects and finishes the window with ordinary
    ``execute`` calls.
    """

    __slots__ = ("cells", "vals", "slots", "value_decs", "horizon",
                 "scattered", "plan_ident", "_dec_idx", "_dec_arr")

    _THREAD = 0
    _POOL = 1
    _DONE = 2

    def __init__(self, indices, plans):
        cells = []  # (kind, object)
        decs = []
        index = {}
        slot_ids = []
        slot_ws = []
        for i in indices:
            for j, (app, thread, done) in enumerate(plans[i].credits):
                if j >= len(slot_ids):
                    slot_ids.append([])
                    slot_ws.append([])
                if app.current_phase.barrier:
                    vkey = id(thread)
                    if vkey not in index:
                        index[vkey] = len(cells)
                        cells.append((self._THREAD, thread))
                        decs.append(0.0)
                else:
                    vkey = -1 - id(app)  # disjoint from thread id keys
                    if vkey not in index:
                        index[vkey] = len(cells)
                        cells.append((self._POOL, app))
                        decs.append(0.0)
                vc = index[vkey]
                ckey = ("c", id(app))
                if ckey not in index:
                    index[ckey] = len(cells)
                    cells.append((self._DONE, app))
                    decs.append(0.0)
                decs[vc] += done
                slot_ids[j].append(vc)
                slot_ids[j].append(index[ckey])
                slot_ws[j].append(-done)
                slot_ws[j].append(done)
        self.cells = cells
        self.value_decs = [
            (c, decs[c]) for c, (kind, _) in enumerate(cells)
            if kind != self._DONE and decs[c] > 0.0
        ]
        self.slots = [
            (np.array(ids, dtype=np.intp), np.array(ws))
            for ids, ws in zip(slot_ids, slot_ws)
        ]
        if self.value_decs:
            self._dec_idx = np.array(
                [c for c, _ in self.value_decs], dtype=np.intp
            )
            self._dec_arr = np.array([d for _, d in self.value_decs])
        else:
            self._dec_idx = None
            self._dec_arr = None
        self.plan_ident = None  # set by the bank's schedule cache
        self.refresh()

    def refresh(self):
        """Re-read the live cell values (the structure is state-free)."""
        _thread = self._THREAD
        _pool = self._POOL
        vals = [
            obj.remaining if kind == _thread
            else obj.pool_remaining if kind == _pool
            else obj.completed_instructions
            for kind, obj in self.cells
        ]
        self.vals = np.array(vals) if vals else None
        if self._dec_idx is not None:
            # Truncation is monotone, so int(min(v/d)) == min(int(v/d)).
            self.horizon = max(
                int((self.vals[self._dec_idx] / self._dec_arr).min()) - 3, 0
            )
        else:
            self.horizon = None
        self.scattered = False

    def safe_ticks(self, max_ticks):
        return max_ticks if self.horizon is None else min(self.horizon,
                                                          max_ticks)

    def tick(self):
        vals = self.vals
        for ids, ws in self.slots:
            vals[ids] += ws

    def scatter(self):
        """Write the cell lanes back into the live application objects."""
        if self.scattered or self.vals is None:
            self.scattered = True
            return
        out = self.vals.tolist()
        for c, (kind, obj) in enumerate(self.cells):
            if kind == self._THREAD:
                obj.remaining = out[c]
            elif kind == self._POOL:
                obj.pool_remaining = out[c]
            else:
                obj.completed_instructions = out[c]
        self.scattered = True


class BoardBank:
    """Advance ``B`` independent boards in vectorized lockstep.

    ``track_violations`` additionally accumulates per-board seconds with
    the *true* die temperature above ``spec.temp_limit`` and big-cluster
    instantaneous power above ``spec.power_limit_big`` (what the
    resilience experiment's per-tick clocks measure), on both the
    vectorized and the scalar-fallback paths.

    ``enable_vector_path`` (class attribute, overridable per instance)
    forces everything through the per-board scalar/fastpath when False —
    used by benchmarks and differential tests.
    """

    enable_vector_path = True

    def __init__(self, boards, telemetry=None, track_violations=False):
        if telemetry is None:
            from ..telemetry import active_session

            telemetry = active_session()
        self.telemetry = telemetry
        self.boards = list(boards)
        if not self.boards:
            raise ValueError("a BoardBank needs at least one board")
        dts = {board.spec.sim_dt for board in self.boards}
        if len(dts) != 1:
            raise ValueError(
                f"lockstep stepping requires one shared sim_dt, got {sorted(dts)}"
            )
        self._dt = self.boards[0].spec.sim_dt
        self.track_violations = track_violations
        n = len(self.boards)
        self.temp_violation_time = np.zeros(n)
        self.power_violation_time = np.zeros(n)
        self._tick_hooks = {}
        self._plan_memo = {}
        # Plan/schedule reuse state (see _plan_for and _run_vector_window):
        # _replan_cache holds each board's last WindowPlan plus the change
        # counters it is conditioned on; _board_gen ticks whenever a
        # board's thread/app identity may have changed (full replans);
        # _plan_gen ticks when the memo is cleared (invalidates every
        # id()-keyed derived cache at once).
        self._replan_cache = {}
        self._board_gen = [0] * n
        self._plan_gen = 0
        self._sched_cache = {}
        self._lane_cache = {}
        self._slice_cache = {}
        # Full WindowPlan objects keyed by the complete live state they
        # were planned from (thread/app identity, placement content,
        # effective operating point, emergency flags) — operating points
        # recur when excitation cycles a small level set, and a matching
        # key proves the cached plan (and its works/layout identity, which
        # keeps the schedule caches warm) is valid verbatim.
        self._plan_by_state = {}
        # Last placement epoch at which each lane was verified stall-free:
        # every stall-charging path (hotplug, placement apply) bumps the
        # board's _placement_epoch, so an unchanged epoch proves the
        # stall-peel pre-pass has nothing to drain and can be skipped.
        self._stall_free = [None] * n
        # Fused-kernel state: validated/snapped schedule entries keyed by
        # raw command pair, and whole-block no-trip temperature bounds
        # keyed by the block's operating-point set.
        self._snap_cache = {}
        self._fused_ub = {}
        self._build_constants()
        # Introspection counters (mirrored into telemetry when enabled).
        self.vector_ticks = 0  # board-ticks executed by the vector kernel
        self.scalar_ticks = 0  # board-ticks finished via scalar/fastpath
        self.windows = 0  # vectorized windows executed
        self.fused_blocks = 0  # multi-period fused blocks executed
        self.fused_ticks = 0  # board-ticks executed inside fused blocks
        self.events = {"emergency": 0, "membership": 0, "plan_refused": 0,
                       "stall_peel": 0}

    def _build_constants(self):
        """Per-board spec/model constants, gathered once as full arrays."""
        boards = self.boards
        dt = self._dt
        specs = [b.spec for b in boards]

        def pair(fn_big, fn_little):
            return np.array([[fn_big(s) for s in specs],
                             [fn_little(s) for s in specs]])

        c = {}
        c["static"] = np.array([s.board_static_power for s in specs])
        c["ambient"] = np.array([b.thermal.ambient for b in boards])
        c["resistance"] = np.array([b.thermal.resistance for b in boards])
        c["lweight"] = np.array([b.thermal.little_weight for b in boards])
        c["alpha"] = np.array(
            [min(dt / max(b.thermal.tau, 1e-9), 1.0) for b in boards]
        )
        c["temp_trip"] = np.array([s.emergency_temp_trip for s in specs])
        c["temp_clear"] = np.array([s.emergency_temp_clear for s in specs])
        c["temp_limit"] = np.array([s.temp_limit for s in specs])
        c["throttle_freq"] = np.array(
            [s.emergency_throttle_freq for s in specs]
        )
        c["limit"] = pair(lambda s: s.power_limit_big,
                          lambda s: s.power_limit_little)
        c["thresh"] = pair(
            lambda s: s.power_limit_big * s.emergency_power_factor,
            lambda s: s.power_limit_little * s.emergency_power_factor,
        )
        c["pcap"] = pair(lambda s: _power_emergency_cap(s, BIG),
                         lambda s: _power_emergency_cap(s, LITTLE))
        c["sdt"] = np.array(
            [[b.power_sensors[BIG].dt for b in boards],
             [b.power_sensors[LITTLE].dt for b in boards]]
        )
        c["speriod"] = np.array(
            [[b.power_sensors[BIG].period for b in boards],
             [b.power_sensors[LITTLE].period for b in boards]]
        )
        ems = [type(b.emergency) for b in boards]
        c["trip_delay"] = np.array([[e.POWER_TRIP_DELAY for e in ems]] * 2)
        c["clear_delay"] = np.array([[e.POWER_CLEAR_DELAY for e in ems]] * 2)
        c["min_hold"] = np.array([[e.MIN_HOLD for e in ems]] * 2)
        c["noise_rms"] = np.array(
            [b.temp_sensor.noise_rms for b in boards]
        )
        # The window-level no-trip bound (see _run_vector_window) relies on
        # the thermal/power fixed point being monotone in temperature.
        c["monotone"] = bool(
            (c["resistance"] >= 0).all()
            and (c["lweight"] >= 0).all()
            and all(
                s.big.leak_temp_coeff >= 0 and s.little.leak_temp_coeff >= 0
                for s in specs
            )
        )
        self._const = c

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.boards)

    @property
    def done(self):
        return all(board.done for board in self.boards)

    def set_tick_hook(self, index, hook):
        """Register ``hook(board)`` to run after every tick of one board.

        A hooked board always advances through the scalar per-tick path
        (the hook may mutate arbitrary state between ticks — exactly the
        contract a fault injector's ``advance`` needs).  ``hook=None``
        removes the registration.
        """
        if hook is None:
            self._tick_hooks.pop(index, None)
        else:
            self._tick_hooks[index] = hook

    def invalidate_board(self, index):
        """Retire every cached plan and schedule for one board.

        Plan reuse (:meth:`_plan_for`) is conditioned on the board's
        actuation/placement epochs and on membership-guard evictions —
        none of which tick when a caller mutates the board's workload
        out-of-band (e.g. a rack dispatcher appending a freshly arrived
        job's applications, or detaching an abandoned one).  Any such
        caller must invalidate the lane before the next bank window, or
        a provably-stale cached plan could keep crediting the old thread
        set.
        """
        self._replan_cache.pop(index, None)
        self._plan_by_state.pop(index, None)
        self._board_gen[index] += 1
        self._stall_free[index] = None

    def counters(self):
        """Snapshot of the bank's lockstep/fallback accounting."""
        return {
            "boards": len(self.boards),
            "vector_ticks": self.vector_ticks,
            "scalar_ticks": self.scalar_ticks,
            "windows": self.windows,
            "fused_blocks": self.fused_blocks,
            "fused_ticks": self.fused_ticks,
            "events": dict(self.events),
        }

    def step_bank(self):
        """Advance every unfinished board by exactly one tick."""
        return self.run_period_bank(1)

    def run_period_bank(self, n_steps, only=None):
        """Advance up to ``n_steps`` ticks on every selected board.

        ``only`` restricts stepping to an iterable of board indices
        (default: every board).  Returns a list with the number of ticks
        each board actually executed — the same counts per board as
        calling :meth:`Board.run_period` individually, and bit-identical
        resulting board state.
        """
        executed = [0] * len(self.boards)
        if only is None:
            selected = range(len(self.boards))
        else:
            selected = list(only)
        pending = []
        remaining = {}
        for i in selected:
            board = self.boards[i]
            if board.done:
                continue
            if (
                i in self._tick_hooks
                or not self.enable_vector_path
                or not board.enable_fast_path
            ):
                executed[i] = self._run_scalar(i, n_steps)
            else:
                pending.append(i)
                remaining[i] = n_steps
        while pending:
            # Stall-peel pre-pass: a draining hotplug/migration stall would
            # refuse a plan for only a tick or two, so drain it with single
            # scalar ticks *before* planning — the peeled lanes then rejoin
            # the same vector window as everyone else (keeping the window's
            # lane set stable for the slice/lane/schedule caches) instead
            # of dropping to the scalar path for the whole call.
            still = []
            stall_free = self._stall_free
            for i in pending:
                board = self.boards[i]
                # Stalls are only ever charged by paths that bump the
                # board's _placement_epoch, so a lane verified stall-free
                # at its current epoch needs no scan at all.
                if stall_free[i] != board._placement_epoch:
                    while (
                        remaining[i] > 0
                        and not board.done
                        and self._transient_refusal(i)
                    ):
                        self.events["plan_refused"] += 1
                        self.events["stall_peel"] += 1
                        if self.telemetry is not None:
                            self.telemetry.bank_events.labels(
                                reason="plan_refused"
                            ).inc()
                        executed[i] += self._peel_tick(i)
                        remaining[i] -= 1
                    if remaining[i] > 0 or board.done:
                        # (remaining == 0 means the loop may have exited
                        # with the stall still draining — don't record.)
                        stall_free[i] = board._placement_epoch
                if remaining[i] > 0 and not board.done:
                    still.append(i)
            pending = still
            plans = {}
            memo = self._plan_memo
            if len(memo) > 4096:  # runaway-key backstop; plans re-memoize
                memo.clear()
                self._plan_gen += 1
                self._replan_cache.clear()
                self._sched_cache.clear()
                self._lane_cache.clear()
            retry = []
            for i in pending:
                plan = self._plan_for(i)
                if plan is None:
                    self.events["plan_refused"] += 1
                    if self.telemetry is not None:
                        self.telemetry.bank_events.labels(
                            reason="plan_refused"
                        ).inc()
                    if self._transient_refusal(i):
                        # A draining hotplug/migration stall refuses a plan
                        # for only a tick or two: peel exactly one scalar
                        # tick (which drains min(stall, dt)) and retry the
                        # planner, instead of condemning the lane to the
                        # scalar path for the whole call.
                        self.events["stall_peel"] += 1
                        executed[i] += self._peel_tick(i)
                        remaining[i] -= 1
                        if remaining[i] > 0 and not self.boards[i].done:
                            retry.append(i)
                    else:
                        executed[i] += self._run_scalar(i, remaining[i])
                else:
                    plans[i] = plan
            pending = [i for i in pending if i in plans]
            if not pending:
                pending = retry  # only peeled lanes left: re-plan them
                continue
            window = min(remaining[i] for i in pending)
            if window < 4:
                # Tiny remainder (stall peels de-sync lanes by a tick or
                # two): per-lane fastpath stepping beats the vector
                # window's fixed gather/scatter cost at this size.  Only
                # the de-synced lanes take it, though — clamping *every*
                # lane to the shortest remainder would collapse the whole
                # bank to scalar stepping each time a single lane peels
                # (each board's float sequence is independent of how
                # lanes are grouped, so the split is bit-exact).
                tiny = [i for i in pending if remaining[i] < 4]
                pending = [i for i in pending if remaining[i] >= 4]
                for i in tiny:
                    ran = self._run_tiny(i, plans[i], remaining[i])
                    executed[i] += ran
                    remaining[i] -= ran
                    if remaining[i] > 0 and not self.boards[i].done:
                        retry.append(i)
                if not pending:
                    pending = retry
                    continue
                window = min(remaining[i] for i in pending)
            ran = self._run_vector_window(pending, plans, window)
            survivors = []
            for i in pending:
                executed[i] += ran
                remaining[i] -= ran
                if remaining[i] > 0 and not self.boards[i].done:
                    survivors.append(i)
            pending = survivors + retry
        return executed

    # ------------------------------------------------------------------
    # Planning with reuse
    # ------------------------------------------------------------------
    def _plan_for(self, index):
        """Window plan for one board, reusing prior plans when provably valid.

        A cached plan depends only on (a) the actuation state, tracked by
        the board's monotonic epochs, (b) the emergency throttle flags
        (which determine the effective frequency/core caps), (c) placement
        membership — invalidated through :attr:`_replan_cache` eviction the
        moment a membership guard fires — and (d) the absence of fault
        hooks and draining stalls, re-checked here because they can appear
        without an actuation call.  Three tiers:

        1. nothing changed → return the previous plan object;
        2. only the operating point changed (DVFS and/or emergency caps,
           same placement and core counts) → rebuild the key from the
           cached placement layout and hit the value memo, reassembling
           credits from live thread objects;
        3. otherwise → full :func:`plan_window` (which re-derives refusal
           conditions and performs the placement-membership refresh).
        """
        board = self.boards[index]
        entry = self._replan_cache.get(index)
        sensors = board.power_sensors
        runtimes = board.clusters
        clean = (
            board.fault_hooks is None
            and board.temp_sensor.fault_hook is None
            and sensors[BIG].fault_hook is None
            and sensors[LITTLE].fault_hook is None
            and runtimes[BIG].pending_hotplug_stall <= 0
            and runtimes[LITTLE].pending_hotplug_stall <= 0
        )
        if entry is not None and clean:
            plan = entry["plan"]
            ems = _emergency_snapshot(board)
            if (
                board._actuation_epoch == entry["epoch"]
                and ems == plan.emergency_snapshot
            ):
                return plan
            if board._placement_epoch == entry["pepoch"]:
                fb = board._effective_frequency(BIG)
                cb = board._effective_cores(BIG)
                fl = board._effective_frequency(LITTLE)
                cl = board._effective_cores(LITTLE)
                if (cb, cl) == entry["cores"]:
                    # Operating points recur (DVFS sweeps cycle a small
                    # set): a plan rebuilt here earlier is valid verbatim
                    # as long as this entry lives — membership, placement,
                    # and thread identity are unchanged by construction —
                    # so keep the rebuilt plans keyed by operating point.
                    vkey = (fb, fl, cb, cl, ems)
                    variants = entry["variants"]
                    vplan = variants.get(vkey)
                    if vplan is not None:
                        entry["plan"] = vplan
                        entry["epoch"] = board._actuation_epoch
                        return vplan
                    layout = plan.layout
                    key = (id(board.spec), fb, cb, layout[BIG][1],
                           fl, cl, layout[LITTLE][1])
                    cached = self._plan_memo.get(key)
                    if cached is not None and cached[0] is board.spec:
                        _, cplans, bips, works = cached
                        credits = []
                        for name in (BIG, LITTLE):
                            for pairs, work in zip(layout[name][0],
                                                   works[name]):
                                for (thread, app), done in zip(pairs, work):
                                    credits.append((app, thread, done))
                        new_plan = WindowPlan(
                            big=cplans[BIG],
                            little=cplans[LITTLE],
                            credits=credits,
                            bips=bips,
                            apps=plan.apps,
                            emergency_snapshot=ems,
                            works=works,
                            layout=layout,
                        )
                        entry["plan"] = new_plan
                        entry["epoch"] = board._actuation_epoch
                        variants[vkey] = new_plan
                        return new_plan
        # Tier 2.5: the full live state recurs (excitation sweeps cycle a
        # small set of knob levels over stretches of stable membership).
        # The key pins thread/app objects by identity — strong references,
        # so a match can only mean the very same live threads in the very
        # same placement at the very same operating point — making a
        # previously planned WindowPlan valid verbatim, works/layout
        # identity included.
        state_key = self._plan_state_key(board) if clean else None
        if state_key is not None:
            by_state = self._plan_by_state.get(index)
            if by_state is None:
                by_state = self._plan_by_state[index] = {}
            vplan = by_state.get(state_key)
            if vplan is not None:
                self._replan_cache[index] = {
                    "plan": vplan,
                    "epoch": board._actuation_epoch,
                    "pepoch": board._placement_epoch,
                    "cores": (
                        board._effective_cores(BIG),
                        board._effective_cores(LITTLE),
                    ),
                    "variants": {},
                }
                return vplan
        plan = plan_window(board, memo=self._plan_memo)
        if plan is None:
            self._replan_cache.pop(index, None)
            return None
        # Thread/app identity may have changed on a full replan: retire
        # every schedule built against the old identity.
        self._board_gen[index] += 1
        self._replan_cache[index] = {
            "plan": plan,
            "epoch": board._actuation_epoch,
            "pepoch": board._placement_epoch,
            "cores": (
                board._effective_cores(BIG),
                board._effective_cores(LITTLE),
            ),
            "variants": {},
        }
        if state_key is not None:
            if len(by_state) > 128:
                by_state.clear()
            by_state[state_key] = plan
        return plan

    def _plan_state_key(self, index_or_board):
        """Complete plan-determining live state of one board, or ``None``.

        Everything :func:`plan_window` reads is covered: runnable-thread
        sets per application (thread identity implies its phase — threads
        are recreated on every phase entry), the placement assignment
        content, effective frequencies and core counts (which fold in the
        emergency caps), and the emergency snapshot.  Returns ``None``
        when planning would refuse anyway (migration stall, nothing
        runnable) — callers then fall through to :func:`plan_window` for
        the authoritative refusal.
        """
        board = index_or_board
        apps_sig = []
        for app in board.applications:
            if app.done:
                continue
            runnable = app.runnable_threads()
            for thread in runnable:
                if thread.migration_stall > 0:
                    return None
            apps_sig.append((app, tuple(runnable)))
        if not apps_sig:
            return None
        assignment = board.placement.assignment
        return (
            tuple(apps_sig),
            tuple(tuple(core) for core in assignment[BIG]),
            tuple(tuple(core) for core in assignment[LITTLE]),
            board._effective_frequency(BIG),
            board._effective_cores(BIG),
            board._effective_frequency(LITTLE),
            board._effective_cores(LITTLE),
            _emergency_snapshot(board),
        )

    def _transient_refusal(self, index):
        """Was this plan refusal caused only by a draining stall?

        Hotplug stalls drain by ``min(stall, dt)`` per tick and migration
        stalls drain inside ``core_execution`` the same way, so a refusal
        caused by either clears within a tick or two — unlike fault hooks
        (installed for a whole faulted region) or an empty runnable set
        (which no amount of stepping resolves until an app event).
        """
        board = self.boards[index]
        if board.fault_hooks is not None:
            return False
        if board.temp_sensor.fault_hook is not None:
            return False
        sensors = board.power_sensors
        if sensors[BIG].fault_hook is not None:
            return False
        if sensors[LITTLE].fault_hook is not None:
            return False
        stalled = (
            board.clusters[BIG].pending_hotplug_stall > 0
            or board.clusters[LITTLE].pending_hotplug_stall > 0
        )
        migrating = False
        runnable = False
        for app in board.applications:
            if app.done:
                continue
            for thread in app.runnable_threads():
                runnable = True
                if thread.migration_stall > 0:
                    migrating = True
                    break
            if migrating:
                break
        return runnable and (stalled or migrating)

    def _peel_tick(self, index):
        """Advance one board exactly one scalar tick (stall drain)."""
        self._replan_cache.pop(index, None)
        board = self.boards[index]
        board.step()
        if self.track_violations:
            spec = board.spec
            if board.thermal.temperature > spec.temp_limit:
                self.temp_violation_time[index] += spec.sim_dt
            if board._instant_power[BIG] > spec.power_limit_big:
                self.power_violation_time[index] += spec.sim_dt
        self.scalar_ticks += 1
        if self.telemetry is not None:
            self.telemetry.bank_scalar_ticks.inc(1)
        return 1

    def _run_tiny(self, index, plan, n_ticks):
        """Advance one board ``<= n_ticks`` ticks under its window plan.

        The per-lane fastpath (:func:`run_window`) performs exactly the
        same float operations as the vector window, tick for tick, so it
        is interchangeable bit-for-bit — and for one or two ticks it skips
        the vector window's fixed per-call gather/scatter cost.  Mirrors
        the vector window's bookkeeping: event counters, replan-cache
        eviction on membership change, and violation clocks.
        """
        board = self.boards[index]
        spec = board.spec
        track = self.track_violations
        ran = 0
        while ran < n_ticks:
            step = run_window(board, plan, 1 if track else n_ticks - ran)
            ran += step
            if track:
                if board.thermal.temperature > spec.temp_limit:
                    self.temp_violation_time[index] += spec.sim_dt
                if board._instant_power[BIG] > spec.power_limit_big:
                    self.power_violation_time[index] += spec.sim_dt
            stop = False
            if _emergency_snapshot(board) != plan.emergency_snapshot:
                self.events["emergency"] += 1
                if self.telemetry is not None:
                    self.telemetry.bank_events.labels(
                        reason="emergency"
                    ).inc()
                stop = True
            if _membership_changed(plan.apps):
                self._replan_cache.pop(index, None)
                self.events["membership"] += 1
                if self.telemetry is not None:
                    self.telemetry.bank_events.labels(
                        reason="membership"
                    ).inc()
                stop = True
            if stop or step == 0:
                break
        self.scalar_ticks += ran
        if self.telemetry is not None and ran:
            self.telemetry.bank_scalar_ticks.inc(ran)
        return ran

    # ------------------------------------------------------------------
    # Scalar fallback
    # ------------------------------------------------------------------
    def _run_scalar(self, index, n_steps):
        """Finish one board via the existing scalar/fastpath machinery."""
        self._replan_cache.pop(index, None)  # scalar ticks can change anything
        board = self.boards[index]
        hook = self._tick_hooks.get(index)
        if hook is None and not self.track_violations:
            ran = board.run_period(n_steps)
            self.scalar_ticks += ran
            if self.telemetry is not None and ran:
                self.telemetry.bank_scalar_ticks.inc(ran)
            return ran
        spec = board.spec
        dt = spec.sim_dt
        ran = 0
        while ran < n_steps and not board.done:
            board.step()
            ran += 1
            if hook is not None:
                hook(board)
            if self.track_violations:
                if board.thermal.temperature > spec.temp_limit:
                    self.temp_violation_time[index] += dt
                if board._instant_power[BIG] > spec.power_limit_big:
                    self.power_violation_time[index] += dt
        self.scalar_ticks += ran
        if self.telemetry is not None and ran:
            self.telemetry.bank_scalar_ticks.inc(ran)
        return ran

    # ------------------------------------------------------------------
    # The vectorized lockstep kernel
    # ------------------------------------------------------------------
    def _slices(self, key_boards, boards):
        """Model constants and per-lane objects, sliced to one lane set."""
        S = self._slice_cache.get(key_boards)
        if S is not None:
            return S
        ix = np.asarray(key_boards, dtype=np.intp)
        C = self._const
        S = {
            name: C[name][ix]
            for name in ("static", "ambient", "resistance", "lweight",
                         "alpha", "temp_trip", "temp_clear",
                         "throttle_freq", "temp_limit", "noise_rms")
        }
        for name in ("limit", "thresh", "pcap", "sdt", "speriod",
                     "trip_delay", "clear_delay", "min_hold"):
            S[name] = C[name][:, ix]
        S["ix"] = ix
        # Per-lane object lists (board identity is fixed for the
        # bank's lifetime, so these are as cacheable as the consts).
        S["thermals"] = [b.thermal for b in boards]
        S["sens_b"] = [b.power_sensors[BIG] for b in boards]
        S["sens_l"] = [b.power_sensors[LITTLE] for b in boards]
        S["pc_b"] = [b.perf_counters[BIG] for b in boards]
        S["pc_l"] = [b.perf_counters[LITTLE] for b in boards]
        S["em"] = [b.emergency for b in boards]
        if len(self._slice_cache) > 64:
            self._slice_cache.clear()
        self._slice_cache[key_boards] = S
        return S

    def _lane_terms(self, key_boards, indices, plans):
        """Per-lane step-invariant plan terms, clusters stacked on axis 0.

        Cached against the identity of the (memo-owned) cluster plans;
        the cache entry holds references to those plans, so an id() match
        on live objects can only mean the very same plans.
        """
        pb = [plans[i].big for i in indices]
        pl = [plans[i].little for i in indices]
        lane_key = (key_boards, self._plan_gen,
                    tuple(map(id, pb)), tuple(map(id, pl)))
        lanes = self._lane_cache.get(lane_key)
        if lanes is None:
            leak_arr = np.array([[p.leak_base for p in pb],
                                 [p.leak_base for p in pl]])
            lanes = (
                pb, pl,
                np.array([[p.dyn for p in pb], [p.dyn for p in pl]]),
                leak_arr,
                np.array([[p.leak_temp_coeff for p in pb],
                          [p.leak_temp_coeff for p in pl]]),
                np.array([[p.idle for p in pb], [p.idle for p in pl]]),
                np.array([[p.instructions for p in pb],
                          [p.instructions for p in pl]]),
                bool((leak_arr >= 0.0).all()),
                [None],  # cached no-trip temperature bound
            )
            if len(self._lane_cache) > 256:
                self._lane_cache.clear()
            self._lane_cache[lane_key] = lanes
        return lanes

    def _credit_schedule_for(self, key_boards, indices, plans):
        """A (cached) :class:`_CreditSchedule` for one window's plans."""
        works_list = [plans[i].works for i in indices]
        board_gen = self._board_gen
        sched_key = (key_boards, self._plan_gen,
                     tuple((i, id(w), board_gen[i])
                           for i, w in zip(indices, works_list)))
        cached = self._sched_cache.get(sched_key)
        if (
            cached is not None
            and all(a is b for a, b in zip(cached[0].plan_ident, works_list))
        ):
            return cached
        schedule = _CreditSchedule(indices, plans)
        schedule.plan_ident = works_list
        guards = [_MembershipGuard(plans[i]) for i in indices]
        if len(self._sched_cache) > 256:
            self._sched_cache.clear()
        self._sched_cache[sched_key] = (schedule, guards)
        return schedule, guards

    # ------------------------------------------------------------------
    # Fused multi-period kernel
    # ------------------------------------------------------------------
    def run_schedule_bank(self, freqs_big, freqs_little, only=None,
                          block_periods=32):
        """Advance every selected board through a shared DVFS schedule.

        ``freqs_big``/``freqs_little`` are per-period frequency commands
        (GHz): period ``p`` issues ``set_cluster_frequency`` with both
        values on every selected board, then advances one control period
        — exactly the campaign loop callers write by hand around
        :meth:`run_period_bank`, with bit-identical resulting board state.

        The win is *fusion*: the kernel precompiles up to ``block_periods``
        upcoming periods at a time — actuation commands validated and
        snapped once per distinct ``(big, little)`` pair, window plans
        resolved per distinct operating point, per-core credit vectors and
        the no-trip emergency bound proven for the whole block — and then
        advances all lanes the whole block in one resident pass: board
        state is gathered into the lane matrix once per block instead of
        once per period, and no Python-level driver code runs between
        periods.  Whenever a block cannot be proven quiet (a throttled
        lane, a draining stall, an application within its phase-budget
        horizon, a fault hook, mixed board specs, a non-finite command),
        the kernel falls back to the per-period path for one period and
        retries fusing from the next — per-lane re-plans, never full-bank
        bailout.

        Returns the per-board executed tick counts, like
        :meth:`run_period_bank`.
        """
        fb_list = list(freqs_big)
        fl_list = list(freqs_little)
        if len(fb_list) != len(fl_list):
            raise ValueError(
                f"schedule length mismatch: {len(fb_list)} big vs "
                f"{len(fl_list)} little entries"
            )
        P = len(fb_list)
        executed = [0] * len(self.boards)
        if only is None:
            selected = list(range(len(self.boards)))
        else:
            selected = list(only)
        selected = [i for i in selected if not self.boards[i].done]
        if not selected or P == 0:
            return executed
        steps = {self.boards[i].spec.period_steps() for i in selected}
        if len(steps) != 1:
            raise ValueError(
                f"lockstep schedule requires one shared period length, "
                f"got {sorted(steps)}"
            )
        period_steps = steps.pop()
        p = 0
        while p < P and selected:
            fused = 0
            if block_periods > 0:
                fused = self._run_fused_schedule(
                    selected, fb_list, fl_list, p,
                    min(block_periods, P - p), period_steps, executed,
                )
            if fused == 0:
                # Exact per-period fallback: real actuation calls, then
                # the (churn-tolerant) per-period vector path.
                for i in selected:
                    board = self.boards[i]
                    board.set_cluster_frequency(BIG, fb_list[p])
                    board.set_cluster_frequency(LITTLE, fl_list[p])
                ran = self.run_period_bank(period_steps, only=selected)
                for i in selected:
                    executed[i] += ran[i]
                p += 1
            else:
                p += fused
            selected = [i for i in selected if not self.boards[i].done]
        return executed

    def _resolve_entry(self, spec, raw_big, raw_little):
        """Replicate ``_validate_command`` + DVFS snap for one schedule
        entry; returns ``(fb, fl, rejected_big, rejected_little)`` or
        ``None`` for a non-finite command (which the exact path must
        handle: the previous frequency survives, making the effective
        schedule state-dependent)."""
        key = (id(spec), raw_big, raw_little)
        cached = self._snap_cache.get(key)
        if cached is not None and cached[0] is spec:
            return cached[1]
        out = []
        rej = []
        for name, raw in ((BIG, raw_big), (LITTLE, raw_little)):
            rng = spec.cluster(name).freq_range
            try:
                value = float(raw)
                finite = bool(np.isfinite(value))
            except (TypeError, ValueError):
                finite = False
            if not finite:
                return None  # not cacheable: NaN keys never match
            if value < rng.low - 1e-9 or value > rng.high + 1e-9:
                rej.append(1)
                value = float(min(max(value, rng.low), rng.high))
            else:
                rej.append(0)
            out.append(rng.snap(value))
        entry = (out[0], out[1], rej[0], rej[1])
        if len(self._snap_cache) > 1024:
            self._snap_cache.clear()
        self._snap_cache[key] = (spec, entry)
        return entry

    def _set_frequency_raw(self, board, fb, fl):
        """Write already-snapped frequencies with epoch semantics."""
        for name, f in ((BIG, fb), (LITTLE, fl)):
            runtime = board.clusters[name]
            if f != runtime.frequency:
                board._actuation_epoch += 1
                runtime.frequency = f

    def _run_fused_schedule(self, indices, fb_list, fl_list, p, K,
                            period_steps, executed):
        """Fuse up to ``K`` periods of the schedule starting at ``p``.

        Returns the number of periods actually fused (0 = the caller must
        fall back to the exact per-period path for period ``p``).  Only
        mutates board state when it returns nonzero — except the
        actuation/placement epochs and plan caches, which are
        cache-bookkeeping and may tick conservatively during probing.
        """
        boards = self.boards
        spec0 = boards[indices[0]].spec
        if not self.enable_vector_path or not self._const["monotone"]:
            return 0
        for i in indices:
            board = boards[i]
            if (
                board.spec is not spec0
                or i in self._tick_hooks
                or not board.enable_fast_path
                or board.fault_hooks is not None
            ):
                return 0
        key_boards = tuple(indices)
        S = self._slices(key_boards, [boards[i] for i in indices])
        em = S["em"]
        for e in em:
            state = e.state
            if (
                state.thermal_throttled
                or state.power_throttled[BIG]
                or state.power_throttled[LITTLE]
            ):
                return 0

        # --- resolve + dedup the block's schedule entries ---------------
        entries = []
        for q in range(p, p + K):
            ent = self._resolve_entry(spec0, fb_list[q], fl_list[q])
            if ent is None:
                break  # non-finite command: exact path owns carry-forward
            entries.append(ent)
        K = len(entries)
        if K == 0:
            return 0
        op_index = {}
        ops = []
        op_of = []
        for fb, fl, _, _ in entries:
            okey = (fb, fl)
            if okey not in op_index:
                op_index[okey] = len(ops)
                ops.append(okey)
            op_of.append(op_index[okey])

        # --- probe: window plans per lane per distinct operating point --
        # Planning needs each board *at* the operating point, so the probe
        # writes the snapped frequencies (epoch semantics preserved) and
        # restores the final state afterwards.  Plans come from the tier
        # caches — after the first block a steady schedule costs one dict
        # hit per lane per distinct op.
        f_initial = [
            (boards[i].clusters[BIG].frequency,
             boards[i].clusters[LITTLE].frequency)
            for i in indices
        ]
        plans_by_op = []
        ok = True
        for fb, fl in ops:
            plans = {}
            for i in indices:
                self._set_frequency_raw(boards[i], fb, fl)
                plan = self._plan_for(i)
                if plan is None:
                    ok = False  # stall draining / membership refusal
                    break
                plans[i] = plan
            if not ok:
                break
            plans_by_op.append(plans)
        if not ok:
            for i, (fb, fl) in zip(indices, f_initial):
                self._set_frequency_raw(boards[i], fb, fl)
            return 0

        # --- credit horizon across the whole block ----------------------
        # One _CreditSchedule per op; the cell lists are structurally
        # identical (same threads, same placement — only the per-tick
        # amounts differ with frequency), so they can share one live value
        # array and the most conservative horizon bounds the whole block.
        schedules = []
        for e, (fb, fl) in enumerate(ops):
            sched, _ = self._credit_schedule_for(
                key_boards, indices, plans_by_op[e]
            )
            schedules.append(sched)
        base = schedules[0]
        base.refresh()
        safe = base.safe_ticks(K * period_steps)
        cells0 = base.cells
        for sched in schedules[1:]:
            if len(sched.cells) != len(cells0) or any(
                a is not b
                for (_, a), (_, b) in zip(sched.cells, cells0)
            ):
                # Structure diverged (shouldn't happen for pure DVFS
                # moves); stay exact via the per-period path.
                for i, (fb, fl) in zip(indices, f_initial):
                    self._set_frequency_raw(boards[i], fb, fl)
                return 0
            sched.refresh()
            safe = min(safe, sched.safe_ticks(K * period_steps))
            sched.vals = base.vals  # shared live values
            sched.scattered = False
        k_fused = min(K, safe // period_steps if period_steps else 0)
        if k_fused == 0:
            for i, (fb, fl) in zip(indices, f_initial):
                self._set_frequency_raw(boards[i], fb, fl)
            return 0

        # --- whole-block no-trip bound (see _run_vector_window) ---------
        # The fixed point runs over the elementwise max of every op's
        # power map: power is monotone nondecreasing in temperature for
        # every op (leak_ok), so a common Tub with target_e(Tub) <= Tub
        # for all ops bounds the trajectory through any op sequence.
        terms_by_op = [
            self._lane_terms(key_boards, indices, plans_by_op[e])
            for e in range(len(ops))
        ]
        if not all(t[7] for t in terms_by_op):  # leak_ok per op
            for i, (fb, fl) in zip(indices, f_initial):
                self._set_frequency_raw(boards[i], fb, fl)
            return 0
        ambient = S["ambient"]
        resistance = S["resistance"]
        lweight = S["lweight"]
        thresh_m = S["thresh"]
        limit_m = S["limit"]
        temp_trip = S["temp_trip"]
        T0 = np.array([t.temperature for t in S["thermals"]])

        def power_ub(Tub):
            p_ubs = []
            for t in terms_by_op:
                dyn_m, leak_m, ltc_m, idle_m = t[2], t[3], t[4], t[5]
                factor = 1.0 + ltc_m * (Tub - _REFERENCE_TEMP)
                p_ubs.append(dyn_m + leak_m * np.maximum(factor, 0.2)
                             + idle_m)
            return p_ubs

        def target_of(p_ubs):
            target = None
            for p_ub in p_ubs:
                t_e = ambient + resistance * (p_ub[0] + lweight * p_ub[1])
                target = t_e if target is None else np.maximum(target, t_e)
            return target

        fkey = (key_boards, self._plan_gen,
                tuple(id(t) for t in terms_by_op))
        holder = self._fused_ub.get(fkey)
        if holder is None:
            if len(self._fused_ub) > 256:
                self._fused_ub.clear()
            holder = self._fused_ub[fkey] = [None]
        quiet = False
        ub = holder[0]
        if ub is not None and bool((T0 <= ub).all()):
            quiet = True
        else:
            Tub = T0
            p_ubs = None
            for _ in range(6):
                p_ubs = power_ub(Tub)
                target = target_of(p_ubs)
                if (target <= Tub).all():
                    break
                Tub = np.maximum(Tub, target)
            else:
                # Tub was raised to max(Tub, target) on the last pass, so
                # first re-verify the bound at the raised candidate; if
                # float arithmetic still hasn't closed, pad past the fixed
                # point (any X with target(X) <= X bounds the trajectory
                # by the same induction) and verify once.
                p_ubs = power_ub(Tub)
                target = target_of(p_ubs)
                if not (target <= Tub).all():
                    gap = float((target - Tub).max())
                    if gap < 1e-3:
                        Tub = Tub + 2.0 * gap + 1e-9
                        p_ubs = power_ub(Tub)
                        target = target_of(p_ubs)
                        if not (target <= Tub).all():
                            p_ubs = None
                    else:
                        p_ubs = None
            if (
                p_ubs is not None
                and (Tub < temp_trip - 1e-9).all()
                and all((p_ub < thresh_m - 1e-9).all() for p_ub in p_ubs)
                and all((p_ub < limit_m - 1e-9).all() for p_ub in p_ubs)
            ):
                quiet = True
                holder[0] = Tub
        if not quiet:
            for i, (fb, fl) in zip(indices, f_initial):
                self._set_frequency_raw(boards[i], fb, fl)
            return 0

        # --- commit: leave each board at the last fused period's op -----
        fb_last, fl_last = ops[op_of[k_fused - 1]]
        for i in indices:
            self._set_frequency_raw(boards[i], fb_last, fl_last)
        # Rejected-command bookkeeping, exactly one increment per clamped
        # command per board per period (integer adds commute with the
        # stepping, so batching them is exact).
        rej_b = sum(entries[q][2] for q in range(k_fused))
        rej_l = sum(entries[q][3] for q in range(k_fused))
        if rej_b or rej_l:
            for i in indices:
                board = boards[i]
                board.rejected_actuations["frequency"] += rej_b + rej_l
                if board.telemetry is not None:
                    board.telemetry.rejected.labels(kind="frequency").inc(
                        rej_b + rej_l
                    )

        self._run_fused_block(
            indices, S, op_of[:k_fused], ops, plans_by_op, terms_by_op,
            schedules, period_steps,
        )
        ticks = k_fused * period_steps
        for i in indices:
            executed[i] += ticks
        return k_fused

    def _run_fused_block(self, indices, S, op_of, ops, plans_by_op,
                         terms_by_op, schedules, period_steps):
        """Advance all lanes ``len(op_of)`` periods in one resident pass.

        Preconditions (established by :meth:`_run_fused_schedule`): every
        lane is planned for every distinct operating point, the whole
        block is proven emergency-quiet (the per-tick firmware machine
        collapses to the under-limit clocks, exactly like the per-period
        quiet path), and the credit horizon covers every tick.  Board
        state is gathered once, stepped ``periods x period_steps`` ticks
        with per-period rebinding of the plan-constant matrices, and
        scattered once — the per-tick float sequence is identical to
        :meth:`_run_vector_window`'s proven-quiet path, so the result is
        bit-identical to per-period stepping.
        """
        boards = [self.boards[i] for i in indices]
        B = len(boards)
        dt = self._dt
        K = len(op_of)
        total = K * period_steps
        ix = S["ix"]
        static = S["static"]
        ambient = S["ambient"]
        resistance = S["resistance"]
        lweight = S["lweight"]
        alpha = S["alpha"]
        sdt_m = S["sdt"]
        speriod_m = S["speriod"]
        noise_rms = S["noise_rms"]

        sens_b = S["sens_b"]
        sens_l = S["sens_l"]
        thermals = S["thermals"]
        em = S["em"]
        g = np.array([
            [t.temperature for t in thermals],
            [b.energy for b in boards],
            [s._accumulated for s in sens_b],
            [s._accumulated for s in sens_l],
            [s._latched for s in sens_b],
            [s._latched for s in sens_l],
            [c.total_giga for c in S["pc_b"]],
            [c.total_giga for c in S["pc_l"]],
            [s._elapsed for s in sens_b],
            [s._elapsed for s in sens_l],
            [b.time for b in boards],
            [e._under_power_time[BIG] for e in em],
            [e._under_power_time[LITTLE] for e in em],
        ])
        T = g[0]
        energy = g[1]
        acc_m = g[2:4]
        latch_m = g[4:6]
        itotal_m = g[6:8]
        elap_m = g[8:10]
        time_arr = g[10]
        under_m = g[11:13]
        inc = np.empty((7, B))
        inc[2:4] = sdt_m
        inc[4:7] = dt

        # Per-board RNG noise for the whole block (block draw == the
        # scalar path's sequential draws; the block always completes, so
        # no rewind is ever needed).
        noise = np.zeros((B, total))
        for k, board in enumerate(boards):
            if noise_rms[k] > 0:
                noise[k] = board.temp_sensor._rng.normal(
                    scale=noise_rms[k], size=total
                )

        track = self.track_violations
        temp_limit = S["temp_limit"] if track else None
        limit_m = S["limit"]
        tv = self.temp_violation_time
        pv = self.power_violation_time
        any_record = any(b.trace is not None for b in boards)
        no_emergency = np.zeros(B, dtype=bool) if any_record else None

        p_m = None
        for q in range(K):
            e = op_of[q]
            terms = terms_by_op[e]
            dyn_m, leak_m, ltc_m, idle_m, instr_m = terms[2:7]
            inc[0:2] = instr_m
            sched = schedules[e]
            if any_record:
                hist = {name: [] for name in ("power", "temperature",
                                              "time")}
            for _ in range(period_steps):
                factor = 1.0 + ltc_m * (T - _REFERENCE_TEMP)
                p_m = dyn_m + leak_m * np.maximum(factor, 0.2) + idle_m
                sched.tick()
                p_b = p_m[0]
                p_l = p_m[1]
                target = ambient + resistance * (p_b + lweight * p_l)
                T = T + alpha * (target - T)
                energy += (p_b + p_l + static) * dt
                acc_m += p_m * sdt_m
                g[6:13] += inc
                latching = elap_m + 1e-12 >= speriod_m
                if latching.any():
                    latch_m = np.where(latching, acc_m / elap_m, latch_m)
                    acc_m[latching] = 0.0
                    elap_m[latching] = 0.0
                if track:
                    hot = T > temp_limit
                    if hot.any():
                        tv[ix[hot]] += dt
                    loud = p_b > limit_m[0]
                    if loud.any():
                        pv[ix[loud]] += dt
                if any_record:
                    hist["power"].append(p_m)
                    hist["temperature"].append(T)
                    hist["time"].append(time_arr.copy())
            if any_record:
                # Per-period trace flush: the recorded frequencies are the
                # op's snapped values (quiet block: no emergency caps).
                fb, fl = ops[e]
                hist["freq_big"] = [np.full(B, fb)] * period_steps
                hist["freq_little"] = [np.full(B, fl)] * period_steps
                hist["emergency"] = [no_emergency] * period_steps
                for k, board in enumerate(boards):
                    if board.trace is not None:
                        self._extend_trace(board, k, hist, period_steps,
                                           plans_by_op[e][indices[k]])

        schedules[0].scatter()
        last_temp = T + noise[:, total - 1]

        T_out = T.tolist()
        energy_out = energy.tolist()
        time_out = time_arr.tolist()
        acc_out = acc_m.tolist()
        elap_out = elap_m.tolist()
        latch_out = latch_m.tolist()
        itotal_out = itotal_m.tolist()
        last_out = last_temp.tolist()
        under_out = under_m.tolist()
        pb_out = p_m[0].tolist()
        pl_out = p_m[1].tolist()
        last_plans = plans_by_op[op_of[-1]]
        for k, board in enumerate(boards):
            thermals[k].temperature = T_out[k]
            board.energy = energy_out[k]
            board.time = time_out[k]
            sensor = sens_b[k]
            sensor._accumulated = acc_out[0][k]
            sensor._elapsed = elap_out[0][k]
            sensor._latched = latch_out[0][k]
            sensor = sens_l[k]
            sensor._accumulated = acc_out[1][k]
            sensor._elapsed = elap_out[1][k]
            sensor._latched = latch_out[1][k]
            S["pc_b"][k].total_giga = itotal_out[0][k]
            S["pc_l"][k].total_giga = itotal_out[1][k]
            board.temp_sensor._last = last_out[k]
            e = em[k]
            e._under_power_time[BIG] = under_out[0][k]
            e._under_power_time[LITTLE] = under_out[1][k]
            # Scalar stepping zeroes the over-threshold timers on every
            # under-threshold tick, and every quiet-block tick is under
            # threshold; throttle flags, trip counts, and hold clocks
            # provably did not move.
            e._over_power_time[BIG] = 0.0
            e._over_power_time[LITTLE] = 0.0
            board._instant_power = {BIG: pb_out[k], LITTLE: pl_out[k]}
            board._instant_bips = last_plans[indices[k]].bips
        self.windows += 1
        self.fused_blocks += 1
        self.fused_ticks += total * B
        self.vector_ticks += total * B
        if self.telemetry is not None:
            self.telemetry.bank_windows.inc()
            self.telemetry.bank_board_ticks.inc(total * B)

    def _run_vector_window(self, indices, plans, max_ticks):
        """Advance every planned board ``<= max_ticks`` ticks in lockstep.

        Returns the number of ticks executed (shared across boards: the
        window ends for everyone at the first board event, after the
        offending tick — exactly where scalar stepping would re-plan).
        """
        boards = [self.boards[i] for i in indices]
        B = len(boards)
        dt = self._dt
        key_boards = tuple(indices)

        # --- constants, sliced to this window's lanes (cached) ----------
        S = self._slices(key_boards, boards)
        ix = S["ix"]
        static = S["static"]
        ambient = S["ambient"]
        resistance = S["resistance"]
        lweight = S["lweight"]
        alpha = S["alpha"]
        temp_trip = S["temp_trip"]
        temp_clear = S["temp_clear"]
        throttle_freq = S["throttle_freq"]
        limit_m = S["limit"]
        thresh_m = S["thresh"]
        sdt_m = S["sdt"]
        speriod_m = S["speriod"]
        noise_rms = S["noise_rms"]

        # --- step-invariant plan terms, clusters stacked on axis 0 ------
        lanes = self._lane_terms(key_boards, indices, plans)
        _, _, dyn_m, leak_m, ltc_m, idle_m, instr_m, leak_ok, ub_holder = lanes
        window_credits = [plans[i].credits for i in indices]

        # --- credit schedule + membership guards (structure cached) -----
        # Keyed by the identity of each board's credit amounts plus its
        # membership generation; verified against the live works objects
        # (held by the cached schedule) so id() reuse cannot alias.
        works_list = [plans[i].works for i in indices]
        board_gen = self._board_gen
        sched_key = (key_boards, self._plan_gen,
                     tuple((i, id(w), board_gen[i])
                           for i, w in zip(indices, works_list)))
        cached_sched = self._sched_cache.get(sched_key)
        if (
            cached_sched is not None
            and all(a is b for a, b in
                    zip(cached_sched[0].plan_ident, works_list))
        ):
            schedule, guards = cached_sched
            schedule.refresh()
        elif max_ticks >= 4:
            schedule = _CreditSchedule(indices, plans)
            schedule.plan_ident = works_list
            guards = [_MembershipGuard(plans[i]) for i in indices]
            if len(self._sched_cache) > 256:
                self._sched_cache.clear()
            self._sched_cache[sched_key] = (schedule, guards)
        else:
            # Tiny remainder window (e.g. the one-tick tail left when a
            # stall peel de-syncs a lane from the rest of the period):
            # building a credit schedule costs more than it could save, so
            # credit in Python from tick zero — the exact path anyway.
            schedule = None
            guards = [_MembershipGuard(plans[i]) for i in indices]
        n_vec = 0 if schedule is None else schedule.safe_ticks(max_ticks)

        # --- mutable board state, copied into lanes ---------------------
        # One array build for all the float lanes.  Rows 6..12 (retired
        # instructions, sensor-elapsed, time, under-limit clocks) advance
        # by a per-window constant each tick, laid out contiguously so the
        # tick loop bumps them with a single fused in-place add; those
        # stay views of ``g`` for the whole window.  The rest may rebind.
        sens_b = S["sens_b"]
        sens_l = S["sens_l"]
        thermals = S["thermals"]
        em = S["em"]
        g = np.array([
            [t.temperature for t in thermals],
            [b.energy for b in boards],
            [s._accumulated for s in sens_b],
            [s._accumulated for s in sens_l],
            [s._latched for s in sens_b],
            [s._latched for s in sens_l],
            [c.total_giga for c in S["pc_b"]],
            [c.total_giga for c in S["pc_l"]],
            [s._elapsed for s in sens_b],
            [s._elapsed for s in sens_l],
            [b.time for b in boards],
            [e._under_power_time[BIG] for e in em],
            [e._under_power_time[LITTLE] for e in em],
        ])
        T = g[0]
        energy = g[1]
        acc_m = g[2:4]
        latch_m = g[4:6]
        itotal_m = g[6:8]
        elap_m = g[8:10]
        time_arr = g[10]
        under_m = g[11:13]
        inc = np.empty((7, B))
        inc[0:2] = instr_m
        inc[2:4] = sdt_m
        inc[4:7] = dt

        # --- window-level no-trip bound ---------------------------------
        # Power is monotone nondecreasing in temperature (leak_temp_coeff
        # >= 0, checked), so iterating Tub <- max(Tub, target(Tub)) yields
        # a fixed-point upper bound on the whole window's temperature
        # trajectory.  If that bound clears every trip threshold (with an
        # absolute margin crushing per-tick rounding), no lane can change
        # emergency state this window: the per-tick machine collapses to
        # the under-limit timer accumulation.  A successful bound is cached
        # on the lane entry: it stays a valid ceiling for any later window
        # of the same lanes that starts at or below it (same monotone
        # induction), which skips the fixed-point iteration entirely.
        em_fast = False
        if self._const["monotone"] and leak_ok:
            states = [e.state for e in em]
            if (
                not any(s.thermal_throttled for s in states)
                and not any(s.power_throttled[BIG] or s.power_throttled[LITTLE]
                            for s in states)
            ):
                ub = ub_holder[0]
                if ub is not None and bool((T <= ub).all()):
                    em_fast = True
                else:
                    Tub = T
                    p_ub = None
                    for _ in range(6):
                        factor = 1.0 + ltc_m * (Tub - _REFERENCE_TEMP)
                        p_ub = (dyn_m + leak_m * np.maximum(factor, 0.2)
                                + idle_m)
                        target = ambient + resistance * (
                            p_ub[0] + lweight * p_ub[1]
                        )
                        if (target <= Tub).all():
                            break
                        Tub = np.maximum(Tub, target)
                    else:
                        # Tub was raised to max(Tub, target) on the last
                        # pass, so re-verify the bound at the raised
                        # candidate first.  If float arithmetic still
                        # hasn't closed (the gap contracts geometrically
                        # but float equality can take a dozen iterations),
                        # any X with target(X) <= X bounds the trajectory
                        # by the same induction: pad the candidate past
                        # the fixed point and verify the bound once.
                        factor = 1.0 + ltc_m * (Tub - _REFERENCE_TEMP)
                        p_ub = (dyn_m + leak_m * np.maximum(factor, 0.2)
                                + idle_m)
                        target = ambient + resistance * (
                            p_ub[0] + lweight * p_ub[1]
                        )
                        if not (target <= Tub).all():
                            gap = float((target - Tub).max())
                            if gap < 1e-3:
                                Tub = Tub + 2.0 * gap + 1e-9
                                factor = 1.0 + ltc_m * (
                                    Tub - _REFERENCE_TEMP
                                )
                                p_ub = (dyn_m
                                        + leak_m * np.maximum(factor, 0.2)
                                        + idle_m)
                                target = ambient + resistance * (
                                    p_ub[0] + lweight * p_ub[1]
                                )
                                if not (target <= Tub).all():
                                    p_ub = None  # no contraction: exact
                            else:
                                p_ub = None  # no contraction: exact
                    if (
                        p_ub is not None
                        and (Tub < temp_trip - 1e-9).all()
                        and (p_ub < thresh_m - 1e-9).all()
                        and (p_ub < limit_m - 1e-9).all()
                    ):
                        em_fast = True
                        ub_holder[0] = Tub

        # Emergency-firmware state machine lanes.  The proven-quiet fast
        # path only moves the under-limit clocks (already rows of ``g``),
        # so it skips gathering (and later writing back) the rest of the
        # machine entirely.
        if not em_fast:
            th = np.array(
                [e.state.thermal_throttled for e in em], dtype=bool
            )
            pth_m = np.array(
                [[e.state.power_throttled[BIG] for e in em],
                 [e.state.power_throttled[LITTLE] for e in em]], dtype=bool
            )
            trip_count = np.array(
                [e.state.trip_count for e in em], dtype=np.int64
            )
            throttle_time = np.array([e.state.throttle_time for e in em])
            over_m = np.array(
                [[e._over_power_time[BIG] for e in em],
                 [e._over_power_time[LITTLE] for e in em]]
            )
            hold_m = np.array(
                [[e._hold_time[BIG] for e in em],
                 [e._hold_time[LITTLE] for e in em]]
            )
            trip_delay = S["trip_delay"]
            clear_delay = S["clear_delay"]
            min_hold = S["min_hold"]
            has_trip_cb = any(e.on_trip is not None for e in em)

        # --- per-board RNG noise blocks ---------------------------------
        noise = np.zeros((B, max_ticks))
        rng_states = [None] * B
        for k, board in enumerate(boards):
            if noise_rms[k] > 0:
                rng = board.temp_sensor._rng
                rng_states[k] = rng.bit_generator.state
                noise[k] = rng.normal(scale=noise_rms[k], size=max_ticks)

        track = self.track_violations
        temp_limit = S["temp_limit"] if track else None
        tv = self.temp_violation_time
        pv = self.power_violation_time
        any_record = any(b.trace is not None for b in boards)
        hist = {name: [] for name in (
            "power", "temperature", "time",
            "freq_big", "freq_little", "emergency",
        )} if any_record else None
        if any_record:
            freq_b = np.array([b.clusters[BIG].frequency for b in boards])
            freq_l = np.array([b.clusters[LITTLE].frequency for b in boards])
            pcap_m = S["pcap"]
            no_emergency = np.zeros(B, dtype=bool)

        ticks = 0
        emergency_changed = None
        any_active = None  # stays None on the proven-quiet fast path
        while ticks < max_ticks:
            # Exact replay of cluster_power().total per lane: dynamic and
            # idle are window constants, leakage tracks the hot spot.
            # (Unpowered clusters have all-zero plan terms, so the same
            # expression reproduces their exact 0.0 W.)
            factor = 1.0 + ltc_m * (T - _REFERENCE_TEMP)
            p_m = dyn_m + leak_m * np.maximum(factor, 0.2) + idle_m
            p_b = p_m[0]
            p_l = p_m[1]
            # Application crediting (scalar stepping credits with the
            # tick-start time plus dt; the vectorized schedule replays the
            # same subtractions/additions while its safe horizon holds).
            if ticks < n_vec:
                schedule.tick()
            else:
                if schedule is not None and not schedule.scattered:
                    schedule.scatter()
                now = time_arr + dt
                for k in range(B):
                    t_now = float(now[k])
                    for app, thread, done in window_credits[k]:
                        app.execute(thread, done, t_now)
            # Thermal RC fixed point, energy, sensors, counters.
            target = ambient + resistance * (p_b + lweight * p_l)
            T = T + alpha * (target - T)
            energy += (p_b + p_l + static) * dt
            acc_m += p_m * sdt_m
            # Fused constant-rate clocks: retired instructions and sensor
            # elapsed always; plus time and the under-limit clocks on the
            # proven-quiet fast path (no trip callback can observe time
            # mid-tick there, and power <= limit holds lane-wide).
            if em_fast:
                g[6:13] += inc
            else:
                g[6:10] += inc[0:4]
            latching = elap_m + 1e-12 >= speriod_m
            if latching.any():
                latch_m = np.where(latching, acc_m / elap_m, latch_m)
                acc_m[latching] = 0.0
                elap_m[latching] = 0.0
            # Emergency firmware state machine (fast path: provably inert).
            if not em_fast:
                trip_th = (~th) & (T >= temp_trip)
                clear_th = th & (T <= temp_clear)
                new_th = (th | trip_th) & ~clear_th
                is_over = p_m > thresh_m
                over_m = np.where(is_over, over_m + dt, 0.0)
                under_m = np.where(
                    is_over, 0.0,
                    np.where(p_m <= limit_m, under_m + dt, under_m),
                )
                hold_m = np.where(pth_m, hold_m + dt, hold_m)
                trip_p = (~pth_m) & (over_m >= trip_delay)
                clear_p = (
                    pth_m & (hold_m >= min_hold) & (under_m >= clear_delay)
                )
                hold_m = np.where(trip_p, 0.0, hold_m)
                new_pth = (pth_m | trip_p) & ~clear_p
                trip_count += trip_th
                trip_count += trip_p[0]
                trip_count += trip_p[1]
                if has_trip_cb and (trip_th.any() or trip_p.any()):
                    fired = trip_th | trip_p[0] | trip_p[1]
                    for k in np.nonzero(fired)[0]:
                        if em[k].on_trip is not None:
                            boards[k].time = float(time_arr[k])
                            if trip_th[k]:
                                em[k].on_trip("thermal")
                            if trip_p[0][k]:
                                em[k].on_trip(f"power-{BIG}")
                            if trip_p[1][k]:
                                em[k].on_trip(f"power-{LITTLE}")
                emergency_changed = (
                    (new_th != th) | (new_pth[0] != pth_m[0])
                    | (new_pth[1] != pth_m[1])
                )
                th = new_th
                pth_m = new_pth
                any_active = th | pth_m[0] | pth_m[1]
                if any_active.any():
                    throttle_time = np.where(
                        any_active, throttle_time + dt, throttle_time
                    )
                time_arr = time_arr + dt
            ticks += 1
            if track:
                hot = T > temp_limit
                if hot.any():
                    tv[ix[hot]] += dt
                loud = p_b > limit_m[0]
                if loud.any():
                    pv[ix[loud]] += dt
            if hist is not None:
                # Effective (emergency-capped) frequencies, post-update —
                # exactly what Board._record reads at the end of a tick.
                if any_active is None:
                    hist["freq_big"].append(freq_b)
                    hist["freq_little"].append(freq_l)
                    hist["emergency"].append(no_emergency)
                else:
                    cap = np.where(th, throttle_freq, np.inf)
                    cap = np.where(pth_m[0], np.minimum(cap, pcap_m[0]), cap)
                    hist["freq_big"].append(
                        np.where(np.isinf(cap), freq_b,
                                 np.minimum(freq_b, cap))
                    )
                    cap_l = np.where(pth_m[1], pcap_m[1], np.inf)
                    hist["freq_little"].append(
                        np.where(np.isinf(cap_l), freq_l,
                                 np.minimum(freq_l, cap_l))
                    )
                    hist["emergency"].append(any_active)
                hist["power"].append(p_m)
                hist["temperature"].append(T)
                # On the fast path time_arr is a live view of g; snapshot.
                hist["time"].append(
                    time_arr.copy() if em_fast else time_arr
                )
            # Window-ending events: the offending tick is complete (exactly
            # like scalar stepping), everyone re-plans from here.
            stop = False
            if not em_fast and emergency_changed.any():
                count = int(emergency_changed.sum())
                self.events["emergency"] += count
                if self.telemetry is not None:
                    self.telemetry.bank_events.labels(
                        reason="emergency"
                    ).inc(count)
                stop = True
            if ticks > n_vec:
                # Membership can only change once python crediting runs:
                # the vectorized schedule's horizon proves no budget hits
                # its clamp or advance threshold before then.  Check every
                # guard (not just the first) so each affected board's
                # cached plan is retired.
                for g_k, guard in enumerate(guards):
                    if guard.changed():
                        self._replan_cache.pop(indices[g_k], None)
                        self.events["membership"] += 1
                        if self.telemetry is not None:
                            self.telemetry.bank_events.labels(
                                reason="membership"
                            ).inc()
                        stop = True
            if stop:
                break

        if schedule is not None:
            schedule.scatter()
        # The last sensed temperature: final true temperature plus the
        # final tick's noise draw (T is not rebound after its update, so
        # computing this once here matches the per-tick value exactly).
        last_temp = T + noise[:, ticks - 1]

        # --- write the lanes back into the Python board objects ---------
        T_out = T.tolist()
        energy_out = energy.tolist()
        time_out = time_arr.tolist()
        acc_out = acc_m.tolist()
        elap_out = elap_m.tolist()
        latch_out = latch_m.tolist()
        itotal_out = itotal_m.tolist()
        last_out = last_temp.tolist()
        under_out = under_m.tolist()
        if not em_fast:
            th_out = th.tolist()
            pth_out = pth_m.tolist()
            tc_out = trip_count.tolist()
            tt_out = throttle_time.tolist()
            over_out = over_m.tolist()
            hold_out = hold_m.tolist()
        pb_out = p_m[0].tolist()
        pl_out = p_m[1].tolist()
        for k, board in enumerate(boards):
            thermals[k].temperature = T_out[k]
            board.energy = energy_out[k]
            board.time = time_out[k]
            sensor = sens_b[k]
            sensor._accumulated = acc_out[0][k]
            sensor._elapsed = elap_out[0][k]
            sensor._latched = latch_out[0][k]
            sensor = sens_l[k]
            sensor._accumulated = acc_out[1][k]
            sensor._elapsed = elap_out[1][k]
            sensor._latched = latch_out[1][k]
            S["pc_b"][k].total_giga = itotal_out[0][k]
            S["pc_l"][k].total_giga = itotal_out[1][k]
            board.temp_sensor._last = last_out[k]
            if rng_states[k] is not None and ticks < max_ticks:
                # Rewind the generator and consume exactly the draws the
                # scalar path would have (batched == sequential draws).
                rng = board.temp_sensor._rng
                rng.bit_generator.state = rng_states[k]
                rng.normal(scale=noise_rms[k], size=ticks)
            e = em[k]
            e._under_power_time[BIG] = under_out[0][k]
            e._under_power_time[LITTLE] = under_out[1][k]
            if em_fast:
                # Scalar stepping zeroes the over-threshold timers on
                # every under-threshold tick, and every fast-window tick
                # is under threshold; throttle flags, trip counts, and
                # hold clocks provably did not move.
                e._over_power_time[BIG] = 0.0
                e._over_power_time[LITTLE] = 0.0
            else:
                state = e.state
                state.thermal_throttled = th_out[k]
                state.power_throttled[BIG] = pth_out[0][k]
                state.power_throttled[LITTLE] = pth_out[1][k]
                state.trip_count = tc_out[k]
                state.throttle_time = tt_out[k]
                e._over_power_time[BIG] = over_out[0][k]
                e._over_power_time[LITTLE] = over_out[1][k]
                e._hold_time[BIG] = hold_out[0][k]
                e._hold_time[LITTLE] = hold_out[1][k]
            board._instant_power = {BIG: pb_out[k], LITTLE: pl_out[k]}
            board._instant_bips = plans[indices[k]].bips
            if board.trace is not None:
                self._extend_trace(board, k, hist, ticks, plans[indices[k]])
        self.windows += 1
        self.vector_ticks += ticks * B
        if self.telemetry is not None:
            self.telemetry.bank_windows.inc()
            self.telemetry.bank_board_ticks.inc(ticks * B)
        return ticks

    @staticmethod
    def _extend_trace(board, lane, hist, ticks, plan):
        """Append this window's per-tick history to one board's trace."""
        trace = board.trace
        trace.times.extend(float(row[lane]) for row in hist["time"])
        trace.power_big.extend(float(row[0][lane]) for row in hist["power"])
        trace.power_little.extend(
            float(row[1][lane]) for row in hist["power"]
        )
        trace.temperature.extend(
            float(row[lane]) for row in hist["temperature"]
        )
        bips_big = plan.bips[BIG]
        bips_little = plan.bips[LITTLE]
        trace.bips_big.extend([bips_big] * ticks)
        trace.bips_little.extend([bips_little] * ticks)
        trace.bips_total.extend([bips_big + bips_little] * ticks)
        trace.freq_big.extend(float(row[lane]) for row in hist["freq_big"])
        trace.freq_little.extend(
            float(row[lane]) for row in hist["freq_little"]
        )
        trace.cores_big.extend([board.clusters[BIG].cores_on] * ticks)
        trace.cores_little.extend([board.clusters[LITTLE].cores_on] * ticks)
        trace.emergency.extend(bool(row[lane]) for row in hist["emergency"])
