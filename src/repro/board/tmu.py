"""Emergency thermal/power firmware heuristics (the stock TMU).

The ODROID ships threshold-rule firmware that trips when temperature or
power exceed preset values for a while, force-throttling the big cluster
(and hotplugging cores if that is not enough).  These heuristics run *under*
any controller, exactly as on the real board: the paper's evaluation limits
(3.3 W / 0.33 W / 79 degC) sit below the trip points, so well-behaved
controllers never hit them — while the decoupled heuristic trips them
continuously, producing the Fig. 10(b) oscillations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import BIG, LITTLE, BoardSpec

__all__ = ["EmergencyManager", "EmergencyState"]


@dataclass
class EmergencyState:
    """Externally visible record of emergency actions."""

    thermal_throttled: bool = False
    power_throttled: dict = field(default_factory=lambda: {BIG: False, LITTLE: False})
    trip_count: int = 0
    throttle_time: float = 0.0  # cumulative seconds with any override active

    @property
    def any_active(self):
        return self.thermal_throttled or any(self.power_throttled.values())


class EmergencyManager:
    """Threshold firmware: monitors sensors, overrides cluster frequency."""

    # Power must exceed the emergency threshold this long before tripping.
    POWER_TRIP_DELAY = 0.5  # seconds
    POWER_CLEAR_DELAY = 1.0  # seconds below the limit before releasing
    MIN_HOLD = 3.0  # seconds an emergency stays engaged once tripped

    def __init__(self, spec: BoardSpec):
        self._spec = spec
        self.state = EmergencyState()
        # Optional trip observer (installed by the telemetry layer): called
        # with "thermal" / "power-big" / "power-little" on each trip edge.
        self.on_trip = None
        self._over_power_time = {BIG: 0.0, LITTLE: 0.0}
        self._under_power_time = {BIG: 0.0, LITTLE: 0.0}
        self._hold_time = {BIG: 0.0, LITTLE: 0.0}

    def frequency_cap(self, cluster_name):
        """Current emergency frequency cap for a cluster (GHz, or None)."""
        spec = self._spec.cluster(cluster_name)
        caps = []
        if self.state.thermal_throttled and cluster_name == BIG:
            caps.append(self._spec.emergency_throttle_freq)
        if self.state.power_throttled[cluster_name]:
            # Power emergencies clamp deep into the range: firmware is
            # deliberately conservative, which is exactly what costs the
            # decoupled scheme its Fig. 10(b) valleys.
            caps.append(spec.freq_range.snap(spec.freq_range.low
                                             + 0.3 * spec.freq_range.span))
        if not caps:
            return None
        return min(caps)

    def core_cap(self, cluster_name):
        """Emergency hotplug cap: firmware parks big cores while tripped."""
        if cluster_name == BIG and (
            self.state.thermal_throttled or self.state.power_throttled[BIG]
        ):
            return 2
        if cluster_name == LITTLE and self.state.power_throttled[LITTLE]:
            return 2
        return None

    def update(self, temperature, power_by_cluster, dt):
        """Advance the firmware state machine one simulator step."""
        spec = self._spec
        # --- Thermal trip with hysteresis -----------------------------
        if not self.state.thermal_throttled:
            if temperature >= spec.emergency_temp_trip:
                self.state.thermal_throttled = True
                self.state.trip_count += 1
                if self.on_trip is not None:
                    self.on_trip("thermal")
        else:
            if temperature <= spec.emergency_temp_clear:
                self.state.thermal_throttled = False
        # --- Power trips per cluster -----------------------------------
        for name in (BIG, LITTLE):
            limit = (
                spec.power_limit_big if name == BIG else spec.power_limit_little
            )
            threshold = limit * spec.emergency_power_factor
            power = power_by_cluster[name]
            if power > threshold:
                self._over_power_time[name] += dt
                self._under_power_time[name] = 0.0
            else:
                self._over_power_time[name] = 0.0
                if power <= limit:
                    self._under_power_time[name] += dt
            if self.state.power_throttled[name]:
                self._hold_time[name] += dt
            if (
                not self.state.power_throttled[name]
                and self._over_power_time[name] >= self.POWER_TRIP_DELAY
            ):
                self.state.power_throttled[name] = True
                self.state.trip_count += 1
                self._hold_time[name] = 0.0
                if self.on_trip is not None:
                    self.on_trip(f"power-{name}")
            elif (
                self.state.power_throttled[name]
                and self._hold_time[name] >= self.MIN_HOLD
                and self._under_power_time[name] >= self.POWER_CLEAR_DELAY
            ):
                self.state.power_throttled[name] = False
        if self.state.any_active:
            self.state.throttle_time += dt
        return self.state
