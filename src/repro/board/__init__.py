"""Simulated ODROID XU3 substrate: the board the controllers run against."""

from .bank import BoardBank
from .board import Board, BoardTrace, ClusterRuntime
from .placement import PlacementState, plan_placement, spare_capacity
from .power import PowerBreakdown, cluster_power
from .sensors import PerformanceCounter, TemperatureSensor, WindowedPowerSensor
from .specs import BIG, LITTLE, BoardSpec, ClusterSpec, default_xu3_spec
from .thermal import ThermalModel
from .tmu import EmergencyManager, EmergencyState

__all__ = [
    "Board",
    "BoardBank",
    "BoardTrace",
    "ClusterRuntime",
    "PlacementState",
    "plan_placement",
    "spare_capacity",
    "PowerBreakdown",
    "cluster_power",
    "PerformanceCounter",
    "TemperatureSensor",
    "WindowedPowerSensor",
    "BIG",
    "LITTLE",
    "BoardSpec",
    "ClusterSpec",
    "default_xu3_spec",
    "ThermalModel",
    "EmergencyManager",
    "EmergencyState",
]
