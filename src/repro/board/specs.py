"""Board specification: the simulated ODROID XU3 (Exynos 5422).

All platform constants live here: cluster frequency tables, voltage curves,
power-model coefficients, the thermal RC network, sensor periods, and the
emergency thresholds of the stock firmware.  The default values are tuned so
the paper's operating envelope is reproduced: four A15s flat out draw well
over the 3.3 W big-cluster limit, the little cluster brushes its 0.33 W
limit near 1 GHz, and sustained operation at the limits sits just below the
79 degC thermal constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..signals import QuantizedRange

__all__ = ["ClusterSpec", "BoardSpec", "default_xu3_spec", "BIG", "LITTLE"]

BIG = "big"
LITTLE = "little"


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one core cluster."""

    name: str
    n_cores: int
    freq_range: QuantizedRange  # GHz
    voltage_base: float  # V at the lowest frequency
    voltage_slope: float  # V per GHz above the lowest frequency
    ceff_dynamic: float  # effective switched capacitance, nF per core
    leak_coeff: float  # W per core per volt at the reference temperature
    leak_temp_coeff: float  # fractional leakage increase per degC
    cpi_execute: float  # baseline execute CPI of this core type
    mem_stall_factor: float  # fraction of raw memory latency exposed (MLP)
    idle_power: float  # W per powered-on idle core

    def voltage(self, freq_ghz):
        """Operating voltage at a given frequency (V)."""
        return self.voltage_base + self.voltage_slope * (freq_ghz - self.freq_range.low)

    def core_count_range(self):
        return QuantizedRange(1, self.n_cores, step=1)


@dataclass
class BoardSpec:
    """Full board description."""

    big: ClusterSpec
    little: ClusterSpec
    sim_dt: float  # simulator step (s)
    control_period: float  # controller invocation period (s)
    power_sensor_period: float  # on-board INA231 update period (s)
    ambient_temp: float  # degC
    thermal_resistance: float  # degC per W (hot spot vs ambient)
    thermal_tau: float  # s, first-order thermal time constant
    thermal_weight_little: float  # fraction of little power heating the hot spot
    board_static_power: float  # W, always-on board overhead (DRAM, IO)
    mem_latency_ns: float  # effective DRAM latency per miss
    mem_bandwidth_gbs: float  # saturating bandwidth model cap
    migration_cost_s: float  # lost execution time per migrated thread
    hotplug_cost_s: float  # lost execution time per hotplug event
    # Paper Sec. V-A limits (what the controllers must respect).
    power_limit_big: float
    power_limit_little: float
    temp_limit: float
    # Stock-firmware emergency thresholds (Sec. V-A: limits sit below these).
    emergency_power_factor: float  # emergency trips at factor * limit
    emergency_temp_trip: float  # degC
    emergency_temp_clear: float  # degC (hysteresis)
    emergency_throttle_freq: float  # GHz forced on the big cluster when tripped
    temp_sensor_noise: float  # degC rms
    rng_seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        # Catch a non-divisible simulation grid at construction time rather
        # than letting int(round(...)) silently stretch the control period.
        self.period_steps()

    def cluster(self, name):
        if name == BIG:
            return self.big
        if name == LITTLE:
            return self.little
        raise KeyError(f"unknown cluster {name!r}")

    def period_steps(self):
        """Simulator ticks per control period, validated.

        ``sim_dt`` must evenly divide ``control_period`` (to one part in
        10^6, absorbing float representation error): a silent
        ``int(round(...))`` would otherwise stretch or shrink every control
        period, skewing sensor windows and all reported execution times.
        """
        if self.sim_dt <= 0:
            raise ValueError(f"sim_dt must be positive, got {self.sim_dt}")
        if self.control_period <= 0:
            raise ValueError(
                f"control_period must be positive, got {self.control_period}"
            )
        ratio = self.control_period / self.sim_dt
        steps = int(round(ratio))
        if steps < 1 or abs(ratio - steps) > 1e-6 * ratio:
            raise ValueError(
                f"sim_dt ({self.sim_dt}) must evenly divide control_period "
                f"({self.control_period}); got {ratio:.6f} steps per period"
            )
        return steps


def default_xu3_spec(sim_dt=0.05) -> BoardSpec:
    """The default simulated ODROID XU3 configuration."""
    big = ClusterSpec(
        name=BIG,
        n_cores=4,
        freq_range=QuantizedRange(0.2, 2.0, step=0.1),
        voltage_base=0.90,
        voltage_slope=0.26,
        ceff_dynamic=0.42,  # nF -> ~1.3 W dynamic per core at 2.0 GHz
        leak_coeff=0.085,
        leak_temp_coeff=0.012,
        cpi_execute=1.15,
        mem_stall_factor=0.65,  # OoO MLP hides only part of DRAM latency
        idle_power=0.045,
    )
    little = ClusterSpec(
        name=LITTLE,
        n_cores=4,
        freq_range=QuantizedRange(0.2, 1.4, step=0.1),
        voltage_base=0.90,
        voltage_slope=0.18,
        ceff_dynamic=0.085,
        leak_coeff=0.016,
        leak_temp_coeff=0.010,
        cpi_execute=2.0,
        mem_stall_factor=1.0,  # in-order core exposes the full latency
        idle_power=0.008,
    )
    return BoardSpec(
        big=big,
        little=little,
        sim_dt=sim_dt,
        control_period=0.5,
        power_sensor_period=0.25,  # 260 ms sensor rounded to the sim grid
        ambient_temp=42.0,
        thermal_resistance=12.5,
        thermal_tau=8.0,
        thermal_weight_little=0.45,
        board_static_power=0.35,
        mem_latency_ns=110.0,
        mem_bandwidth_gbs=7.5,
        migration_cost_s=0.002,
        hotplug_cost_s=0.010,
        power_limit_big=3.3,
        power_limit_little=0.33,
        temp_limit=79.0,
        emergency_power_factor=1.6,
        emergency_temp_trip=85.0,
        emergency_temp_clear=76.0,
        emergency_throttle_freq=0.8,
        temp_sensor_noise=0.3,
    )
