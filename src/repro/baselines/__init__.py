"""Baseline controllers the paper compares Yukta against (Table IV, Sec. VI-B)."""

from .heuristics import (
    CoordinatedHeuristicHW,
    CoordinatedHeuristicOS,
    DecoupledHeuristicHW,
    DecoupledHeuristicOS,
)
from .lqg_runtime import (
    LQGLayerController,
    MonolithicLQGAdapter,
    design_lqg_hw,
    design_lqg_sw,
    design_monolithic_lqg,
)

__all__ = [
    "CoordinatedHeuristicHW",
    "CoordinatedHeuristicOS",
    "DecoupledHeuristicHW",
    "DecoupledHeuristicOS",
    "LQGLayerController",
    "MonolithicLQGAdapter",
    "design_lqg_hw",
    "design_lqg_sw",
    "design_monolithic_lqg",
]
