"""Heuristic baseline controllers (Table IV, schemes a and b).

*Coordinated heuristic* — the industry-standard pairing: an HMP-flavoured
OS scheduler that uses the number/type/frequency of available cores to
place threads, plus a hardware governor that pushes frequency and core
counts up while operation is safe and backs off using the observed thread
distribution.  This is the paper's baseline every figure normalizes to.

*Decoupled heuristic* — the same layers with the coordination severed: the
OS round-robins threads over all cores regardless of type, and the hardware
governor is the Linux *performance* governor with emergency-style threshold
backoff that ignores thread placement.

Both expose the same ``step(outputs, externals) -> actuation`` interface as
the SSV runtime controllers, so the coordinator can mix and match.
"""

from __future__ import annotations

import numpy as np

from ..board.specs import BoardSpec

__all__ = [
    "CoordinatedHeuristicHW",
    "CoordinatedHeuristicOS",
    "DecoupledHeuristicHW",
    "DecoupledHeuristicOS",
]


class _HeuristicBase:
    """Shared plumbing: target setters are accepted and ignored."""

    targets = np.zeros(0)

    def set_targets(self, targets):
        # Heuristics pursue their built-in policy; optimizer targets are
        # ignored (they have no tracking machinery).
        self.targets = np.asarray(targets, dtype=float)

    def reset(self):
        pass


class CoordinatedHeuristicHW(_HeuristicBase):
    """Threshold governor that *does* look at the thread distribution.

    Policy: raise frequency (then cores) while all outputs are safely below
    their limits; on pressure, shed the resource the thread distribution
    says is cheapest — surplus cores first if cores outnumber threads,
    frequency otherwise.  One step per invocation in either direction, with
    hysteresis bands, which is exactly the slow-converging behaviour
    threshold governors exhibit on real boards.
    """

    # Stock-generic thresholds: shipped firmware is tuned for safety across
    # an entire device family, not for one board's ExD optimum (the paper's
    # Sec. IV-A point about "several tens of interdependent settings that
    # require tuning").  The margins below are deliberately generic.
    RAISE_BAND = 0.90  # raise resources below this fraction of a limit
    TRIM_BAND = 0.97  # shed resources above this fraction
    SAFE_PERIODS = 5  # consecutive safe periods required before raising
    PANIC_FACTOR = 1.04  # pressure above this sheds several notches at once
    COOLING_FREQ = 0.9  # GHz: the stock TMU's fixed cooling state
    COOLING_HYSTERESIS = 6.0  # degC below the limit before releasing

    def __init__(self, spec: BoardSpec):
        self._spec = spec
        self.reset()

    def reset(self):
        # Start mid-range rather than flat out: industry governors boot at a
        # conservative operating point and ramp.
        spec = self._spec
        self.n_big = spec.big.n_cores
        self.n_little = spec.little.n_cores
        self.f_big = spec.big.freq_range.snap(spec.big.freq_range.midpoint)
        self.f_little = spec.little.freq_range.snap(spec.little.freq_range.midpoint)
        self._safe_big = 0
        self._safe_little = 0
        self._cooling = False

    def step(self, outputs, externals):
        _, p_big, p_little, temp = np.asarray(outputs, dtype=float)
        n_threads_big, tpc_big, tpc_little = np.asarray(externals, dtype=float)
        spec = self._spec
        step_big = spec.big.freq_range.step
        step_little = spec.little.freq_range.step
        # --- thermal rule (stock-TMU style) -------------------------------
        # Threshold firmware clamps to a fixed cooling frequency when the
        # limit is crossed and holds it through a hysteresis band; because
        # temperature lags power by seconds, the result is the saw-tooth of
        # Fig. 10(a) — the structural weakness formal control removes.
        if self._cooling:
            if temp <= spec.temp_limit - self.COOLING_HYSTERESIS:
                self._cooling = False
        elif temp >= spec.temp_limit:
            self._cooling = True
        # --- big cluster: power rule ---------------------------------------
        pressure = p_big / spec.power_limit_big
        if pressure > self.TRIM_BAND:
            self._safe_big = 0
            notches = 3 if pressure > self.PANIC_FACTOR else 1
            threads_fit = n_threads_big >= self.n_big * max(tpc_big, 1.0)
            if not threads_fit and self.n_big > 1:
                self.n_big -= 1  # surplus cores: cheapest thing to shed
            else:
                self.f_big = max(
                    self.f_big - notches * step_big, spec.big.freq_range.low
                )
        elif pressure < self.RAISE_BAND:
            self._safe_big += 1
            if self._safe_big >= self.SAFE_PERIODS:
                if self.f_big < spec.big.freq_range.high:
                    self.f_big += step_big
                elif self.n_big < spec.big.n_cores and n_threads_big > self.n_big:
                    self.n_big += 1
        else:
            self._safe_big = 0
        # --- little cluster ----------------------------------------------
        pressure_l = p_little / spec.power_limit_little
        n_threads_little = max(0.0, 8.0 - n_threads_big)
        if pressure_l > self.TRIM_BAND:
            self._safe_little = 0
            notches = 3 if pressure_l > self.PANIC_FACTOR else 1
            threads_fit = n_threads_little >= self.n_little * max(tpc_little, 1.0)
            if not threads_fit and self.n_little > 1:
                self.n_little -= 1
            else:
                self.f_little = max(
                    self.f_little - notches * step_little, spec.little.freq_range.low
                )
        elif pressure_l < self.RAISE_BAND:
            self._safe_little += 1
            if self._safe_little >= self.SAFE_PERIODS:
                if self.f_little < spec.little.freq_range.high:
                    self.f_little += step_little
                elif (
                    self.n_little < spec.little.n_cores
                    and n_threads_little > self.n_little
                ):
                    self.n_little += 1
        else:
            self._safe_little = 0
        f_big_out = min(self.f_big, self.COOLING_FREQ) if self._cooling else self.f_big
        return [self.n_big, self.n_little, f_big_out, self.f_little]


class CoordinatedHeuristicOS(_HeuristicBase):
    """HMP/GTS-flavoured scheduler with an ExD consolidation tweak.

    Stock global task scheduling is *big-first*: runnable CPU-bound threads
    are heavy, so they up-migrate to the big cluster until it holds two per
    core; only the overflow runs little.  (The paper notes the stock HMP
    "sometimes packs multiple threads on a core while leaving another core
    idle" — big-first packing is exactly that behaviour.)  The ExD tweak
    the paper's baseline carries is spill-over awareness: when the big
    cluster's frequency is *throttled* well below the little cluster's
    relative capability, a share of threads is released to little cores.
    """

    BIG_PACK_LIMIT = 2.0  # threads per big core before spilling over
    SPILL_RATIO = 1.9  # f_big/f_little below which spilling starts

    def __init__(self, spec: BoardSpec, total_threads=8):
        self._spec = spec
        self.total_threads = total_threads

    def step(self, outputs, externals):
        n_big_cores, n_little_cores, f_big, f_little = np.asarray(
            externals, dtype=float
        )
        n_threads = int(round(self.total_threads))
        capacity_big = int(round(n_big_cores * self.BIG_PACK_LIMIT))
        n_to_big = min(n_threads, capacity_big)
        # ExD tweak: under heavy big-cluster throttling, release one thread
        # per little core (the "type and frequency" awareness of Table IV).
        if f_big < self.SPILL_RATIO * f_little and n_to_big > n_big_cores:
            spill = min(int(n_little_cores), n_to_big - int(n_big_cores))
            n_to_big -= spill
        n_to_little = n_threads - n_to_big
        tpc_big = max(1.0, n_to_big / max(n_big_cores, 1))
        tpc_little = max(1.0, n_to_little / max(n_little_cores, 1))
        return [n_to_big, tpc_big, tpc_little]

    def observe_thread_count(self, n_threads):
        self.total_threads = n_threads


class DecoupledHeuristicHW(_HeuristicBase):
    """The Linux *performance* governor with threshold emergency backoff.

    Ignores the OS layer entirely: runs everything at maximum whenever the
    outputs are under their limits; on a violation, steps frequency down
    hard (and core counts next), then immediately climbs back — the classic
    saw-tooth of Fig. 10(b).
    """

    def __init__(self, spec: BoardSpec):
        self._spec = spec
        self.f_big = spec.big.freq_range.high
        self.f_little = spec.little.freq_range.high
        self.n_big = spec.big.n_cores
        self.n_little = spec.little.n_cores

    def reset(self):
        self.f_big = self._spec.big.freq_range.high
        self.f_little = self._spec.little.freq_range.high
        self.n_big = self._spec.big.n_cores
        self.n_little = self._spec.little.n_cores

    def step(self, outputs, externals):
        _, p_big, p_little, temp = np.asarray(outputs, dtype=float)
        spec = self._spec
        violated_big = p_big > spec.power_limit_big or temp > spec.temp_limit
        violated_little = p_little > spec.power_limit_little
        if violated_big:
            if self.f_big > spec.big.freq_range.low + 3 * spec.big.freq_range.step:
                self.f_big -= 3 * spec.big.freq_range.step
            elif self.n_big > 1:
                self.n_big -= 1
        else:
            # Climb straight back toward maximum (no hysteresis): this is
            # what makes the scheme oscillate against the emergency system.
            self.f_big = spec.big.freq_range.high
            self.n_big = spec.big.n_cores
        if violated_little:
            if self.f_little > spec.little.freq_range.low + 2 * spec.little.freq_range.step:
                self.f_little -= 2 * spec.little.freq_range.step
            elif self.n_little > 1:
                self.n_little -= 1
        else:
            self.f_little = spec.little.freq_range.high
            self.n_little = spec.little.n_cores
        return [self.n_big, self.n_little, self.f_big, self.f_little]


class DecoupledHeuristicOS(_HeuristicBase):
    """Round-robin thread placement, blind to core asymmetry.

    Threads are spread one per core over all eight cores in fixed order —
    half land on the big cluster, half on the little — regardless of what
    the hardware layer is doing.
    """

    def __init__(self, spec: BoardSpec, total_threads=8):
        self._spec = spec
        self.total_threads = total_threads

    def step(self, outputs, externals):
        n_threads = int(round(self.total_threads))
        n_to_big = (n_threads + 1) // 2
        return [n_to_big, 1.0, 1.0]

    def observe_thread_count(self, n_threads):
        self.total_threads = n_threads
