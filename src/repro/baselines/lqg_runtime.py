"""LQG baseline schemes (Sec. VI-B): decoupled per-layer and monolithic.

The LQG controllers are synthesized from the same characterization data as
the SSV designs, using :mod:`repro.lqg`.  Their documented limitations are
preserved deliberately:

* no external-signal channels — the decoupled variant's model sees only its
  own layer's knobs;
* no saturation/quantization awareness — the runtime passes the raw
  commanded value to the board (which snaps it physically), so the
  controller can spend intervals pushing a knob past its limit;
* no uncertainty guardband — plain Kalman/LQR tuning.
"""

from __future__ import annotations

import numpy as np

from ..lqg import lqg_synthesize
from ..lti import StateSpace
from ..sysid import center_per_run, fit_graybox
from ..core.characterize import CharacterizationResult
from ..core.layer import HW_OUTPUTS, SW_OUTPUTS

__all__ = [
    "LQGLayerController",
    "design_lqg_hw",
    "design_lqg_sw",
    "design_monolithic_lqg",
    "MonolithicLQGAdapter",
]


class LQGLayerController:
    """Runtime wrapper giving an LQG controller the layer interface.

    ``step(outputs, externals)`` ignores ``externals`` (LQG has no channel
    for them) and returns *unclamped* physical commands; the board applies
    its own saturation, so the controller integrator winds along limits —
    reproducing the paper's observation that LQG wastes intervals pushing
    inputs beyond their physical range.
    """

    def __init__(self, name, controller: StateSpace, input_offsets, input_scales,
                 output_offsets, output_scales, initial_targets):
        self.name = name
        self.state_machine = controller
        self.input_offsets = np.asarray(input_offsets, dtype=float)
        self.input_scales = np.asarray(input_scales, dtype=float)
        self.output_offsets = np.asarray(output_offsets, dtype=float)
        self.output_scales = np.asarray(output_scales, dtype=float)
        self.targets = np.asarray(initial_targets, dtype=float).copy()
        self.state = np.zeros(controller.n_states)
        self._state_cap = 40.0

    def set_targets(self, targets):
        self.targets = np.asarray(targets, dtype=float).copy()

    def reset(self):
        self.state = np.zeros(self.state_machine.n_states)

    def step(self, outputs, externals=None):
        outputs = np.asarray(outputs, dtype=float)
        y_norm = (outputs - self.output_offsets) / self.output_scales
        r_norm = (self.targets - self.output_offsets) / self.output_scales
        err = y_norm - r_norm  # LQG convention: controller input is y - r
        self.state, u_norm = self.state_machine.step(self.state, err)
        norm = np.linalg.norm(self.state)
        if norm > self._state_cap:
            self.state *= self._state_cap / norm
        u_phys = self.input_offsets + self.input_scales * u_norm
        return list(u_phys)


def _identify(data, boundaries):
    """Shared identification route: centered, normalized gray-box fit."""
    centered = center_per_run(data, boundaries)
    norm_data, u_scale, y_scale, _, _ = centered.normalized()
    gb = fit_graybox(norm_data, boundaries=boundaries, center=False)
    model_norm = gb.to_statespace()
    return model_norm, u_scale, y_scale


def _input_metadata(spec_signals):
    spans = np.array([s.allowed.span / 2.0 for s in spec_signals])
    mids = np.array([s.allowed.midpoint for s in spec_signals])
    return spans, mids


def design_lqg_hw(hw_spec, characterization: CharacterizationResult,
                  initial_targets=None):
    """Decoupled hardware LQG: model over the 4 hardware knobs only."""
    data = characterization.hw_data
    boundaries = characterization.hw_boundaries
    n_u = 4
    # Restrict the training inputs to the layer's own knobs (no externals).
    from ..sysid import ExperimentData

    own = ExperimentData(data.inputs[:, :n_u], data.outputs, data.dt)
    model_norm, u_scale, y_scale = _identify(own, boundaries)
    result = lqg_synthesize(
        model_norm, n_u=n_u,
        output_weights=[1.0, 2.0, 2.0, 2.0],  # heavier on the critical outputs
        input_weights=[1.0] * n_u,
    )
    spans, mids = _input_metadata(hw_spec.inputs)
    out_mids = np.array([characterization.mid_of(n) for n in HW_OUTPUTS])
    out_ranges = np.array([characterization.range_of(n) for n in HW_OUTPUTS])
    if initial_targets is None:
        initial_targets = out_mids
    return LQGLayerController(
        "hw-lqg", result.controller,
        input_offsets=mids, input_scales=spans,
        output_offsets=out_mids, output_scales=out_ranges,
        initial_targets=initial_targets,
    ), result


def design_lqg_sw(sw_spec, characterization: CharacterizationResult,
                  initial_targets=None):
    """Decoupled software LQG: model over the 3 placement knobs only."""
    data = characterization.sw_data
    boundaries = characterization.sw_boundaries
    n_u = 3
    from ..sysid import ExperimentData

    own = ExperimentData(data.inputs[:, :n_u], data.outputs, data.dt)
    model_norm, u_scale, y_scale = _identify(own, boundaries)
    result = lqg_synthesize(
        model_norm, n_u=n_u,
        output_weights=[1.0, 1.0, 1.0],
        input_weights=[2.0] * n_u,
    )
    spans, mids = _input_metadata(sw_spec.inputs)
    out_mids = np.array([characterization.mid_of(n) for n in SW_OUTPUTS])
    out_ranges = np.array([characterization.range_of(n) for n in SW_OUTPUTS])
    if initial_targets is None:
        initial_targets = out_mids
    return LQGLayerController(
        "sw-lqg", result.controller,
        input_offsets=mids, input_scales=spans,
        output_offsets=out_mids, output_scales=out_ranges,
        initial_targets=initial_targets,
    ), result


def design_monolithic_lqg(hw_spec, sw_spec, characterization: CharacterizationResult):
    """Monolithic LQG: one controller over all 7 knobs and all 7 outputs."""
    joint = characterization.joint_data
    boundaries = characterization.joint_boundaries
    model_norm, u_scale, y_scale = _identify(joint, boundaries)
    result = lqg_synthesize(
        model_norm, n_u=7,
        output_weights=[1.0, 2.0, 2.0, 2.0, 0.5, 0.5, 0.3],
        input_weights=[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0],
    )
    spans_hw, mids_hw = _input_metadata(hw_spec.inputs)
    spans_sw, mids_sw = _input_metadata(sw_spec.inputs)
    spans = np.concatenate([spans_hw, spans_sw])
    mids = np.concatenate([mids_hw, mids_sw])
    names = list(HW_OUTPUTS) + list(SW_OUTPUTS)
    out_mids = np.array([characterization.mid_of(n) for n in names])
    out_ranges = np.array([characterization.range_of(n) for n in names])
    controller = LQGLayerController(
        "monolithic-lqg", result.controller,
        input_offsets=mids, input_scales=spans,
        output_offsets=out_mids, output_scales=out_ranges,
        initial_targets=out_mids,
    )
    return controller, result


class MonolithicLQGAdapter:
    """Present a 7-knob monolithic controller as an (hw, sw) pair.

    The coordinator calls the hw side first; the adapter runs the single
    LQG once per period on the stacked output vector and splits the
    actuation between the two layer calls.
    """

    def __init__(self, controller: LQGLayerController):
        self.controller = controller
        self._pending_sw = None

    # hardware-side facade --------------------------------------------------
    @property
    def targets(self):
        return self.controller.targets[:4]

    def set_targets(self, targets):
        merged = self.controller.targets.copy()
        merged[: len(targets)] = targets
        self.controller.set_targets(merged)

    def set_sw_targets(self, targets):
        merged = self.controller.targets.copy()
        merged[4:] = targets
        self.controller.set_targets(merged)

    def reset(self):
        self.controller.reset()
        self._pending_sw = None

    def step_joint(self, outputs_hw, outputs_sw):
        stacked = np.concatenate([outputs_hw, outputs_sw])
        u = self.controller.step(stacked)
        self._pending_sw = u[4:]
        return u[:4]

    def pending_sw_actuation(self):
        return self._pending_sw
