"""Per-phase control-loop profiler: where does a control period go?

ControlPULP budgets its firmware loop per phase — sensing, control law,
actuation — because a loop that misses its period is a correctness bug,
not just a slow one.  The :class:`PhaseProfiler` gives this repro the
same visibility: each control period's spans (``sample``, ``optimize``,
``hw.step``, ``actuate.hw``, …) are folded into canonical phases
(*sensing / controller / optimizer / actuation / plant_step /
telemetry*) and observed into a labeled histogram in the metrics
registry, whose export carries p50/p90/p99 summaries
(:meth:`~repro.telemetry.registry.Histogram.quantile`).  The span stream
itself is already Perfetto-loadable (``trace.json``), so the profiler
adds aggregation, not a second trace.

Overhead discipline mirrors the telemetry substrate: the tracer holds a
``profiler`` attribute that is ``None`` unless profiling was requested
(one attribute check on the disabled path), and an enabled profiler can
*sample* — profile every ``sample_every``-th period in full, skip the
rest — to stay inside the <5 % gate ``benchmarks/bench_obs.py``
enforces.
"""

from __future__ import annotations

__all__ = ["PhaseProfiler", "PHASE_OF", "PHASE_BUCKETS", "phase_summary"]

# Span name -> canonical control-loop phase.
PHASE_OF = {
    "sample": "sensing",
    "optimize": "optimizer",
    "hw.step": "controller",
    "sw.step": "controller",
    "actuate.hw": "actuation",
    "actuate.sw": "actuation",
    "sim": "plant_step",
    "telemetry": "telemetry",
}

# Phase latencies sit in the 1 us .. 100 ms range — far below the
# synthesis-sized DEFAULT_TIME_BUCKETS — so the profiler brings its own.
PHASE_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
)

QUANTILES = (0.5, 0.9, 0.99)


class PhaseProfiler:
    """Aggregates span durations into per-phase latency histograms."""

    __slots__ = ("hist", "sample_every", "sampled", "skipped", "_by_name")

    def __init__(self, registry, sample_every=1):
        self.hist = registry.histogram(
            "control_phase_seconds",
            "control-period phase latency (sensing/controller/optimizer/"
            "actuation/plant_step/telemetry)",
            labels=("phase",),
            buckets=PHASE_BUCKETS,
        )
        self.sample_every = max(int(sample_every), 1)
        self.sampled = 0  # spans observed
        self.skipped = 0  # spans skipped by sampling
        # Span name -> histogram child, resolved once per name: the
        # labels() protocol (kwargs dict + label validation) is too
        # expensive for a per-span hot path.
        self._by_name = {}

    def observe(self, name, dur_us, trace_id):
        """Fold one finished span into its phase histogram (hot path)."""
        if trace_id % self.sample_every:
            self.skipped += 1
            return
        child = self._by_name.get(name)
        if child is None:
            child = self._by_name[name] = self.hist.labels(
                phase=PHASE_OF.get(name, "other"))
        child.observe(dur_us * 1e-6)
        self.sampled += 1

    # ------------------------------------------------------------------
    def summary(self):
        """``{phase: {count, mean_us, p50_us, p90_us, p99_us}}``."""
        out = {}
        for labels, child in self.hist.samples():
            if not child.count:
                continue
            entry = {
                "count": child.count,
                "mean_us": child.sum / child.count * 1e6,
            }
            for q in QUANTILES:
                entry[f"p{int(q * 100)}_us"] = child.quantile(q) * 1e6
            out[labels["phase"]] = entry
        return out

    def render(self):
        summary = self.summary()
        if not summary:
            return "  (no phases profiled)"
        lines = [
            f"  {'phase':12s} {'count':>8s} {'mean us':>9s} "
            f"{'p50 us':>9s} {'p90 us':>9s} {'p99 us':>9s}"
        ]
        for phase in sorted(summary,
                            key=lambda p: -summary[p]["mean_us"] * summary[p]["count"]):
            entry = summary[phase]
            lines.append(
                f"  {phase:12s} {entry['count']:8d} {entry['mean_us']:9.1f} "
                f"{entry['p50_us']:9.1f} {entry['p90_us']:9.1f} "
                f"{entry['p99_us']:9.1f}"
            )
        if self.skipped:
            rate = self.sampled / max(self.sampled + self.skipped, 1)
            lines.append(f"  (sampling 1/{self.sample_every}: "
                         f"{self.sampled} spans kept, {rate * 100:.0f}%)")
        return "\n".join(lines)


def phase_summary(metrics_dict):
    """Extract the per-phase summary from a ``metrics.json`` snapshot.

    Works offline — the ``repro report`` path — using the exported
    quantiles (or recomputing them from the bucket counts when an older
    snapshot lacks them).
    """
    family = metrics_dict.get("control_phase_seconds")
    if not family:
        return {}
    from ..telemetry.registry import quantiles_from_buckets

    out = {}
    for value in family.get("values", ()):
        count = value.get("count", 0)
        if not count:
            continue
        phase = value.get("labels", {}).get("phase", "?")
        quantiles = value.get("quantiles") or quantiles_from_buckets(
            value.get("buckets", ()), count)
        entry = {
            "count": count,
            "mean_us": value.get("sum", 0.0) / count * 1e6,
        }
        for key, seconds in quantiles.items():
            entry[f"{key}_us"] = seconds * 1e6
        out[phase] = entry
    return out
