"""``repro report``: one markdown/HTML verdict for a campaign directory.

Combines everything the other observability layers recorded about a
campaign — finished or in-flight — into a single human-readable
artifact:

* **health** — progress/ETA/retry/failure from ``events.jsonl``
  (:mod:`repro.obs.health`);
* **quality** — per-cell control-quality KPIs
  (:mod:`repro.obs.quality`) recovered from the checkpoint journal's
  cell payloads: full :class:`QualityReport` tables for cells that
  carried a board trace, summary rows otherwise;
* **profile** — the per-phase control-loop latency summary
  (:mod:`repro.obs.profiler`) from the recorded ``metrics.json``;
* **telemetry** — headline counters (periods, supervisor trips, cap
  rejections, flight dumps) from the same snapshot.

Sections degrade independently: a directory holding only telemetry still
yields a profile+metrics report, a bare checkpoint dir still yields
health+quality.  The markdown renders standalone; :func:`to_html` wraps
it in a minimal self-contained page for sharing.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from .events import EVENTS_FILENAME
from .health import load_health, render_status
from .profiler import phase_summary
from .quality import analyze_run

__all__ = ["build_report", "to_html", "quality_rows"]


def _md_table(headers, rows):
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def quality_rows(directory, spec=None):
    """Quality-KPI rows recovered from a checkpoint journal.

    Returns ``(headers, rows, reports)`` where ``reports`` maps cell
    labels to full :class:`~repro.obs.quality.QualityReport` objects for
    the cells whose payloads carried a board trace.  Dict-shaped cells
    (the resilience sweep) contribute summary rows from their scalar
    KPIs.
    """
    from ..runtime import CellFailure, CheckpointJournal

    journal = CheckpointJournal(directory)
    entries = journal.index()
    if not entries:
        return None, [], {}
    if spec is None:
        from ..board import default_xu3_spec

        spec = default_xu3_spec()
    headers = ["cell", "ExD (J·s)", "done", "cap viol (s)", ">limit °C (s)",
               "DVFS/s", "settle (s)"]
    rows = []
    reports = {}

    def _add(label, value, lane=None):
        name = label if lane is None else f"{label}[{lane}]"
        if isinstance(value, CellFailure):
            rows.append([name, "-", f"FAILED ({value.reason})",
                         "-", "-", "-", "-"])
            return
        if hasattr(value, "execution_time"):  # RunMetrics-shaped
            if getattr(value, "trace", None):
                report = analyze_run(value, spec)
                reports[name] = report
                settle = next(
                    (r.settling_time for r in report.responses
                     if r.signal == "power_big"), None)
                rows.append([
                    name, f"{report.exd:.0f}",
                    "yes" if report.completed else "no",
                    f"{report.power_cap.time_above:.2f}",
                    f"{report.thermal.time_above:.2f}",
                    f"{report.dvfs_per_sec:.2f}",
                    f"{settle:.1f}" if settle is not None else "-",
                ])
            else:
                rows.append([
                    name, f"{value.energy * value.execution_time:.0f}",
                    "yes" if value.completed else "no", "-", "-", "-", "-",
                ])
            return
        if isinstance(value, dict) and "exd" in value:  # resilience cell
            rows.append([
                name, f"{value['exd']:.0f}",
                "yes" if value.get("completed") else "no",
                f"{value.get('power_violation_time', 0.0):.2f}",
                f"{value.get('temp_violation_time', 0.0):.2f}",
                "-", "-",
            ])
            return
        rows.append([name, "-", "?", "-", "-", "-", "-"])

    for key, entry in sorted(entries.items(),
                             key=lambda kv: kv[1].get("meta", {})
                             .get("label", kv[0])):
        value = journal.get(key, entry.get("sha256"))
        from ..cache import MISS

        label = entry.get("meta", {}).get("label", key[:12])
        if value is MISS:
            rows.append([label, "-", "corrupt payload", "-", "-", "-", "-"])
            continue
        if isinstance(value, list):
            for lane, item in enumerate(value):
                _add(label, item, lane=lane)
        else:
            _add(label, value)
    return headers, rows, reports


def _metrics_snapshot(directory):
    path = Path(directory) / "metrics.json"
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None


HEADLINE_COUNTERS = (
    "control_periods_total",
    "supervisor_trips_total",
    "actuations_rejected_total",
    "fault_events_total",
    "flight_dumps_total",
    "cell_retries_total",
    "cell_failures_total",
    "cell_timeouts_total",
    "worker_restarts_total",
)


def _counter_rows(metrics):
    rows = []
    for name in HEADLINE_COUNTERS:
        family = metrics.get(name)
        if not family:
            continue
        for value in family.get("values", ()):
            labels = value.get("labels", {})
            suffix = ("{" + ",".join(f"{k}={v}"
                                     for k, v in sorted(labels.items())) + "}"
                      if labels else "")
            amount = value.get("value", 0)
            if amount:
                rows.append([f"{name}{suffix}", f"{amount:g}"])
    return rows


def build_report(directory, spec=None, title=None):
    """Render the combined campaign report (markdown) for one directory."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a campaign directory: {directory}")
    lines = [f"# Campaign report: {title or directory.name}", ""]
    found = False

    # --- health -------------------------------------------------------
    if (directory / EVENTS_FILENAME).is_file():
        found = True
        health = load_health(directory)
        state = "finished" if health.finished else "in-flight"
        lines += ["## Health", ""]
        lines += _md_table(
            ["state", "progress", "fresh", "resumed", "failed", "retries",
             "timeouts", "runs"],
            [[state,
              f"{health.done}/{health.total or '?'}",
              health.completed, health.resumed, health.failed,
              health.retries, health.timeouts, health.runs]])
        if health.failures:
            lines += ["", "Failures:", ""]
            for failure in health.failures:
                lines.append(f"- `{failure['label']}` — {failure['reason']}"
                             + (f" after {failure['attempts']} attempt(s)"
                                if failure.get("attempts") else ""))
        lines.append("")

    # --- quality ------------------------------------------------------
    headers, rows, reports = (None, [], {})
    if (directory / "journal.jsonl").is_file():
        headers, rows, reports = quality_rows(directory, spec=spec)
    if rows:
        found = True
        lines += ["## Control quality", ""]
        lines += _md_table(headers, rows)
        lines.append("")
        for name, report in reports.items():
            lines += [f"### {name}", "", "```", report.render(), "```", ""]

    # --- profile ------------------------------------------------------
    metrics = _metrics_snapshot(directory)
    if metrics:
        found = True
        phases = phase_summary(metrics)
        if phases:
            lines += ["## Control-loop phase profile", ""]
            lines += _md_table(
                ["phase", "count", "mean µs", "p50 µs", "p90 µs", "p99 µs"],
                [[phase, entry["count"], f"{entry['mean_us']:.1f}",
                  f"{entry.get('p50_us', 0):.1f}",
                  f"{entry.get('p90_us', 0):.1f}",
                  f"{entry.get('p99_us', 0):.1f}"]
                 for phase, entry in sorted(phases.items())])
            lines.append("")
        counter_rows = _counter_rows(metrics)
        if counter_rows:
            lines += ["## Telemetry headlines", ""]
            lines += _md_table(["metric", "value"], counter_rows)
            lines.append("")

    if not found:
        raise FileNotFoundError(
            f"no campaign artifacts (events.jsonl / journal.jsonl / "
            f"metrics.json) in {directory}")
    return "\n".join(lines).rstrip() + "\n"


def to_html(markdown, title="repro campaign report"):
    """A minimal, dependency-free HTML wrapping of the markdown report.

    Handles exactly the constructs :func:`build_report` emits — ATX
    headers, pipe tables, fenced code blocks, bullet lists, paragraphs —
    which keeps this a renderer for our own reports, not a markdown
    engine.
    """
    out = ["<!DOCTYPE html>", "<html><head>",
           f"<title>{_html.escape(title)}</title>",
           "<meta charset='utf-8'>",
           "<style>body{font-family:sans-serif;max-width:72em;margin:2em "
           "auto;padding:0 1em}table{border-collapse:collapse}td,th{border:"
           "1px solid #999;padding:.25em .6em;text-align:right}th{background:"
           "#eee}td:first-child,th:first-child{text-align:left}pre{background:"
           "#f6f6f6;padding:.8em;overflow-x:auto}</style>",
           "</head><body>"]
    in_code = False
    in_table = False
    in_list = False

    def _close_blocks():
        nonlocal in_table, in_list
        if in_table:
            out.append("</table>")
            in_table = False
        if in_list:
            out.append("</ul>")
            in_list = False

    for raw in markdown.splitlines():
        line = raw.rstrip()
        if line.startswith("```"):
            _close_blocks()
            out.append("</pre>" if in_code else "<pre>")
            in_code = not in_code
            continue
        if in_code:
            out.append(_html.escape(line))
            continue
        if line.startswith("|"):
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-"} and c for c in cells):
                continue  # separator row
            if not in_table:
                _close_blocks()
                out.append("<table>")
                in_table = True
                tag = "th"
            else:
                tag = "td"
            out.append("<tr>" + "".join(
                f"<{tag}>{_html.escape(c)}</{tag}>" for c in cells) + "</tr>")
            continue
        if line.startswith("#"):
            _close_blocks()
            level = len(line) - len(line.lstrip("#"))
            text = _html.escape(line[level:].strip())
            out.append(f"<h{min(level, 6)}>{text}</h{min(level, 6)}>")
            continue
        if line.startswith("- "):
            if not in_list:
                _close_blocks()
                out.append("<ul>")
                in_list = True
            out.append(f"<li>{_html.escape(line[2:])}</li>")
            continue
        _close_blocks()
        if line:
            out.append(f"<p>{_html.escape(line)}</p>")
    _close_blocks()
    if in_code:
        out.append("</pre>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"
