"""Live campaign health: progress, ETA, and retry/failure accounting.

Folds a campaign's ``events.jsonl`` (:mod:`repro.obs.events`) — and, when
present, its checkpoint ``journal.jsonl`` — into one
:class:`CampaignHealth` verdict.  The stream is append-only across
restarts, so a resumed campaign shows up as multiple *runs*: progress is
judged against the most recent ``campaign.begin`` (whose ``resumed``
count says how many cells were served from the journal), while retries,
timeouts, and failures aggregate over the whole history — a cell that
needed three attempts across two runs is still a flaky cell.

``repro status <dir>`` renders this; ``repro report <dir>`` embeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .events import read_events

__all__ = ["CampaignHealth", "analyze_events", "load_health",
           "render_status"]


@dataclass
class CampaignHealth:
    """One campaign directory's operational verdict."""

    total: int  # cells in the current run (0 = unknown)
    completed: int  # fresh completions in the current run
    resumed: int  # cells served from the checkpoint journal
    failed: int  # cells that exhausted their retry budget
    checkpointed: int  # cells journaled by the current run
    retries: int  # attempts re-queued (all runs)
    timeouts: int  # attempts killed on deadline (all runs)
    runs: int  # campaign.begin count (resumes append)
    finished: bool  # the current run logged campaign.end
    started_at: float = 0.0  # wall-clock of the current run's begin
    last_event_at: float = 0.0
    elapsed: float = 0.0  # s from begin to the last event
    rate: float = 0.0  # fresh completions per second
    eta: float = None  # s to finish remaining cells (None = unknown)
    skipped_lines: int = 0  # torn/corrupt event lines tolerated
    retry_reasons: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)  # {label, reason, ...}

    @property
    def done(self):
        return self.completed + self.resumed + self.failed

    @property
    def remaining(self):
        return max(self.total - self.done, 0)

    @property
    def in_flight(self):
        return not self.finished

    def to_dict(self):
        from dataclasses import asdict

        out = asdict(self)
        out["done"] = self.done
        out["remaining"] = self.remaining
        return out


def analyze_events(records, skipped=0):
    """Fold parsed event records into a :class:`CampaignHealth`."""
    # The current run spans from the last campaign.begin onward.
    begin_idx = 0
    runs = 0
    for i, record in enumerate(records):
        if record["event"] == "campaign.begin":
            runs += 1
            begin_idx = i
    current = records[begin_idx:]

    health = CampaignHealth(
        total=0, completed=0, resumed=0, failed=0, checkpointed=0,
        retries=0, timeouts=0, runs=runs, finished=False,
        skipped_lines=skipped,
    )
    for record in records:
        event = record["event"]
        if event == "cell.retried":
            health.retries += 1
            reason = record.get("reason", "?")
            health.retry_reasons[reason] = \
                health.retry_reasons.get(reason, 0) + 1
        elif event == "cell.timeout":
            health.timeouts += 1
    for record in current:
        event = record["event"]
        t = record.get("t", 0.0)
        health.last_event_at = max(health.last_event_at, t)
        if event == "campaign.begin":
            health.total = record.get("cells", 0)
            health.resumed = record.get("resumed", 0)
            health.started_at = t
        elif event == "cell.completed":
            health.completed += 1
        elif event == "cell.failed":
            health.failed += 1
            health.failures.append({
                "label": record.get("label", "?"),
                "reason": record.get("reason", "?"),
                "attempts": record.get("attempts"),
                "error": record.get("error", ""),
            })
        elif event == "cell.checkpointed":
            health.checkpointed += 1
        elif event == "campaign.end":
            health.finished = True
    health.elapsed = max(health.last_event_at - health.started_at, 0.0)
    if health.completed and health.elapsed > 0:
        health.rate = health.completed / health.elapsed
        if health.total:
            health.eta = health.remaining / health.rate
    return health


def load_health(directory):
    """Read + analyze a campaign directory's event stream."""
    records, skipped = read_events(directory)
    return analyze_events(records, skipped=skipped)


def _fmt_duration(seconds):
    if seconds is None:
        return "?"
    seconds = float(seconds)
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_status(directory):
    """The ``repro status`` report for one campaign directory."""
    directory = Path(directory)
    health = load_health(directory)
    state = "finished" if health.finished else "in-flight"
    lines = [f"campaign status: {directory}  [{state}]"]
    if health.runs > 1:
        lines.append(f"  runs: {health.runs} "
                     f"(resumed {health.runs - 1} time(s))")
    total = health.total or "?"
    pct = (f" ({100.0 * health.done / health.total:.0f}%)"
           if health.total else "")
    lines.append(
        f"  progress: {health.done}/{total}{pct} — "
        f"{health.completed} fresh, {health.resumed} resumed, "
        f"{health.failed} failed"
    )
    if health.checkpointed:
        lines.append(f"  checkpointed: {health.checkpointed} cell(s)")
    lines.append(
        f"  elapsed: {_fmt_duration(health.elapsed)}   "
        f"rate: {health.rate * 60:.1f} cells/min"
        + (f"   ETA: {_fmt_duration(health.eta)}"
           if health.in_flight and health.eta is not None else "")
    )
    if health.retries:
        reasons = ", ".join(f"{reason}={count}" for reason, count
                            in sorted(health.retry_reasons.items()))
        lines.append(f"  retries: {health.retries} ({reasons})")
    for failure in health.failures:
        attempts = (f" after {failure['attempts']} attempt(s)"
                    if failure.get("attempts") else "")
        lines.append(f"  FAILED {failure['label']}: "
                     f"{failure['reason']}{attempts}")
    if health.skipped_lines:
        lines.append(f"  (skipped {health.skipped_lines} torn event "
                     "line(s))")
    journal = directory / "journal.jsonl"
    if journal.is_file():
        from ..runtime import CheckpointJournal

        entries = CheckpointJournal(directory).index()
        lines.append(f"  journal: {len(entries)} cell(s) on disk")
    return "\n".join(lines)
