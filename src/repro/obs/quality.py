"""Control-quality analytics: turn recorded traces into structured KPIs.

Yukta's claim is not just "lower ExD" but "well-behaved under
disturbances": the controllers must settle quickly after setpoint and cap
steps, respect the power cap and thermal envelope, and do it without
thrashing the actuators.  This module consumes the per-step board history
(:class:`~repro.board.board.BoardTrace` arrays — identical whether the
run used the scalar loop, the vectorized fast path, or a
:class:`~repro.board.bank.BoardBank` lane, which is exactly the property
the differential oracles enforce) and emits a :class:`QualityReport` of
control-theoretic verdicts per cell:

* **step response** — settling time and overshoot of the initial
  transient (and of any caller-declared step events), the metrics Cerf et
  al. use to evaluate controllers;
* **cap compliance** — power-cap violation count / total duration / peak
  magnitude / W·s integral, and thermal-envelope exposure in °C·s;
* **actuation churn** — DVFS and hotplug transitions per second (actuator
  wear and the oscillation pathology of Fig. 10);
* **supervisor residency** — seconds per NOMINAL/DEGRADED/RECOVERING
  state when a supervised run's history is supplied;
* **E×D timeline** — the running Energy×Delay product, sampled so a
  report can show *when* efficiency was won or lost.

Everything is plain ``float``/``int``/``dict`` so a report serializes to
JSON verbatim (:meth:`QualityReport.to_json`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = [
    "StepResponse",
    "Exposure",
    "QualityReport",
    "step_response",
    "exposure",
    "transition_count",
    "analyze_trace",
    "analyze_run",
    "analyze_rack",
    "RackQuality",
    "analyze_matrix",
]


@dataclass
class StepResponse:
    """Settling/overshoot verdict for one signal after one step."""

    signal: str
    step_time: float  # s, when the step (or run start) happened
    initial: float  # value at the step
    final: float  # steady-state value (mean of the final window)
    settling_time: float  # s from step until the signal stays in band
    overshoot_pct: float  # peak excursion beyond final, % of step size
    settled: bool  # the signal entered the band and stayed there
    band_pct: float = 5.0


@dataclass
class Exposure:
    """Time spent above a limit, and how far above."""

    limit: float
    violations: int  # rising edges above the limit
    time_above: float  # s
    peak: float  # worst value observed (whether or not above the limit)
    integral: float  # area above the limit (unit·s)


def step_response(times, series, step_time=0.0, band=0.05,
                  final_window=0.25, signal="signal"):
    """Settling time and overshoot of ``series`` after a step.

    The steady-state value is the mean of the trailing ``final_window``
    fraction of the samples; the settling band is ``band`` (default 5 %)
    of the step size (initial→final), with an absolute floor so flat
    signals count as instantly settled.  Settling time is measured from
    ``step_time`` to the *last* sample outside the band.
    """
    times = np.asarray(times, dtype=float)
    series = np.asarray(series, dtype=float)
    if times.size == 0 or series.size != times.size:
        return StepResponse(signal=signal, step_time=float(step_time),
                            initial=0.0, final=0.0, settling_time=0.0,
                            overshoot_pct=0.0, settled=True,
                            band_pct=band * 100.0)
    after = times >= step_time
    if not after.any():
        after = np.ones_like(times, dtype=bool)
    t = times[after]
    y = series[after]
    tail = max(int(round(y.size * final_window)), 1)
    final = float(y[-tail:].mean())
    initial = float(y[0])
    step_size = final - initial
    scale = max(abs(step_size), 0.05 * max(abs(final), 1e-12), 1e-12)
    tol = band * scale
    outside = np.abs(y - final) > tol
    if not outside.any():
        settling = 0.0
        settled = True
    else:
        last_out = int(np.flatnonzero(outside)[-1])
        settled = last_out + 1 < y.size
        settling = float(t[min(last_out + 1, y.size - 1)] - t[0])
    if step_size >= 0:
        peak = float(y.max()) - final
    else:
        peak = final - float(y.min())
    overshoot = max(peak, 0.0) / scale * 100.0
    return StepResponse(
        signal=signal,
        step_time=float(t[0]),
        initial=initial,
        final=final,
        settling_time=settling,
        overshoot_pct=float(overshoot),
        settled=bool(settled),
        band_pct=band * 100.0,
    )


def exposure(series, limit, dt):
    """Violation statistics of ``series`` against an upper ``limit``."""
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        return Exposure(limit=float(limit), violations=0, time_above=0.0,
                        peak=0.0, integral=0.0)
    above = series > limit
    edges = int(np.sum(np.diff(above.astype(np.int8)) == 1))
    if above.size and above[0]:
        edges += 1
    time_above = float(np.sum(above) * dt)
    over = series[above] - limit
    return Exposure(
        limit=float(limit),
        violations=edges,
        time_above=time_above,
        peak=float(series.max()),
        integral=float(over.sum() * dt) if above.any() else 0.0,
    )


def transition_count(series):
    """How many times a knob series changed value step-to-step."""
    series = np.asarray(series, dtype=float)
    if series.size < 2:
        return 0
    return int(np.sum(np.diff(series) != 0))


def _residency(state_history, control_period):
    """Seconds per supervisor state from a ``(time, state)`` history."""
    residency = {}
    for _, state in state_history:
        residency[state] = residency.get(state, 0.0) + control_period
    return residency


def _exd_timeline(times, power_total, dt, points=32):
    """Sampled running Energy×Delay: ``[(t, E(t)·t), ...]``."""
    if times.size == 0:
        return []
    energy = np.cumsum(power_total) * dt
    idx = np.unique(np.linspace(0, times.size - 1, min(points, times.size))
                    .astype(int))
    return [(float(times[i]), float(energy[i] * times[i])) for i in idx]


@dataclass
class QualityReport:
    """Structured control-quality KPIs for one run (JSON-serializable)."""

    scheme: str
    workload: str
    duration: float  # simulated seconds
    samples: int  # trace samples analyzed
    energy: float  # J
    exd: float  # J·s
    completed: bool
    power_cap: Exposure = None  # big-cluster power vs power_limit_big
    thermal: Exposure = None  # die temperature vs temp_limit
    dvfs_transitions: int = 0
    hotplug_transitions: int = 0
    dvfs_per_sec: float = 0.0
    hotplug_per_sec: float = 0.0
    emergency_time: float = 0.0  # s with the TMU firmware throttling
    responses: list = field(default_factory=list)  # StepResponse entries
    residency: dict = field(default_factory=dict)  # state -> seconds
    exd_timeline: list = field(default_factory=list)  # (t, E·D) samples
    notes: dict = field(default_factory=dict)

    def to_dict(self):
        return asdict(self)

    def to_json(self, **kwargs):
        return json.dumps(self.to_dict(), **kwargs)

    def response(self, signal):
        for resp in self.responses:
            if resp.signal == signal:
                return resp
        raise KeyError(signal)

    def render(self):
        lines = [
            f"quality: {self.scheme} / {self.workload}  "
            f"t={self.duration:.1f}s  E={self.energy:.1f}J  "
            f"ExD={self.exd:.0f}"
            + ("" if self.completed else "  [TIMEOUT]"),
        ]
        if self.power_cap is not None:
            lines.append(
                f"  power cap {self.power_cap.limit:.2f}W: "
                f"{self.power_cap.violations} violation(s), "
                f"{self.power_cap.time_above:.2f}s above, "
                f"peak {self.power_cap.peak:.2f}W, "
                f"{self.power_cap.integral:.2f} W·s"
            )
        if self.thermal is not None:
            lines.append(
                f"  thermal {self.thermal.limit:.0f}°C: "
                f"{self.thermal.violations} violation(s), "
                f"{self.thermal.time_above:.2f}s above, "
                f"peak {self.thermal.peak:.1f}°C, "
                f"{self.thermal.integral:.2f} °C·s"
            )
        lines.append(
            f"  churn: {self.dvfs_per_sec:.2f} DVFS/s "
            f"({self.dvfs_transitions}), "
            f"{self.hotplug_per_sec:.2f} hotplug/s "
            f"({self.hotplug_transitions}), "
            f"emergency {self.emergency_time:.2f}s"
        )
        for resp in self.responses:
            verdict = "settled" if resp.settled else "NOT settled"
            lines.append(
                f"  {resp.signal}: {verdict} in {resp.settling_time:.1f}s, "
                f"overshoot {resp.overshoot_pct:.1f}% "
                f"(→ {resp.final:.2f})"
            )
        if self.residency:
            parts = ", ".join(f"{state}={seconds:.1f}s"
                              for state, seconds in sorted(self.residency.items()))
            lines.append(f"  supervisor residency: {parts}")
        return "\n".join(lines)


# Trace signals analyzed for step response by default.
RESPONSE_SIGNALS = ("power_big", "temperature", "bips_total")


def analyze_trace(trace, spec, scheme="?", workload="?", completed=True,
                  supervisor=None, steps=None, energy=None):
    """Build a :class:`QualityReport` from board-trace arrays.

    ``trace`` is the dict :meth:`BoardTrace.as_arrays` returns (lists are
    accepted too).  ``supervisor`` optionally supplies a
    :class:`~repro.core.supervisor.Supervisor` (or its ``state_history``)
    for residency accounting.  ``steps`` optionally declares extra step
    events to analyze as ``(signal_name, step_time)`` pairs — cap steps,
    setpoint moves — in addition to the initial transient.
    """
    trace = {k: np.asarray(v, dtype=float) for k, v in trace.items()}
    times = trace.get("times", np.empty(0))
    n = int(times.size)
    if n >= 2:
        dt = float(np.median(np.diff(times)))
    else:
        dt = float(getattr(spec, "sim_dt", 0.0) or 0.0)
    duration = float(times[-1] - times[0] + dt) if n else 0.0

    power_big = trace.get("power_big", np.empty(0))
    power_little = trace.get("power_little", np.empty(0))
    temperature = trace.get("temperature", np.empty(0))

    if energy is None and power_big.size and power_little.size:
        static = getattr(spec, "board_static_power", 0.0)
        energy = float((power_big + power_little + static).sum() * dt)
    energy = float(energy or 0.0)

    dvfs = (transition_count(trace.get("freq_big", ()))
            + transition_count(trace.get("freq_little", ())))
    hotplug = (transition_count(trace.get("cores_big", ()))
               + transition_count(trace.get("cores_little", ())))
    emergency = trace.get("emergency", np.empty(0))
    emergency_time = float(np.sum(emergency > 0) * dt) if emergency.size else 0.0

    responses = []
    for name in RESPONSE_SIGNALS:
        series = trace.get(name)
        if series is not None and series.size:
            responses.append(step_response(times, series, signal=name))
    for name, step_time in (steps or ()):
        series = trace.get(name)
        if series is not None and series.size:
            responses.append(step_response(
                times, series, step_time=step_time,
                signal=f"{name}@{step_time:g}s"))

    history = getattr(supervisor, "state_history", supervisor) or ()
    residency = _residency(history, getattr(spec, "control_period", 0.0))

    power_total = None
    if power_big.size and power_little.size:
        power_total = (power_big + power_little
                       + getattr(spec, "board_static_power", 0.0))

    return QualityReport(
        scheme=scheme,
        workload=workload,
        duration=duration,
        samples=n,
        energy=energy,
        exd=energy * duration,
        completed=bool(completed),
        power_cap=exposure(power_big, spec.power_limit_big, dt),
        thermal=exposure(temperature, spec.temp_limit, dt),
        dvfs_transitions=dvfs,
        hotplug_transitions=hotplug,
        dvfs_per_sec=dvfs / duration if duration else 0.0,
        hotplug_per_sec=hotplug / duration if duration else 0.0,
        emergency_time=emergency_time,
        responses=responses,
        residency=residency,
        exd_timeline=(_exd_timeline(times, power_total, dt)
                      if power_total is not None else []),
    )


def analyze_run(metrics, spec, supervisor=None, steps=None):
    """A :class:`QualityReport` for one recorded
    :class:`~repro.experiments.metrics.RunMetrics` (needs ``record=True``).
    """
    if not metrics.trace:
        raise ValueError(
            f"run {metrics.scheme}/{metrics.workload} carries no trace; "
            "re-run with record=True"
        )
    report = analyze_trace(
        metrics.trace, spec, scheme=metrics.scheme, workload=metrics.workload,
        completed=metrics.completed, supervisor=supervisor, steps=steps,
    )
    # The runner's energy integral is the ground truth (it includes every
    # step, not just the recorded ones).
    report.energy = float(metrics.energy)
    report.duration = float(metrics.execution_time)
    report.exd = float(metrics.energy * metrics.execution_time)
    report.notes = dict(metrics.notes)
    return report


def analyze_matrix(results, spec):
    """Quality reports for a ``{workload: {scheme: RunMetrics}}`` matrix.

    Cells without a trace (``record=False`` runs) and
    :class:`~repro.runtime.CellFailure` entries are skipped.
    """
    reports = {}
    for workload, per_scheme in results.items():
        row = {}
        for scheme, metrics in per_scheme.items():
            if getattr(metrics, "trace", None):
                row[scheme] = analyze_run(metrics, spec)
        if row:
            reports[workload] = row
    return reports


# ---------------------------------------------------------------------------
# Rack-level KPIs (the third layer)
# ---------------------------------------------------------------------------
@dataclass
class RackQuality:
    """Control-quality KPIs for one rack campaign (JSON-serializable).

    The rack layer's health is judged on four axes: did the facility cap
    hold (``cap_exposure``), did jobs meet their SLAs, how hard did the
    budget distributor work (``budget_churn_per_period`` — W of budget
    moved per rack period, the rack analogue of DVFS churn), and did the
    cooling envelope stay comfortable (``inlet_peak`` vs the derate
    threshold).
    """

    controller: str
    periods: int
    duration: float  # simulated seconds
    energy: float  # J
    exd: float  # J·s
    jobs_admitted: int
    jobs_completed: int
    sla_misses: int
    requeues: int
    cap_exposure: Exposure = None  # true rack power vs effective cap
    inlet_peak: float = 0.0  # °C
    inlet_envelope: Exposure = None  # inlet vs cooling max_inlet
    derate_time: float = 0.0  # s the usable cap sat below the spec cap
    budget_churn_total: float = 0.0  # W moved across all period edges
    budget_churn_per_period: float = 0.0
    rejected_budgets: int = 0
    queue_depth_peak: int = 0
    queue_depth_mean: float = 0.0
    responses: list = field(default_factory=list)  # StepResponse entries
    notes: dict = field(default_factory=dict)

    def to_dict(self):
        return asdict(self)

    def to_json(self, **kwargs):
        return json.dumps(self.to_dict(), **kwargs)

    def render(self):
        lines = [
            f"rack quality: {self.controller}  "
            f"t={self.duration:.1f}s  E={self.energy:.1f}J  "
            f"ExD={self.exd:.0f}",
            f"  jobs: {self.jobs_completed}/{self.jobs_admitted} completed, "
            f"{self.sla_misses} SLA miss(es), {self.requeues} requeue(s)",
        ]
        if self.cap_exposure is not None:
            lines.append(
                f"  cap: {self.cap_exposure.violations} violation(s), "
                f"{self.cap_exposure.time_above:.1f}s above, "
                f"peak {self.cap_exposure.peak:.2f}W, "
                f"{self.cap_exposure.integral:.2f} W·s"
            )
        lines.append(
            f"  budgets: {self.budget_churn_per_period:.2f} W/period churn "
            f"({self.budget_churn_total:.1f} W total), "
            f"{self.rejected_budgets} clamp(s)"
        )
        lines.append(
            f"  cooling: inlet peak {self.inlet_peak:.1f}°C, "
            f"derated {self.derate_time:.1f}s"
        )
        lines.append(
            f"  queue: peak {self.queue_depth_peak}, "
            f"mean {self.queue_depth_mean:.2f}"
        )
        for resp in self.responses:
            verdict = "settled" if resp.settled else "NOT settled"
            lines.append(
                f"  {resp.signal}: {verdict} in {resp.settling_time:.1f}s, "
                f"overshoot {resp.overshoot_pct:.1f}% (→ {resp.final:.2f})"
            )
        return "\n".join(lines)


def analyze_rack(result, spec=None, step_time=None):
    """Build a :class:`RackQuality` from a recorded rack campaign.

    ``result`` is a :class:`~repro.rack.rack.RackRunResult` whose rack
    was constructed with ``record=True``.  ``spec`` defaults to the
    result's controller view; pass the :class:`~repro.rack.spec.RackSpec`
    explicitly when available.  ``step_time`` optionally marks a cap-step
    event to score the rack power's settling response against.
    """
    trace = result.trace
    if trace is None or not trace.times:
        raise ValueError(
            "rack quality analysis needs a recorded trace; "
            "re-run with record=True"
        )
    arrays = trace.as_arrays()
    times = arrays["times"]
    dt = float(times[1] - times[0]) if times.size > 1 else 1.0
    power = arrays["power_true"]
    cap_eff = arrays["cap_eff"]
    cap_nominal = arrays["cap"]
    over = power - cap_eff
    above = over > 0
    edges = int(np.sum(np.diff(above.astype(np.int8)) == 1))
    if above.size and above[0]:
        edges += 1
    cap_exposure = Exposure(
        limit=float(cap_eff[-1]) if cap_eff.size else 0.0,
        violations=edges,
        time_above=float(np.sum(above) * dt),
        peak=float(power.max()) if power.size else 0.0,
        integral=float(over[above].sum() * dt) if above.any() else 0.0,
    )
    inlet = arrays["inlet"]
    max_inlet = None
    if spec is not None:
        max_inlet = spec.cooling.max_inlet
    inlet_env = (exposure(inlet, max_inlet, dt)
                 if max_inlet is not None else None)
    churn = arrays["churn"]
    responses = []
    if step_time is not None:
        # Score the controller's own actuation (the budget total tracking
        # the cap) and the plant power separately: workload phase changes
        # put W-scale disturbances on the power signal that say nothing
        # about the distributor's settling.
        responses.append(step_response(
            times, arrays["budget_total"], step_time=step_time,
            signal="budget_total",
        ))
        responses.append(step_response(
            times, power, step_time=step_time, signal="rack_power",
        ))
    queue = arrays["queue_depth"]
    return RackQuality(
        controller=result.controller,
        periods=result.periods,
        duration=result.elapsed,
        energy=result.energy,
        exd=result.exd,
        jobs_admitted=result.jobs_admitted,
        jobs_completed=result.jobs_completed,
        sla_misses=result.sla_misses,
        requeues=result.requeues,
        cap_exposure=cap_exposure,
        inlet_peak=float(inlet.max()) if inlet.size else 0.0,
        inlet_envelope=inlet_env,
        derate_time=float(np.sum(cap_eff < cap_nominal - 1e-12) * dt),
        budget_churn_total=float(churn.sum()),
        budget_churn_per_period=float(churn.mean()) if churn.size else 0.0,
        rejected_budgets=result.rejected_budgets,
        queue_depth_peak=int(queue.max()) if queue.size else 0,
        queue_depth_mean=float(queue.mean()) if queue.size else 0.0,
        responses=responses,
        notes=dict(result.controller_info),
    )
