"""Observability analytics: quality KPIs, phase profiling, campaign health.

``repro.obs`` turns the raw artifacts the telemetry substrate records —
board traces, span streams, metrics snapshots, checkpoint journals —
into *verdicts*:

* :mod:`~repro.obs.quality` — control-theoretic KPIs (settling time,
  overshoot, cap-violation exposure, actuation churn, supervisor
  residency, E×D timeline) as JSON-serializable
  :class:`~repro.obs.quality.QualityReport` objects, computed from any
  recorded trace — scalar, fastpath, or bank lane alike;
* :mod:`~repro.obs.profiler` — a sampling per-phase profiler of the
  control period (sensing / controller / optimizer / actuation /
  plant_step / telemetry) exporting p50/p90/p99 summaries through the
  metrics registry;
* :mod:`~repro.obs.events` / :mod:`~repro.obs.health` — the structured
  campaign event stream (``events.jsonl``) and its progress / ETA /
  retry / failure analysis, behind ``repro status``;
* :mod:`~repro.obs.report` — the combined markdown/HTML campaign report
  behind ``repro report``.

Everything here is read-side or behind the same is-``None`` fast path as
telemetry: with no session and no checkpoint directory, nothing is
computed, written, or changed.
"""

from .events import CampaignEvents, events_path, read_events
from .health import CampaignHealth, analyze_events, load_health, render_status
from .profiler import PhaseProfiler, phase_summary
from .quality import (
    Exposure,
    QualityReport,
    RackQuality,
    StepResponse,
    analyze_matrix,
    analyze_rack,
    analyze_run,
    analyze_trace,
    exposure,
    step_response,
    transition_count,
)
from .report import build_report, to_html

__all__ = [
    "CampaignEvents",
    "CampaignHealth",
    "Exposure",
    "PhaseProfiler",
    "QualityReport",
    "RackQuality",
    "StepResponse",
    "analyze_events",
    "analyze_matrix",
    "analyze_rack",
    "analyze_run",
    "analyze_trace",
    "build_report",
    "events_path",
    "exposure",
    "load_health",
    "phase_summary",
    "read_events",
    "render_status",
    "step_response",
    "to_html",
    "transition_count",
]
