"""Structured campaign event stream: ``events.jsonl``.

Long checkpointed campaigns (``repro.runtime``) run for hours and die in
interesting ways; the journal makes them resumable, but "how is it
going?" needed an artifact of its own.  The engine and the supervised
executor emit one JSON object per line — campaign begin/end, cell
started / completed / resumed / retried / timed-out / failed /
checkpointed — into ``events.jsonl`` next to the checkpoint journal (or
the telemetry directory when no journal is active).  ``repro status``
and ``repro report`` read the stream back for progress, ETA, and
retry/failure health, for finished *and* in-flight campaigns.

Design rules:

* **single writer** — only the campaign parent process appends (workers
  report through their pipes), so lines never interleave;
* **append-only, flushed per event** — a reader polling a live campaign
  sees every completed line; a killed run leaves at most one torn tail
  line, which :func:`read_events` skips with a count (same contract as
  the checkpoint journal);
* **never fatal** — emission failures (disk full, permissions) are
  swallowed: observability must not take the campaign down.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["CampaignEvents", "read_events", "events_path", "EVENTS_FILENAME"]

EVENTS_FILENAME = "events.jsonl"


def events_path(directory):
    """The event-stream path inside a campaign/telemetry directory."""
    return Path(directory) / EVENTS_FILENAME


class CampaignEvents:
    """Append-only JSONL event writer for one campaign directory."""

    def __init__(self, path):
        self.path = Path(path)
        self._fh = None
        self.emitted = 0
        self.failed = False  # a write failed; stop trying, keep running

    def emit(self, event, **fields):
        """Append one event line (wall-clock stamped, flushed)."""
        if self.failed:
            return
        record = {"event": event, "t": round(time.time(), 3)}
        record.update(fields)
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a")
            self._fh.write(json.dumps(record) + "\n")
            self._fh.flush()
        except (OSError, TypeError, ValueError):
            self.failed = True
            return
        self.emitted += 1

    def close(self):
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def read_events(source):
    """Parse an event stream; returns ``(records, skipped)``.

    ``source`` is an ``events.jsonl`` path or a directory containing one.
    Torn or corrupt lines — the tail a SIGKILLed campaign leaves behind —
    are counted in ``skipped`` instead of raising, so a live or crashed
    campaign is always readable.
    """
    path = Path(source)
    if path.is_dir():
        path = path / EVENTS_FILENAME
    records = []
    skipped = 0
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if isinstance(record, dict) and "event" in record:
                    records.append(record)
                else:
                    skipped += 1
    except OSError:
        raise FileNotFoundError(f"no campaign event stream at {path}")
    return records, skipped
