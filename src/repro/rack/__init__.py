"""repro.rack: the third Yukta layer — a facility controller over boards.

Public surface:

* :mod:`repro.rack.spec` — :class:`RackSpec` and friends (the plant);
* :mod:`repro.rack.layer` — the declared rack-layer interface;
* :mod:`repro.rack.controllers` — SSV and heuristic cap distributors
  plus the per-board budget governor;
* :mod:`repro.rack.rack` — the :class:`Rack` runtime loop.
"""

from .controllers import (
    BoardReading,
    BudgetGovernor,
    HeuristicRackController,
    SSVRackController,
    select_integral_gain,
)
from .layer import BUDGET_QUANTUM, rack_layer_spec
from .rack import (
    Rack,
    RackJob,
    RackRunResult,
    RackTrace,
    instantiate_job_workload,
)
from .spec import (
    CoolingSpec,
    JobSpec,
    RackBoardFault,
    RackSpec,
    default_rack_spec,
    heterogeneous_rack_spec,
)

__all__ = [
    "BUDGET_QUANTUM",
    "BoardReading",
    "BudgetGovernor",
    "CoolingSpec",
    "HeuristicRackController",
    "JobSpec",
    "Rack",
    "RackBoardFault",
    "RackJob",
    "RackRunResult",
    "RackSpec",
    "RackTrace",
    "SSVRackController",
    "default_rack_spec",
    "heterogeneous_rack_spec",
    "instantiate_job_workload",
    "rack_layer_spec",
    "select_integral_gain",
]
