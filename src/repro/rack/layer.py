"""The rack layer's interface declaration, in the paper's Table II/III form.

The Yukta methodology asks every layer to *declare* its interface before
any modelling happens: the inputs it actuates (with quantization and
weights), the outputs it monitors (with deviation-bound fractions), the
external signals it imports from neighbouring layers, and an uncertainty
guardband.  :func:`rack_layer_spec` is that declaration for the third
(facility) layer:

* **inputs** — one power budget per board, quantized to the budget grid
  the distribution controller actuates on;
* **outputs** — the three declared per-board sensors the controller is
  allowed to read (power, headroom, queue depth) plus the rack-level
  total power it regulates;
* **externals** — the cooling plant's inlet temperature (imported from
  the facility, exactly like the board layers import each other's knobs).

Board layers below import ``budget_<i>`` as an external signal — the
per-board budget governor tracks it with DVFS — so the stack composes the
same way the paper's hardware and software layers do, one level up.
"""

from __future__ import annotations

from ..core.layer import LayerSpec
from ..signals import ExternalSignal, InputSignal, OutputSignal, QuantizedRange
from .spec import RackSpec

__all__ = ["BUDGET_QUANTUM", "rack_layer_spec"]

# Budgets are actuated on a 50 mW grid: fine enough that quantization is
# far below the sensor noise floor, coarse enough to declare honestly as
# an input level set.
BUDGET_QUANTUM = 0.05


def rack_layer_spec(rack: RackSpec, guardband=0.4) -> LayerSpec:
    """The facility layer's declaration for one rack."""
    inputs = []
    outputs = []
    for i, board in enumerate(rack.boards):
        ceiling = (board.power_limit_big + board.power_limit_little
                   + board.board_static_power)
        inputs.append(InputSignal(
            f"budget_{i}",
            QuantizedRange(rack.budget_floor, ceiling, step=BUDGET_QUANTUM),
            weight=1.0,
            unit="W",
        ))
        outputs.append(OutputSignal(
            f"power_{i}", 0.10, value_range=ceiling, critical=True, unit="W",
        ))
        outputs.append(OutputSignal(
            f"headroom_{i}", 0.20, value_range=ceiling, critical=False,
            unit="W",
        ))
        outputs.append(OutputSignal(
            f"queue_depth_{i}", 0.20, value_range=16.0, critical=False,
            unit="jobs",
        ))
    outputs.append(OutputSignal(
        "power_total", 0.10, value_range=rack.power_cap, critical=True,
        enforce_as_limit=True, unit="W",
    ))
    externals = [
        ExternalSignal(
            "inlet_temp", "facility",
            allowed=QuantizedRange(rack.cooling.supply_temp,
                                   rack.cooling.max_inlet + 20.0, step=0.1),
        ),
    ]
    return LayerSpec(
        name="rack",
        goal=(
            f"distribute <= {rack.power_cap:.1f} W across "
            f"{rack.n_boards} boards to minimize SLA misses subject to the "
            "cooling envelope"
        ),
        inputs=inputs,
        outputs=outputs,
        externals=externals,
        guardband=float(guardband),
    )
