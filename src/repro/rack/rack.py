"""The rack runtime: a third control layer over a bank of boards.

:class:`Rack` composes the facility plant declared by a
:class:`~repro.rack.spec.RackSpec` — N boards, one power cap, a cooling
envelope, a job arrival queue — with a rack-layer controller
(:class:`~repro.rack.controllers.SSVRackController` or the heuristic
baseline) and the per-board budget governors underneath.

Control-loop shape (one rack period)
------------------------------------
1. fault schedule edges (boards drop offline / sensors drop out);
2. job admission (arrivals enter the queue) and dispatch (idle online
   boards take the queue head);
3. declared sensing: per-board power / headroom / queue depth;
4. cooling state update and cap derate (the envelope);
5. rack controller: budgets from declared sensors, floors and cap
   enforced;
6. budget governors: each board turns its budget into one DVFS pair;
7. plant stepping: every busy board advances ``rack_period`` worth of
   board control periods — through the :class:`~repro.board.bank.
   BoardBank` fused-schedule kernel grouped by (spec, command), or
   board-by-board on the scalar reference path (``use_bank=False``);
8. job completion + SLA accounting, trace row, invariant checks.

Exactness contract
------------------
``use_bank=True`` and ``use_bank=False`` produce bit-identical rack
traces and board states: the bank's schedule kernel is bit-exact versus
scalar stepping (PR 8 contract), every rack-layer computation is plain
float arithmetic over identical readings, and dispatch order is
deterministic.  The ``rack-bank-vs-scalar`` oracle in ``repro verify``
holds this at 0 ULP.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field, replace

import numpy as np

from ..board import Board, BoardBank
from ..board.specs import BIG, LITTLE
from ..faults.hooks import SensorFault
from ..workloads import Application
from .controllers import BoardReading, BudgetGovernor, SSVRackController
from .spec import RackSpec

__all__ = [
    "Rack",
    "RackJob",
    "RackRunResult",
    "RackTrace",
    "instantiate_job_workload",
]


def instantiate_job_workload(workload):
    """Resolve a job workload name into fresh Application instances.

    Accepts every program/mix name the workload library knows, plus an
    optional ``@<scale>`` suffix (e.g. ``"blackscholes@0.1"``) that
    scales each phase's instruction budget — rack job streams want runs
    of tens of seconds, not the paper's full 120-250 s programs.
    """
    name, _, scale_text = workload.partition("@")
    from ..experiments.runner import instantiate_workload

    apps = instantiate_workload(name)
    if scale_text:
        scale = float(scale_text)
        if not (scale > 0):
            raise ValueError(f"workload scale must be positive: {workload!r}")
        apps = [
            Application(
                app.name,
                [replace(ph, instructions=ph.instructions * scale)
                 for ph in app.phases],
            )
            for app in apps
        ]
    return apps


@dataclass
class RackJob:
    """Runtime state of one queued/running/completed job."""

    spec: object  # JobSpec
    state: str = "queued"  # queued | running | completed
    board: int = None
    apps: list = None
    dispatched_at: float = None
    completed_at: float = None
    requeues: int = 0

    @property
    def missed_sla(self):
        if self.completed_at is None:
            return False
        return self.completed_at > self.spec.deadline + 1e-9


@dataclass
class RackTrace:
    """Per-rack-period history of the facility loop."""

    times: list = field(default_factory=list)
    cap: list = field(default_factory=list)
    cap_eff: list = field(default_factory=list)
    inlet: list = field(default_factory=list)
    power_declared: list = field(default_factory=list)  # controller's view
    power_true: list = field(default_factory=list)  # energy-derived mean
    budget_total: list = field(default_factory=list)
    budgets: list = field(default_factory=list)  # per-board rows
    board_power: list = field(default_factory=list)  # per-board true rows
    queue_depth: list = field(default_factory=list)
    running: list = field(default_factory=list)
    completed: list = field(default_factory=list)
    sla_misses: list = field(default_factory=list)
    churn: list = field(default_factory=list)  # sum |delta budget| this edge
    online: list = field(default_factory=list)  # online board count

    def as_arrays(self):
        out = {}
        for name in ("times", "cap", "cap_eff", "inlet", "power_declared",
                     "power_true", "budget_total", "queue_depth", "running",
                     "completed", "sla_misses", "churn", "online"):
            out[name] = np.asarray(getattr(self, name), dtype=float)
        out["budgets"] = np.asarray(self.budgets, dtype=float)
        out["board_power"] = np.asarray(self.board_power, dtype=float)
        return out


@dataclass
class RackRunResult:
    """Outcome of one rack campaign."""

    controller: str
    periods: int
    elapsed: float  # simulated seconds the loop covered
    energy: float
    makespan: float  # completion time of the last finished job (0 if none)
    jobs_admitted: int
    jobs_completed: int
    jobs_unfinished: int
    sla_misses: int
    requeues: int
    rejected_budgets: int
    trace: RackTrace
    jobs: list
    bank_counters: dict = None
    controller_info: dict = field(default_factory=dict)
    board_energy: tuple = ()
    board_time: tuple = ()
    step_wall: float = 0.0  # wall seconds inside plant stepping
    loop_wall: float = 0.0  # wall seconds for the whole rack loop

    @property
    def exd(self):
        """The rack-level energy x delay product (J x s)."""
        horizon = self.makespan if self.makespan > 0 else self.elapsed
        return self.energy * horizon

    def summary(self):
        return (
            f"{self.controller}: {self.jobs_completed}/{self.jobs_admitted} "
            f"jobs, {self.sla_misses} SLA miss(es), "
            f"E={self.energy:.1f} J, makespan={self.makespan:.1f} s, "
            f"ExD={self.exd:.0f}"
        )


class Rack:
    """N boards, one cap, one queue — and a third-layer controller."""

    def __init__(self, spec: RackSpec, controller=None, use_bank=True,
                 record=False, record_boards=False, seed=0, telemetry=None):
        self.spec = spec
        self.seed = int(seed)
        self.controller = (controller if controller is not None
                           else SSVRackController(spec))
        self.use_bank = bool(use_bank)
        self.record = bool(record)
        if telemetry is None:
            from ..telemetry import active_session

            telemetry = active_session()
        self.telemetry = telemetry
        self.boards = [
            Board([], spec=bs, seed=self.seed + i, record=record_boards,
                  telemetry=telemetry)
            for i, bs in enumerate(spec.boards)
        ]
        self.bank = (BoardBank(self.boards, telemetry=telemetry)
                     if self.use_bank else None)
        self.governors = [BudgetGovernor(bs) for bs in spec.boards]
        self.jobs = [RackJob(spec=j) for j in sorted(
            spec.jobs, key=lambda j: (j.arrival, j.name)
        )]
        self.queue = []  # admitted, undispatched RackJobs (FIFO)
        self._admitted = 0
        self._job_on_board = [None] * spec.n_boards
        self._online = [True] * spec.n_boards
        self._sensor_reverters = {}
        self._last_energy = [0.0] * spec.n_boards
        self.inlet_temp = spec.cooling.supply_temp
        self.time = 0.0
        self.trace = RackTrace() if record else None
        self._last_budgets = list(self.controller.budgets)
        # Wall-clock split, filled by run(): plant stepping vs everything
        # else (sensing, control, dispatch, bookkeeping).  The rack
        # benchmark holds the ratio down.
        self.step_wall = 0.0
        self.loop_wall = 0.0

    # ------------------------------------------------------------------
    # Fault schedule
    # ------------------------------------------------------------------
    def _update_faults(self, now):
        for fault in self.spec.faults:
            active = fault.active_at(now)
            i = fault.board
            if fault.kind == "offline":
                if active and self._online[i]:
                    self._take_offline(i)
                elif not active and not self._online[i]:
                    self._online[i] = True
            else:  # power-sensor dropout
                installed = fault in self._sensor_reverters
                if active and not installed:
                    sensor = self.boards[i].power_sensors[BIG]
                    previous = sensor.fault_hook
                    sensor.fault_hook = SensorFault("dropout")
                    self._sensor_reverters[fault] = (sensor, previous)
                elif not active and installed:
                    sensor, previous = self._sensor_reverters.pop(fault)
                    sensor.fault_hook = previous

    def _take_offline(self, i):
        """Drop a board: requeue its job, reclaim its budget."""
        self._online[i] = False
        job = self._job_on_board[i]
        if job is not None:
            board = self.boards[i]
            # Abandon the half-run applications (restart-from-scratch
            # semantics) and retire the lane's cached plans.
            for app in job.apps:
                if app in board.applications:
                    board.applications.remove(app)
            if self.bank is not None:
                self.bank.invalidate_board(i)
            job.state = "queued"
            job.board = None
            job.apps = None
            job.requeues += 1
            self._job_on_board[i] = None
            self.queue.insert(0, job)

    # ------------------------------------------------------------------
    # Queue admission and dispatch
    # ------------------------------------------------------------------
    def _admit(self, now):
        for job in self.jobs:
            if job.state == "queued" and job.board is None \
                    and job not in self.queue and job.dispatched_at is None \
                    and job.requeues == 0 and job.spec.arrival <= now + 1e-9:
                self.queue.append(job)
                self._admitted += 1

    def _dispatch(self, now):
        if not self.queue:
            return
        for i, board in enumerate(self.boards):
            if not self.queue:
                break
            if not self._online[i] or self._job_on_board[i] is not None:
                continue
            if not board.done:
                continue  # residual foreign work; never co-schedule
            job = self.queue.pop(0)
            apps = instantiate_job_workload(job.spec.workload)
            board.applications.extend(apps)
            if self.bank is not None:
                self.bank.invalidate_board(i)
            job.apps = apps
            job.board = i
            job.state = "running"
            job.dispatched_at = now
            self._job_on_board[i] = job

    def _complete(self, now_end):
        for i, job in enumerate(self._job_on_board):
            if job is None:
                continue
            if all(app.done for app in job.apps):
                job.state = "completed"
                job.completed_at = now_end
                self._job_on_board[i] = None

    # ------------------------------------------------------------------
    # Declared sensing and the cooling envelope
    # ------------------------------------------------------------------
    def _read(self):
        readings = []
        depth = len(self.queue)
        for i, board in enumerate(self.boards):
            if not self._online[i]:
                readings.append(BoardReading(
                    power=0.0, headroom=0.0, queue_depth=0, online=False,
                ))
                continue
            power = (board.read_power(BIG) + board.read_power(LITTLE)
                     + board.spec.board_static_power)
            budget = self.controller.budgets[i]
            headroom = budget - power if math.isfinite(power) else math.nan
            readings.append(BoardReading(
                power=power,
                headroom=headroom,
                queue_depth=depth,
                online=True,
                busy=self._job_on_board[i] is not None,
            ))
        return readings

    def _update_cooling(self, readings):
        total = sum(r.power for r in readings if r.trusted)
        cooling = self.spec.cooling
        alpha = min(self.spec.rack_period / cooling.tau, 1.0)
        target = cooling.steady_inlet(total)
        self.inlet_temp = self.inlet_temp + alpha * (target - self.inlet_temp)

    def _effective_cap(self, cap):
        derated = cap * self.spec.cooling.derate_fraction(self.inlet_temp)
        return max(derated, self.spec.min_cap())

    # ------------------------------------------------------------------
    # Plant stepping
    # ------------------------------------------------------------------
    def _advance(self, commands):
        """Advance every busy online board one rack period.

        ``commands`` maps board index -> (freq_big, freq_little), held
        constant for the whole rack period.  Banked stepping groups lanes
        by (spec identity, command, health) so each group rides the fused
        schedule kernel; the scalar path replays the identical per-period
        actuate-then-step sequence board by board.
        """
        lanes = [i for i, cmd in commands.items()
                 if self._online[i] and not self.boards[i].done]
        if not lanes:
            return
        t0 = _time.perf_counter()
        try:
            self._advance_lanes(lanes, commands)
        finally:
            self.step_wall += _time.perf_counter() - t0

    def _advance_lanes(self, lanes, commands):
        if self.bank is None:
            for i in lanes:
                fb, fl = commands[i]
                board = self.boards[i]
                steps = board.spec.period_steps()
                for _ in range(self.spec.board_periods(i)):
                    board.set_cluster_frequency(BIG, fb)
                    board.set_cluster_frequency(LITTLE, fl)
                    board.run_period(steps)
                    if board.done:
                        break
            return
        groups = {}
        for i in lanes:
            board = self.boards[i]
            faulted = (
                board.fault_hooks is not None
                or board.temp_sensor.fault_hook is not None
                or any(s.fault_hook is not None
                       for s in board.power_sensors.values())
            )
            key = (id(board.spec), faulted and i)
            groups.setdefault(key, []).append(i)
        for _key, members in sorted(groups.items(),
                                    key=lambda kv: kv[1][0]):
            periods = self.spec.board_periods(members[0])
            shared = {commands[i] for i in members}
            if len(shared) == 1:
                # Whole group on one command: the fused schedule kernel
                # compiles the full rack period in one resident pass.
                fb, fl = shared.pop()
                self.bank.run_schedule_bank(
                    [fb] * periods, [fl] * periods, only=members,
                    block_periods=periods,
                )
                continue
            # Divergent budgets: one actuate-then-step pass per board
            # period, all lanes of the group advancing together.  Per-lane
            # commands are per-lane board state, so the bank's per-period
            # vector path still batches the group; the fused kernel can't
            # (it broadcasts one command across the selection, and rack
            # budgets are exactly what makes commands diverge).
            steps = self.boards[members[0]].spec.period_steps()
            active = members
            for _ in range(periods):
                for i in active:
                    fb, fl = commands[i]
                    self.boards[i].set_cluster_frequency(BIG, fb)
                    self.boards[i].set_cluster_frequency(LITTLE, fl)
                self.bank.run_period_bank(steps, only=active)
                active = [i for i in active if not self.boards[i].done]
                if not active:
                    break

    # ------------------------------------------------------------------
    # The campaign loop
    # ------------------------------------------------------------------
    def run(self, max_time=120.0, cap_schedule=None):
        """Run the rack loop for ``max_time`` simulated seconds.

        ``cap_schedule`` is an optional sorted list of ``(time, cap)``
        pairs overriding the spec cap from each time onward — the cap
        step-response experiment's knob.  Stops early once every admitted
        job has completed and no arrivals remain.
        """
        from ..verify.invariants import active_monitor

        spec = self.spec
        rp = spec.rack_period
        periods = max(int(round(max_time / rp)), 1)
        monitor = active_monitor()
        last_arrival = max((j.spec.arrival for j in self.jobs), default=0.0)
        completed_cum = 0
        sla_cum = 0
        t_loop = _time.perf_counter()
        for p in range(periods):
            now = p * rp
            cap = spec.power_cap
            if cap_schedule:
                for t, value in cap_schedule:
                    if t <= now + 1e-9:
                        cap = value
            self._update_faults(now)
            self._admit(now)
            self._dispatch(now)
            readings = self._read()
            self._update_cooling(readings)
            cap_eff = self._effective_cap(cap)
            budgets = self.controller.step(readings, cap_eff)
            commands = {}
            for i, board in enumerate(self.boards):
                if not self._online[i] or self._job_on_board[i] is None:
                    continue
                commands[i] = self.governors[i].command(
                    budgets[i], readings[i].power
                )
            if monitor is not None:
                running = sum(1 for j in self._job_on_board if j is not None)
                done_jobs = sum(1 for j in self.jobs
                                if j.state == "completed")
                monitor.check_rack(
                    time=now,
                    budgets=budgets,
                    floors=spec.floors(),
                    cap=cap_eff,
                    online=list(self._online),
                    admitted=self._admitted,
                    queued=len(self.queue),
                    running=running,
                    completed=done_jobs,
                )
            energy_before = [b.energy for b in self.boards]
            self._advance(commands)
            now_end = now + rp
            self.time = now_end
            self._complete(now_end)
            completed_cum = sum(1 for j in self.jobs
                                if j.state == "completed")
            sla_cum = sum(1 for j in self.jobs if j.missed_sla)
            if self.trace is not None:
                board_power = [
                    (b.energy - e0) / rp
                    for b, e0 in zip(self.boards, energy_before)
                ]
                churn = sum(abs(b - lb) for b, lb in
                            zip(budgets, self._last_budgets))
                self.trace.times.append(now)
                self.trace.cap.append(cap)
                self.trace.cap_eff.append(cap_eff)
                self.trace.inlet.append(self.inlet_temp)
                self.trace.power_declared.append(sum(
                    r.power for r in readings if r.trusted
                ))
                self.trace.power_true.append(sum(board_power))
                self.trace.budget_total.append(sum(budgets))
                self.trace.budgets.append(list(budgets))
                self.trace.board_power.append(board_power)
                self.trace.queue_depth.append(len(self.queue))
                self.trace.running.append(sum(
                    1 for j in self._job_on_board if j is not None
                ))
                self.trace.completed.append(completed_cum)
                self.trace.sla_misses.append(sla_cum)
                self.trace.churn.append(churn)
                self.trace.online.append(sum(self._online))
            self._last_budgets = list(budgets)
            if (
                self.jobs
                and now_end >= last_arrival
                and not self.queue
                and all(j is None for j in self._job_on_board)
                and all(job.state != "queued" for job in self.jobs)
            ):
                periods = p + 1
                break
        self.loop_wall += _time.perf_counter() - t_loop
        return self._result(periods)

    def _result(self, periods):
        completed = [j for j in self.jobs if j.state == "completed"]
        makespan = max((j.completed_at for j in completed), default=0.0)
        info = {}
        controller = self.controller
        if hasattr(controller, "gain"):
            info["gain"] = controller.gain
        if hasattr(controller, "mu_peak"):
            info["mu_peak"] = controller.mu_peak
        return RackRunResult(
            controller=getattr(controller, "name", type(controller).__name__),
            periods=periods,
            elapsed=periods * self.spec.rack_period,
            energy=sum(b.energy for b in self.boards),
            makespan=makespan,
            jobs_admitted=self._admitted,
            jobs_completed=len(completed),
            jobs_unfinished=self._admitted - len(completed),
            sla_misses=sum(1 for j in self.jobs if j.missed_sla),
            requeues=sum(j.requeues for j in self.jobs),
            rejected_budgets=controller.rejected_budgets,
            trace=self.trace,
            jobs=list(self.jobs),
            bank_counters=(self.bank.counters()
                           if self.bank is not None else None),
            controller_info=info,
            board_energy=tuple(b.energy for b in self.boards),
            board_time=tuple(b.time for b in self.boards),
            step_wall=self.step_wall,
            loop_wall=self.loop_wall,
        )
