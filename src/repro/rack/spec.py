"""Rack-level specifications: the third layer's plant declaration.

A :class:`RackSpec` describes everything above a single board: the set of
(possibly heterogeneous) :class:`~repro.board.specs.BoardSpec`\\ s populating
the rack, the shared facility power cap, the cooling envelope that couples
total rack power back into the inlet temperature, the workload arrival
queue with per-job SLA deadlines, and any scheduled board-level faults.

The composition shape follows ControlPULP's hierarchical power-control
architecture and RackMind-style facility orchestration (see PAPERS.md /
SNIPPETS.md): the rack layer owns *budgets*, never board internals — each
board stays governed by its own stack and merely receives a power budget
as an external signal each rack control period.

Modeling notes
--------------
* **Cooling coupling.** The inlet temperature follows a first-order lag
  toward ``supply_temp + thermal_resistance * P_total``.  Inlet heat does
  not rewrite each board's die-level ambient (the bank snapshots thermal
  constants at construction, and the paper's board thermal model is
  calibrated against its own ambient); instead the *usable* rack cap
  derates linearly once the inlet exceeds ``max_inlet`` — the facility's
  cooling envelope acting on the one knob the rack layer owns.
* **Idle boards are power-gated.** A board with no dispatched job does
  not advance and draws no energy; its budget contribution is its floor
  (kept warm for dispatch latency) while online.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..board.specs import BoardSpec, default_xu3_spec

__all__ = [
    "CoolingSpec",
    "JobSpec",
    "RackBoardFault",
    "RackSpec",
    "default_rack_spec",
    "heterogeneous_rack_spec",
]


@dataclass(frozen=True)
class CoolingSpec:
    """The rack's cooling envelope and inlet-temperature coupling.

    ``thermal_resistance`` (degC/W) maps sustained total rack power into
    steady-state inlet temperature rise over ``supply_temp``; ``tau`` (s)
    is the air-volume time constant of that rise.  Above ``max_inlet``
    the usable rack cap derates by ``derate_per_degree`` (fraction/degC),
    floored so the cap never drops below the sum of board budget floors.
    """

    supply_temp: float = 22.0
    thermal_resistance: float = 0.15
    tau: float = 8.0
    max_inlet: float = 32.0
    derate_per_degree: float = 0.05

    def __post_init__(self):
        if self.thermal_resistance < 0:
            raise ValueError("cooling thermal_resistance must be >= 0")
        if self.tau <= 0:
            raise ValueError("cooling tau must be positive")
        if self.derate_per_degree < 0:
            raise ValueError("derate_per_degree must be >= 0")

    def steady_inlet(self, total_power):
        return self.supply_temp + self.thermal_resistance * total_power

    def derate_fraction(self, inlet_temp):
        """Usable fraction of the rack cap at one inlet temperature."""
        excess = max(inlet_temp - self.max_inlet, 0.0)
        return max(1.0 - self.derate_per_degree * excess, 0.0)


@dataclass(frozen=True)
class JobSpec:
    """One queued job: a workload with an arrival time and an SLA deadline.

    ``workload`` is a program or mix name (resolved through the workload
    library at dispatch); ``sla`` is the relative completion deadline in
    simulated seconds from ``arrival``.
    """

    name: str
    workload: str
    arrival: float = 0.0
    sla: float = 120.0

    def __post_init__(self):
        if self.arrival < 0:
            raise ValueError("job arrival must be >= 0")
        if self.sla <= 0:
            raise ValueError("job SLA deadline must be positive")

    @property
    def deadline(self):
        return self.arrival + self.sla


@dataclass(frozen=True)
class RackBoardFault:
    """A scheduled board-level fault visible at rack scale.

    Kinds
    -----
    ``"offline"``
        The board drops from the rack at ``start``: its running job is
        re-queued (restarted elsewhere from scratch), its budget is
        reclaimed, and no work is dispatched to it until ``start +
        duration``.
    ``"power-sensor"``
        The board's big-cluster power sensor drops out (reads NaN).  The
        board keeps running, but its declared power reading goes
        non-finite, so a sane rack controller must stop trusting it and
        pin its budget to the floor until readings return.
    """

    board: int
    start: float
    duration: float = math.inf
    kind: str = "offline"

    KINDS = ("offline", "power-sensor")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown rack fault kind {self.kind!r}; known: {self.KINDS}"
            )
        if self.board < 0:
            raise ValueError("fault board index must be >= 0")
        if self.start < 0 or self.duration <= 0:
            raise ValueError("fault start must be >= 0 and duration > 0")

    def active_at(self, now):
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class RackSpec:
    """N boards under one facility power cap and cooling envelope.

    ``boards`` may mix different :class:`BoardSpec`\\ s (heterogeneous
    rack) as long as every spec shares one ``sim_dt`` (the bank's
    lockstep requirement) and every board control period divides the
    rack control period — the rack layer actuates budgets strictly on
    board-period boundaries.
    """

    boards: tuple
    power_cap: float = 12.0
    rack_period: float = 2.0
    budget_floor: float = 0.6
    cooling: CoolingSpec = field(default_factory=CoolingSpec)
    jobs: tuple = ()
    faults: tuple = ()

    def __post_init__(self):
        boards = tuple(self.boards)
        object.__setattr__(self, "boards", boards)
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(self, "faults", tuple(self.faults))
        if not boards:
            raise ValueError("a RackSpec needs at least one board")
        for b in boards:
            if not isinstance(b, BoardSpec):
                raise TypeError(f"boards must be BoardSpec instances, got {b!r}")
        dts = {b.sim_dt for b in boards}
        if len(dts) != 1:
            raise ValueError(
                f"rack lockstep requires one shared sim_dt, got {sorted(dts)}"
            )
        if self.rack_period <= 0:
            raise ValueError("rack_period must be positive")
        for i, b in enumerate(boards):
            ratio = self.rack_period / b.control_period
            if abs(ratio - round(ratio)) > 1e-6 or round(ratio) < 1:
                raise ValueError(
                    f"board {i}: control period {b.control_period} s must "
                    f"divide the rack period {self.rack_period} s"
                )
        if self.budget_floor < 0:
            raise ValueError("budget_floor must be >= 0")
        if self.power_cap < self.budget_floor * len(boards):
            raise ValueError(
                f"power cap {self.power_cap} W cannot cover "
                f"{len(boards)} x {self.budget_floor} W budget floors"
            )
        for fault in self.faults:
            if fault.board >= len(boards):
                raise ValueError(
                    f"fault targets board {fault.board} but the rack has "
                    f"only {len(boards)} boards"
                )

    @property
    def n_boards(self):
        return len(self.boards)

    def floors(self):
        """Per-board declared budget floors (W)."""
        return tuple(self.budget_floor for _ in self.boards)

    def board_periods(self, index):
        """Board control periods per rack control period for one board."""
        return int(round(self.rack_period / self.boards[index].control_period))

    def min_cap(self):
        """The lowest usable cap the cooling derate may produce."""
        return self.budget_floor * len(self.boards)

    def describe(self):
        kinds = {}
        for b in self.boards:
            key = (b.big.name, b.big.n_cores, b.control_period)
            kinds[key] = kinds.get(key, 0) + 1
        lines = [
            f"Rack: {self.n_boards} board(s), cap {self.power_cap:.2f} W, "
            f"rack period {self.rack_period:.2f} s, "
            f"floor {self.budget_floor:.2f} W/board",
            f"  cooling: supply {self.cooling.supply_temp:.1f} degC, "
            f"{self.cooling.thermal_resistance:.3f} degC/W, "
            f"envelope {self.cooling.max_inlet:.1f} degC",
            f"  jobs queued: {len(self.jobs)}, faults scheduled: "
            f"{len(self.faults)}",
        ]
        return "\n".join(lines)


def _scaled_spec(sim_dt=0.05, control_period=0.5, ambient=35.0,
                 resistance=11.0):
    """A BoardSpec variant for heterogeneous racks (same sim_dt)."""
    from dataclasses import replace

    return replace(
        default_xu3_spec(sim_dt=sim_dt),
        control_period=control_period,
        ambient_temp=ambient,
        thermal_resistance=resistance,
    )


def default_rack_spec(n_boards=4, power_cap=None, sim_dt=0.05,
                      rack_period=2.0, budget_floor=0.6, jobs=(),
                      faults=(), cooling=None):
    """A homogeneous rack of XU3 boards under one cap."""
    boards = tuple(default_xu3_spec(sim_dt=sim_dt) for _ in range(n_boards))
    if power_cap is None:
        # Tight enough that distribution matters: ~60% of the unconstrained
        # per-board envelope (power_limit_big + power_limit_little + static).
        per_board = (boards[0].power_limit_big + boards[0].power_limit_little
                     + boards[0].board_static_power)
        power_cap = 0.6 * per_board * n_boards
    return RackSpec(
        boards=boards,
        power_cap=float(power_cap),
        rack_period=rack_period,
        budget_floor=budget_floor,
        cooling=cooling if cooling is not None else CoolingSpec(),
        jobs=tuple(jobs),
        faults=tuple(faults),
    )


def heterogeneous_rack_spec(n_boards=4, power_cap=None, sim_dt=0.05,
                            rack_period=2.0, budget_floor=0.6, jobs=(),
                            faults=()):
    """A mixed rack: alternating board variants sharing one ``sim_dt``.

    Even lanes are stock XU3 boards; odd lanes run a hotter, slower-
    control-period variant — enough spec diversity to exercise every
    heterogeneity path in the bank (per-spec plan memos, per-spec fused
    schedule groups, per-lane thermal constants).
    """
    variants = [
        default_xu3_spec(sim_dt=sim_dt),
        _scaled_spec(sim_dt=sim_dt, control_period=1.0, ambient=38.0,
                     resistance=12.5),
    ]
    boards = tuple(variants[i % 2] if i % 2 else default_xu3_spec(sim_dt=sim_dt)
                   for i in range(n_boards))
    if power_cap is None:
        per_board = (boards[0].power_limit_big + boards[0].power_limit_little
                     + boards[0].board_static_power)
        power_cap = 0.6 * per_board * n_boards
    return RackSpec(
        boards=boards,
        power_cap=float(power_cap),
        rack_period=rack_period,
        budget_floor=budget_floor,
        jobs=tuple(jobs),
        faults=tuple(faults),
    )
