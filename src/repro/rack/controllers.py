"""Rack-layer controllers: SSV-verified cap distribution vs heuristics.

Two third-layer controllers share one declared interface (see
:func:`~repro.rack.layer.rack_layer_spec`): each rack control period they
read the per-board *declared* sensors — power, headroom, queue depth —
and return one power budget per board, subject to the facility cap.

:class:`SSVRackController`
    The Yukta-style design.  An adjustable-gain integral regulator (after
    Chen/Wardi/Yalamanchili's power regulation) tracks total rack power to
    the effective cap and distributes the correction by demand weight;
    the integral gain is *selected by structured-singular-value analysis*:
    each board's budget-to-power response is modelled as an uncertain gain
    within the declared guardband (plus one rack period of actuation
    delay), and the largest grid gain whose closed loop keeps the mu
    upper bound below one over the frequency grid wins.

:class:`HeuristicRackController`
    The baseline pair: ``"uniform"`` splits the cap evenly; ``"greedy"``
    gives each board its measured draw plus a share of the leftover
    proportional to demand — reactive water-filling with no stability
    story, the per-board-greedy strawman of the rack experiments.

Both controllers are deterministic and side-effect free: given the same
reading sequence they emit the same budget sequence, which is what the
rack differential oracle (bank vs scalar boards) relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..robust import BlockStructure, UncertaintyBlock, mu_upper_bound
from .spec import RackSpec

__all__ = [
    "BoardReading",
    "BudgetGovernor",
    "HeuristicRackController",
    "SSVRackController",
    "select_integral_gain",
]


@dataclass(frozen=True)
class BoardReading:
    """One board's declared sensor tuple, as read at a rack period edge."""

    power: float  # W; NaN when the board's power sensing dropped out
    headroom: float  # W; budget minus measured power
    queue_depth: int  # jobs waiting that this board could serve
    online: bool = True
    busy: bool = False  # a job is dispatched on the board

    @property
    def trusted(self):
        return self.online and math.isfinite(self.power)


def _project_to_cap(budgets, floors, cap):
    """Scale budgets above their floors down until the total fits the cap.

    Floors are preserved exactly (offline boards carry floor 0); only the
    excess above each floor is scaled by the common feasibility factor.
    """
    total = sum(budgets)
    if total <= cap:
        return budgets
    floor_sum = sum(floors)
    excess = [b - f for b, f in zip(budgets, floors)]
    excess_sum = sum(excess)
    if excess_sum <= 1e-12:
        return list(floors)
    scale = max(cap - floor_sum, 0.0) / excess_sum
    return [f + e * scale for f, e in zip(floors, excess)]


class _RackControllerBase:
    """Shared budget bookkeeping: floors, ceilings, cap projection."""

    def __init__(self, rack: RackSpec):
        self.rack = rack
        self.ceilings = tuple(
            b.power_limit_big + b.power_limit_little + b.board_static_power
            for b in rack.boards
        )
        self.rejected_budgets = 0
        self.reset()

    def reset(self):
        n = self.rack.n_boards
        self.budgets = [self.rack.power_cap / n] * n

    def _floors(self, readings):
        """Declared floors: offline boards release theirs entirely."""
        floor = self.rack.budget_floor
        return [floor if r.online else 0.0 for r in readings]

    def _demand_weights(self, readings):
        """Demand share per board from the declared sensors only.

        Untrusted boards (offline, or power reading gone non-finite) get
        zero weight — the fault surfaces as reallocation toward the
        healthy boards.  With no signal at all, share evenly across the
        trusted set.
        """
        weights = []
        for r in readings:
            if not r.trusted:
                weights.append(0.0)
                continue
            w = max(r.power, 0.0) + 0.25 * r.queue_depth
            if r.busy:
                w += 0.25
            weights.append(w)
        total = sum(weights)
        if total <= 1e-9:
            trusted = [1.0 if r.trusted else 0.0 for r in readings]
            total = sum(trusted)
            if total <= 0:
                return [0.0] * len(readings)
            return [t / total for t in trusted]
        return [w / total for w in weights]

    def _finish(self, budgets, readings, cap_eff):
        """Clamp to [floor, ceiling], project to the cap, count rejects."""
        floors = self._floors(readings)
        out = []
        for b, floor, ceil, r in zip(budgets, floors, self.ceilings,
                                     readings):
            if not r.online:
                out.append(0.0)
                continue
            if not r.trusted:
                # Untrusted sensing: pin to the declared floor (the safe
                # budget) until readings return finite.
                out.append(floor)
                continue
            clamped = min(max(b, floor), ceil)
            if abs(clamped - b) > 1e-9:
                self.rejected_budgets += 1
            out.append(clamped)
        floors = [f if r.online else 0.0 for f, r in zip(floors, readings)]
        out = _project_to_cap(out, floors, cap_eff)
        self.budgets = out
        return list(out)


class HeuristicRackController(_RackControllerBase):
    """Uniform or greedy cap distribution — the baseline pair."""

    def __init__(self, rack: RackSpec, mode="greedy"):
        if mode not in ("uniform", "greedy"):
            raise ValueError(f"unknown heuristic mode {mode!r}")
        self.mode = mode
        self.name = f"rack-{mode}"
        super().__init__(rack)

    def step(self, readings, cap_eff):
        n = self.rack.n_boards
        if self.mode == "uniform":
            budgets = [cap_eff / n] * n
            return self._finish(budgets, readings, cap_eff)
        # Greedy water-filling: everyone keeps what they drew, the slack
        # goes to whoever declares demand, most-loaded first.
        weights = self._demand_weights(readings)
        base = [max(r.power, 0.0) if r.trusted else 0.0 for r in readings]
        slack = max(cap_eff - sum(base), 0.0)
        budgets = [b + w * slack for b, w in zip(base, weights)]
        return self._finish(budgets, readings, cap_eff)


def _closed_loop_channel(n_boards, gain, weights, z):
    """M(z) of the budget loop's uncertainty channel at one z.

    Plant model per board: measured power responds to the budget through
    an uncertain gain ``g_i = 1 + delta_i`` (|delta_i| <= guardband) with
    one rack period of delay (budgets actuate at the period edge, power
    is measured the next edge).  The integral distributor
    ``b <- b + k * w * (c - 1^T p)`` then closes the loop.  States are
    ``[budgets, delayed budgets]``; the uncertainty input d enters the
    measured total, the uncertainty output f is the delayed budget vector
    (scaled by the guardband outside this function).
    """
    n = n_boards
    w = np.asarray(weights, dtype=float).reshape(n, 1)
    ones = np.ones((1, n))
    # States [b(t), b(t-1)]; the measured total is 1^T (b(t-1) + d).
    A = np.block([
        [np.eye(n), -gain * (w @ ones)],
        [np.eye(n), np.zeros((n, n))],
    ])
    B = np.vstack([-gain * (w @ ones), np.zeros((n, n))])
    C = np.hstack([np.zeros((n, n)), np.eye(n)])
    return C @ np.linalg.solve(z * np.eye(2 * n) - A, B)


def select_integral_gain(n_boards, guardband=0.4,
                         gain_grid=(1.0, 0.8, 0.65, 0.5, 0.4, 0.3, 0.2),
                         points=24):
    """Largest grid gain whose closed loop is robustly stable (mu <= 1).

    Sweeps the mu upper bound of the uncertainty channel over the unit
    circle for each candidate gain; the structure is one repeated scalar
    per board (each board's budget-to-power gain perturbs independently
    within ``1 +- guardband``).  Returns ``(gain, history)`` where
    ``history`` is the list of ``(gain, peak_mu)`` pairs examined.
    """
    n = n_boards
    weights = [1.0 / n] * n
    structure = BlockStructure([
        UncertaintyBlock("repeated", 1, 1, name=f"g_{i}") for i in range(n)
    ])
    omegas = np.linspace(0.02, math.pi, points)
    history = []
    chosen = None
    for gain in sorted(gain_grid, reverse=True):
        peak = 0.0
        for omega in omegas:
            z = complex(math.cos(omega), math.sin(omega))
            M = guardband * _closed_loop_channel(n, gain, weights, z)
            bound, _ = mu_upper_bound(M, structure)
            peak = max(peak, bound)
            if peak > 1.0:
                break
        history.append((gain, peak))
        if peak <= 1.0 and chosen is None:
            chosen = gain
            break
    if chosen is None:
        chosen = min(gain_grid)
    return chosen, history


class SSVRackController(_RackControllerBase):
    """Declared-interface integral cap distributor, gain picked by mu.

    ``shape_rate`` additionally drifts the budget *shape* toward the
    demand weights at constant total (redistribution without disturbing
    the cap tracking loop the SSV analysis certified).
    """

    name = "rack-ssv"

    def __init__(self, rack: RackSpec, guardband=0.4, gain_grid=None,
                 shape_rate=0.3, mu_points=24):
        self.guardband = float(guardband)
        kwargs = {} if gain_grid is None else {"gain_grid": tuple(gain_grid)}
        self.gain, self.mu_history = select_integral_gain(
            rack.n_boards, guardband=self.guardband, points=mu_points,
            **kwargs,
        )
        self.mu_peak = next(
            (mu for g, mu in self.mu_history if g == self.gain), math.nan
        )
        self.shape_rate = float(shape_rate)
        super().__init__(rack)

    def step(self, readings, cap_eff):
        weights = self._demand_weights(readings)
        total_power = sum(
            max(r.power, 0.0) for r in readings if r.trusted
        )
        error = cap_eff - total_power
        budgets = list(self.budgets)
        total_budget = sum(budgets)
        for i, (r, w) in enumerate(zip(readings, weights)):
            if not r.trusted:
                continue
            integral = self.gain * w * error
            reshape = self.shape_rate * (w * total_budget - budgets[i])
            budgets[i] = budgets[i] + integral + reshape
        return self._finish(budgets, readings, cap_eff)


class BudgetGovernor:
    """The board-side budget tracker: one power budget in, DVFS out.

    This is the condensed board layer under the rack: an integral
    governor that holds a normalized performance level, raises it while
    measured power sits below the budget, lowers it when the budget is
    exceeded, and maps the level onto the board's quantized DVFS grids.
    Evaluated once per rack period, its output is a *constant* frequency
    pair for the whole period — which is exactly what lets the bank's
    fused multi-period kernel do the heavy stepping.
    """

    def __init__(self, spec, gain=0.6, margin=0.97):
        self.spec = spec
        self.gain = float(gain)
        # Track a little below the budget: the DVFS grid is coarse, so
        # aiming exactly at the budget parks half the boards a quantum
        # above it.  3% under keeps the steady state on the safe side.
        self.margin = float(margin)
        self.level = 1.0

    def reset(self):
        self.level = 1.0

    def command(self, budget, power):
        """Next (freq_big, freq_little) command for one rack period."""
        if budget > 0 and math.isfinite(power) and power > 0:
            error = (self.margin * budget - power) / max(budget, 1e-9)
            self.level += self.gain * min(max(error, -0.6), 0.6)
        elif budget > 0 and power == 0.0:
            # No measurement yet (sensors not latched): probe upward.
            self.level += 0.25
        self.level = min(max(self.level, 0.0), 1.0)
        big = self.spec.big.freq_range
        little = self.spec.little.freq_range
        fb = big.snap(big.low + self.level * (big.high - big.low))
        fl = little.snap(little.low + self.level * (little.high - little.low))
        return fb, fl
