"""Gain-scheduled Yukta: per-workload-class SSV controllers (Table I).

The paper's taxonomy lists *Gain Scheduling* — multiple controllers, each
suited to a type of execution, with selection logic at runtime — and notes
its extra modelling cost.  This extension builds it: the training programs
are split into compute-bound and memory-bound classes, each class gets its
own characterization campaign and its own pair of SSV controllers, and a
hysteretic runtime selector switches on a capacity-utilization signal
(delivered BIPS per provisioned core-GHz — low utilization at speed means
the memory wall).

The motivation is diagnostic: the single workload-agnostic linear model is
this reproduction's weakest link on memory-bound programs (EXPERIMENTS.md),
and scheduling is the classical remedy the paper itself names.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import characterize_board, design_layer
from ..core.layer import hardware_layer_spec, software_layer_spec

__all__ = [
    "GainScheduledController",
    "capacity_utilization",
    "design_gain_scheduled_layers",
    "COMPUTE_TRAINING",
    "MEMORY_TRAINING",
]

# Training split (all from the paper's training set, disjoint from eval).
COMPUTE_TRAINING = ("swaptions", "namd", "perlbench")
MEMORY_TRAINING = ("milc", "astar", "vips")


def capacity_utilization(bips_total, n_big, n_little, f_big, f_little,
                         big_cpi=1.15, little_cpi=2.0):
    """Delivered BIPS over the provisioned peak BIPS of the powered cores.

    Near 1.0 for compute-bound execution; well below it when the memory
    wall (or idle provisioned cores) caps throughput.
    """
    peak = n_big * f_big / big_cpi + n_little * f_little / little_cpi
    return float(bips_total) / max(peak, 1e-9)


class GainScheduledController:
    """Hysteretic selector over per-class runtime controllers.

    Members share the layer interface (``step``/``set_targets``/``reset``);
    the selector computes the class label from the measurements plus the
    *last applied actuation* and switches only after ``hysteresis``
    consecutive periods vote for the other class (cheap selection logic,
    but logic nonetheless — the overhead the paper's taxonomy warns about).
    """

    # Utilization below this classifies the execution as memory-bound.
    MEMORY_THRESHOLD = 0.55

    def __init__(self, members, selector, hysteresis=4, initial="compute"):
        self.members = dict(members)
        if initial not in self.members:
            raise ValueError(f"unknown initial member {initial!r}")
        self.selector = selector
        self.hysteresis = int(hysteresis)
        self.active = initial
        self._votes = 0
        self._last_actuation = None
        self.switches = 0

    # -- layer interface -------------------------------------------------
    @property
    def targets(self):
        return self.members[self.active].targets

    @property
    def guardband_exhausted(self):
        return any(
            getattr(m, "guardband_exhausted", False) for m in self.members.values()
        )

    @guardband_exhausted.setter
    def guardband_exhausted(self, value):
        for member in self.members.values():
            if hasattr(member, "guardband_exhausted"):
                member.guardband_exhausted = value

    def set_targets(self, targets):
        for member in self.members.values():
            member.set_targets(targets)

    def reset(self):
        for member in self.members.values():
            member.reset()
        self._votes = 0
        self._last_actuation = None
        self.switches = 0

    def step(self, outputs, externals):
        label = self.selector(np.asarray(outputs, dtype=float),
                              np.asarray(externals, dtype=float),
                              self._last_actuation)
        if label != self.active:
            self._votes += 1
            if self._votes >= self.hysteresis:
                self.active = label
                self._votes = 0
                self.switches += 1
        else:
            self._votes = 0
        actuation = self.members[self.active].step(outputs, externals)
        self._last_actuation = actuation
        return actuation


def _hw_selector(outputs, externals, last_actuation):
    """Classify from the hardware layer's own signals."""
    if last_actuation is None:
        return "compute"
    bips = outputs[0]
    n_big, n_little, f_big, f_little = last_actuation
    util = capacity_utilization(bips, n_big, n_little, f_big, f_little)
    return ("memory" if util < GainScheduledController.MEMORY_THRESHOLD
            else "compute")


def _sw_selector(outputs, externals, last_actuation):
    """Classify from the software layer's view (cluster BIPS vs HW knobs)."""
    if externals.size < 4:
        return "compute"
    bips = outputs[0] + outputs[1]
    n_big, n_little, f_big, f_little = externals[:4]
    util = capacity_utilization(bips, n_big, n_little, f_big, f_little)
    return ("memory" if util < GainScheduledController.MEMORY_THRESHOLD
            else "compute")


@dataclass
class GainScheduledDesign:
    """Both layers' scheduled controllers plus the per-class designs."""

    hw_controller: GainScheduledController
    sw_controller: GainScheduledController
    class_designs: dict

    def summary(self):
        lines = ["=== gain-scheduled Yukta design ==="]
        for label, (hw, sw) in self.class_designs.items():
            lines.append(f"[{label}] HW: {hw.dk_result.summary()}")
            lines.append(f"[{label}] SW: {sw.dk_result.summary()}")
        return "\n".join(lines)


def design_gain_scheduled_layers(board_spec, samples_per_program=160,
                                 seed=1234, hysteresis=4):
    """Run both class campaigns and synthesize all four controllers."""
    classes = {
        "compute": COMPUTE_TRAINING,
        "memory": MEMORY_TRAINING,
    }
    hw_members = {}
    sw_members = {}
    class_designs = {}
    for label, programs in classes.items():
        characterization = characterize_board(
            board_spec, programs=programs,
            samples_per_program=samples_per_program, seed=seed,
        )
        hw = design_layer(hardware_layer_spec(board_spec), characterization,
                          reduce_to=20, effort_scale=5.0, accuracy_boost=10.0)
        sw = design_layer(software_layer_spec(board_spec), characterization,
                          reduce_to=20, effort_scale=2.5, accuracy_boost=10.0)
        hw_members[label] = hw.controller
        sw_members[label] = sw.controller
        class_designs[label] = (hw, sw)
    return GainScheduledDesign(
        GainScheduledController(hw_members, _hw_selector, hysteresis),
        GainScheduledController(sw_members, _sw_selector, hysteresis),
        class_designs,
    )
