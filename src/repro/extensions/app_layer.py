"""The application (QoS) layer: a third Yukta layer per Sec. III-D.

The application team declares its controller exactly like the hardware and
software teams: inputs (approximation quality and requested parallelism,
both quantized), outputs (heartbeat rate and delivered quality, with
deviation bounds), external signals imported from the *neighbouring* layer
only (the OS placement knobs — never the hardware layer's), and an
uncertainty guardband.  The same characterize -> identify -> augment ->
D-K-synthesize -> deploy flow produces its controller, and the
:class:`ThreeLayerCoordinator` stacks it on top of the existing two-layer
runtime at a slower invocation rate (layers higher in the stack act on
longer timescales).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..board import Board
from ..core import MultilayerCoordinator, design_layer
from ..core.layer import LayerSpec
from ..signals import ExternalSignal, InputSignal, OutputSignal, QuantizedRange
from ..sysid import ExperimentData, merge_experiments, multilevel_random
from .qos_app import QosApplication

__all__ = [
    "app_layer_spec",
    "characterize_app_layer",
    "design_app_layer",
    "AppLayerRuntime",
    "ThreeLayerCoordinator",
]

APP_OUTPUTS = ("heartbeat_rate", "delivered_quality")


def app_layer_spec() -> LayerSpec:
    """The application team's controller declaration."""
    inputs = [
        InputSignal("quality", QuantizedRange(0.5, 1.0, step=0.05), weight=2.0),
        InputSignal("requested_threads", QuantizedRange(2, 8, step=1), weight=2.0,
                    unit="threads"),
    ]
    outputs = [
        # QoS is the critical output (tight bound); quality is the soft one
        # the optimizer trades away — same prioritization-by-bounds pattern
        # as the hardware layer's power/performance split (Sec. IV-A).
        OutputSignal("heartbeat_rate", 0.10, value_range=10.0, critical=True,
                     unit="items/s"),
        OutputSignal("delivered_quality", 0.40, value_range=0.5),
    ]
    externals = [
        ExternalSignal("n_threads_big", "software",
                       allowed=QuantizedRange(0, 8, step=1)),
        ExternalSignal("tpc_big", "software",
                       allowed=QuantizedRange(1, 4, step=0.5)),
        ExternalSignal("tpc_little", "software",
                       allowed=QuantizedRange(1, 4, step=0.5)),
    ]
    return LayerSpec(
        name="application",
        goal="meet the heartbeat (QoS) target at the highest quality",
        inputs=inputs,
        outputs=outputs,
        externals=externals,
        guardband=0.60,  # highest layer, most unmodeled churn below it
    )


def _sample_app_signals(app: QosApplication, period):
    return {
        "heartbeat_rate": app.read_heartbeats() / period,
        "delivered_quality": app.quality,
    }


def make_qos_application(name="qos-stream", total_items=400,
                         base_giga_per_item=0.8, mpki=1.5):
    return QosApplication(name, total_items=total_items,
                          base_giga_per_item=base_giga_per_item, mpki=mpki)


def characterize_app_layer(base_context, samples=200, seed=77):
    """Training campaign for the application layer.

    Runs the QoS application under the *two-layer* Yukta stack (the layers
    below behave as they will in deployment) while exciting the application
    knobs, sampling heartbeat rate and delivered quality.
    """
    from ..experiments.schemes import YUKTA_HW_SSV_OS_SSV, build_session

    spec = base_context.spec
    period_steps = spec.period_steps()
    runs = []
    for run_idx in range(2):
        app = make_qos_application(total_items=10_000)
        board = Board(app, spec=spec, seed=seed + run_idx, record=False)
        session = build_session(YUKTA_HW_SSV_OS_SSV, base_context)
        coordinator = MultilayerCoordinator(
            session.hw_controller, session.sw_controller,
            session.hw_optimizer, session.sw_optimizer,
        )
        quality_seq = multilevel_random(
            samples, [0.5, 0.6, 0.75, 0.9, 1.0], 6, seed=seed + 10 * run_idx
        )
        threads_seq = multilevel_random(
            samples, [2, 4, 6, 8], 8, seed=seed + 10 * run_idx + 1
        )
        rows_u, rows_y, rows_e = [], [], []
        for k in range(samples):
            if board.done:
                break
            app.set_quality(quality_seq[k])
            app.set_max_threads(int(threads_seq[k]))
            for _ in range(period_steps):
                board.step()
                if board.done:
                    break
            coordinator.control_step(board, period_steps)
            signals = _sample_app_signals(app, spec.control_period)
            sw_u = coordinator.records[-1].actuation_sw or [4, 2, 2]
            rows_u.append([quality_seq[k], threads_seq[k], *sw_u])
            rows_y.append([signals["heartbeat_rate"],
                           signals["delivered_quality"]])
        if len(rows_u) >= 24:
            runs.append(ExperimentData(
                np.asarray(rows_u), np.asarray(rows_y), spec.control_period,
                label=f"qos-run{run_idx}",
            ))
    if not runs:
        raise RuntimeError("application-layer characterization produced no data")
    return merge_experiments(runs)


def design_app_layer(base_context, samples=200, seed=77, **kwargs):
    """Design the application-layer SSV controller end to end."""
    data, boundaries = characterize_app_layer(base_context, samples, seed)
    heartbeat = data.outputs[:, 0]
    hb_low, hb_high = np.percentile(heartbeat, [2, 98])
    hb_range = max(hb_high - hb_low, 1.0)
    spec = app_layer_spec()
    design = design_layer(
        spec,
        characterization=None,
        training_data=(data, boundaries),
        output_ranges_override=[hb_range, 0.5],
        output_mids_override=[(hb_low + hb_high) / 2.0, 0.75],
        reduce_to=12,
        effort_scale=kwargs.pop("effort_scale", 2.0),
        accuracy_boost=kwargs.pop("accuracy_boost", 8.0),
        **kwargs,
    )
    return design


@dataclass
class AppLayerRuntime:
    """Deployable application-layer controller bound to one application."""

    controller: object  # RuntimeController
    application: QosApplication
    heartbeat_target: float
    quality_target: float = 1.0

    def __post_init__(self):
        self.controller.set_targets([self.heartbeat_target, self.quality_target])

    def control_step(self, period, os_actuation):
        signals = _sample_app_signals(self.application, period)
        outputs = [signals["heartbeat_rate"], signals["delivered_quality"]]
        externals = list(os_actuation) if os_actuation else [4.0, 2.0, 2.0]
        quality, threads = self.controller.step(outputs, externals)
        self.application.set_quality(quality)
        self.application.set_max_threads(int(round(threads)))
        return quality, threads


class ThreeLayerCoordinator:
    """Stack the application layer on the two-layer runtime.

    The application layer runs every ``app_period_multiple`` control
    periods (higher layers act on slower timescales, Sec. III-D) and talks
    only to its neighbour: it reads the OS actuation and actuates the
    application's own knobs.
    """

    def __init__(self, two_layer: MultilayerCoordinator,
                 app_runtime: AppLayerRuntime, app_period_multiple=2):
        self.two_layer = two_layer
        self.app_runtime = app_runtime
        self.app_period_multiple = int(app_period_multiple)
        self._period = 0
        self.app_actions = []

    def control_step(self, board, period_steps):
        result = self.two_layer.control_step(board, period_steps)
        self._period += 1
        if self._period % self.app_period_multiple == 0:
            os_actuation = self.two_layer.records[-1].actuation_sw
            action = self.app_runtime.control_step(
                board.spec.control_period * self.app_period_multiple,
                os_actuation,
            )
            self.app_actions.append((board.time, *action))
        return result
