"""A QoS application with approximation and parallelism knobs.

The application processes a stream of work items (frames, queries, ...) and
exposes two knobs an application-layer controller can actuate:

* ``quality`` in [0.5, 1.0] — the approximation level; each item costs
  ``base_giga_per_item * (0.35 + 0.65 * quality)`` giga-instructions, so
  dropping quality trades output fidelity for throughput (the classic
  approximate-computing contract);
* ``max_threads`` — the parallelism the application exposes to the OS.

The measurable QoS signal is the *heartbeat rate*: items completed per
second, read with the same cadence as the other layer signals.
"""

from __future__ import annotations

from ..workloads.app import Application, Phase, Thread

__all__ = ["QosApplication"]


class QosApplication(Application):
    """Work-item stream with quality/parallelism knobs and heartbeats."""

    MIN_QUALITY = 0.5
    MAX_QUALITY = 1.0

    def __init__(self, name, total_items, base_giga_per_item, max_threads=8,
                 cpi_scale=1.0, mpki=1.0, activity=1.0):
        self.total_items = int(total_items)
        self.base_giga_per_item = float(base_giga_per_item)
        self.quality = 1.0
        self._max_threads = int(max_threads)
        self.items_completed = 0.0
        self._heartbeat_marker = 0.0
        # A single long shared-pool phase carries the execution character;
        # its instruction budget is managed dynamically as items are drawn.
        phase = Phase(
            f"{name}:stream", n_threads=max_threads,
            instructions=self._remaining_giga_at_current_quality(),
            cpi_scale=cpi_scale, mpki=mpki, activity=activity,
        )
        super().__init__(name, [phase])
        self.pool_remaining = self._remaining_giga_at_current_quality()

    # ------------------------------------------------------------------
    # Knobs
    # ------------------------------------------------------------------
    def giga_per_item(self):
        return self.base_giga_per_item * (0.35 + 0.65 * self.quality)

    def _remaining_giga_at_current_quality(self):
        remaining_items = self.total_items - getattr(self, "items_completed", 0.0)
        return max(remaining_items, 0.0) * self.giga_per_item()

    def set_quality(self, quality):
        """Change the approximation level; re-prices the remaining items."""
        quality = min(max(float(quality), self.MIN_QUALITY), self.MAX_QUALITY)
        if abs(quality - self.quality) < 1e-9:
            return
        self.quality = quality
        if not self.done:
            self.pool_remaining = self._remaining_giga_at_current_quality()

    def set_max_threads(self, count):
        self._max_threads = int(min(max(count, 1), len(self.threads)))

    # ------------------------------------------------------------------
    # Execution accounting
    # ------------------------------------------------------------------
    def runnable_threads(self):
        runnable = super().runnable_threads()
        return runnable[: self._max_threads]

    def execute(self, thread: Thread, giga_instructions, now):
        if self.done or giga_instructions <= 0:
            return
        work = min(giga_instructions, self.pool_remaining)
        self.pool_remaining -= work
        self.completed_instructions += work
        self.items_completed += work / max(self.giga_per_item(), 1e-12)
        if self.pool_remaining <= 1e-9 or self.items_completed >= self.total_items:
            self.items_completed = float(self.total_items)
            self.finish_time = now

    def read_heartbeats(self):
        """Items completed since the previous read."""
        delta = self.items_completed - self._heartbeat_marker
        self._heartbeat_marker = self.items_completed
        return delta

    def total_remaining(self):
        return self.pool_remaining if not self.done else 0.0
