"""Extensions beyond the paper's prototype.

The paper envisions (Sec. III-D) scaling Yukta to more than two layers with
neighbour-only communication.  This package builds that out: a QoS-aware
*application layer* whose SSV controller actuates the application's own
knobs (approximation quality, requested parallelism), reads the OS layer's
placement as external signals, and never talks to the hardware layer
directly — exactly the layered-abstraction argument of the paper.
"""

from .qos_app import QosApplication
from .app_layer import (
    AppLayerRuntime,
    ThreeLayerCoordinator,
    app_layer_spec,
    characterize_app_layer,
    design_app_layer,
)
from .gain_scheduling import (
    GainScheduledController,
    capacity_utilization,
    design_gain_scheduled_layers,
)

__all__ = [
    "QosApplication",
    "app_layer_spec",
    "characterize_app_layer",
    "design_app_layer",
    "AppLayerRuntime",
    "ThreeLayerCoordinator",
    "GainScheduledController",
    "capacity_utilization",
    "design_gain_scheduled_layers",
]
