"""Span-based tracing of the control loop.

A :class:`Tracer` records *spans* (named, timed phases — ``sample``,
``hw.step``, ``actuate.hw``, …) and *instant events* (fault injections,
supervisor transitions).  Every record carries a ``trace_id`` — the
control-period index set via :meth:`Tracer.begin_period` — so spans,
metrics snapshots, and flight-recorder dumps from the same period can be
correlated across layers.

Output sinks:

* ``spans.jsonl`` — one JSON object per line; the primary
  machine-readable schema (see docs/OBSERVABILITY.md).  Records are
  buffered in memory and serialized in batches (every
  ``flush_every`` records, on :meth:`flush`, and on :meth:`close`), so
  the recording hot path only builds a dict and appends it — JSON
  encoding and file I/O stay off the control loop.  Call
  :meth:`flush` at interesting moments (the flight recorder does) to
  bound data loss from a crash.
* ``trace.json`` — Chrome ``trace_event`` JSON array, loadable directly
  in ``chrome://tracing`` or https://ui.perfetto.dev.  Synthesized from
  the span stream at :meth:`close` so each record is converted exactly
  once, after the run (this is what keeps enabled-telemetry overhead
  inside the <5 % budget of ``benchmarks/bench_telemetry.py``).

With no output paths the tracer keeps a bounded in-memory deque of recent
records — what the tests and the ``trace`` summarizer consume.
"""

from __future__ import annotations

import json
import time
from collections import deque

__all__ = ["Tracer", "NULL_SPAN", "chrome_event"]


class _NullSpan:
    """Reusable no-op context manager: the disabled-telemetry fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        pass


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "trace_id", "attrs", "_t0")

    def __init__(self, tracer, name, cat, trace_id, attrs):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.trace_id = trace_id
        self.attrs = attrs

    def set(self, **attrs):
        """Attach attributes mid-span."""
        self.attrs.update(attrs)

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._tracer._finish(self, time.perf_counter())
        return False


def chrome_event(record):
    """Convert one span/instant record to a Chrome ``trace_event`` dict."""
    args = {
        k: v for k, v in record.items()
        if k not in ("name", "cat", "ts_us", "dur_us", "phase")
    }
    event = {
        "name": record["name"],
        "cat": record["cat"],
        "ph": "X" if record.get("phase") == "span" else "i",
        "pid": 1,
        "tid": 1,
        "ts": record["ts_us"],
        "args": args,
    }
    if event["ph"] == "X":
        event["dur"] = record["dur_us"]
    else:
        event["s"] = "p"  # process-scoped instant
    return event


class Tracer:
    """Records spans and instant events; streams JSONL, exports Chrome."""

    def __init__(self, jsonl_path=None, chrome_path=None, keep=8192,
                 flush_every=4096):
        self._jsonl_path = jsonl_path
        self._chrome_path = chrome_path
        self._jsonl = None
        self._pending = []  # records not yet serialized to disk
        self._flush_every = flush_every
        self._origin = time.perf_counter()
        self.trace_id = 0
        self.spans = deque(maxlen=keep)  # recent records, in-memory
        self.span_count = 0
        self.closed = False
        # Optional per-phase profiler (repro.obs.profiler.PhaseProfiler);
        # None keeps the finish path at one attribute check.
        self.profiler = None

    # ------------------------------------------------------------------
    def begin_period(self, board_time=None):
        """Start a new trace period; returns the new period index."""
        self.trace_id += 1
        if board_time is not None:
            self.instant("period.begin", cat="period", board_time=board_time)
        return self.trace_id

    def span(self, name, cat="control", trace_id=None, **attrs):
        """A context manager timing one phase of the loop."""
        return _Span(
            self, name, cat,
            self.trace_id if trace_id is None else trace_id, attrs,
        )

    def instant(self, name, cat="event", trace_id=None, **attrs):
        """A zero-duration marker event."""
        now = time.perf_counter()
        record = {
            "name": name,
            "cat": cat,
            "trace_id": self.trace_id if trace_id is None else trace_id,
            "ts_us": round((now - self._origin) * 1e6, 1),
            "dur_us": 0.0,
            "phase": "instant",
        }
        if attrs:
            record.update(attrs)
        self._emit(record)

    # ------------------------------------------------------------------
    def _finish(self, span, t1):
        record = {
            "name": span.name,
            "cat": span.cat,
            "trace_id": span.trace_id,
            "ts_us": round((span._t0 - self._origin) * 1e6, 1),
            "dur_us": round((t1 - span._t0) * 1e6, 1),
            "phase": "span",
        }
        if span.attrs:
            record.update(span.attrs)
        self._emit(record)
        if self.profiler is not None:
            self.profiler.observe(span.name, record["dur_us"], span.trace_id)

    def _emit(self, record):
        self.spans.append(record)
        self.span_count += 1
        if self._jsonl_path is not None and not self.closed:
            self._pending.append(record)
            if len(self._pending) >= self._flush_every:
                self._write_pending()

    # ------------------------------------------------------------------
    def _write_pending(self):
        if not self._pending:
            return
        if self._jsonl is None:
            self._jsonl = open(self._jsonl_path, "w")
        self._jsonl.write(
            "".join(json.dumps(record) + "\n" for record in self._pending)
        )
        self._pending.clear()

    def flush(self):
        """Serialize buffered records and flush the JSONL stream."""
        self._write_pending()
        if self._jsonl is not None:
            self._jsonl.flush()

    def _iter_records(self):
        """Every record of the run: from disk when streamed, else memory."""
        if self._jsonl_path is not None:
            self.flush()
        if self._jsonl is not None:
            with open(self._jsonl_path) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        else:
            yield from self.spans

    def close(self):
        """Finalize sinks: writes ``trace.json`` and closes the stream."""
        if self.closed:
            return
        self.flush()
        if self._chrome_path is not None:
            # Spans are recorded at *finish* time, so a nested span lands
            # before its enclosing parent; sort by start timestamp so the
            # exported array is ts-monotonic (what trace viewers and the
            # schema tests expect).
            events = sorted(
                (chrome_event(record) for record in self._iter_records()),
                key=lambda e: e["ts"],
            )
            with open(self._chrome_path, "w") as chrome:
                chrome.write("[\n")
                chrome.write(",\n".join(json.dumps(e) for e in events))
                chrome.write("\n]\n")
        if self._jsonl is not None:
            self._jsonl.close()
        self.closed = True
