"""Replay/summarize a recorded telemetry directory (the ``trace`` command).

Reads the artifacts a :class:`~repro.telemetry.TelemetrySession` wrote —
``spans.jsonl``, ``metrics.json``, ``flight-*.json`` — and renders a
human-readable report: where control-loop wall-clock time went (per span
name), what the counters ended at, and which flight-recorder dumps fired
with which supervisor/fault context.  Runs without building a design
context, so it is fast enough to point at any finished run.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

__all__ = ["summarize_dir", "load_spans", "load_flight_dumps"]


def load_spans(directory):
    """Parse ``spans.jsonl``; returns a list of record dicts.

    A session killed mid-write (SIGKILL, full disk, chaos harness) leaves
    a torn final line; corrupt lines are skipped with a counted warning so
    the surviving records stay readable.
    """
    path = Path(directory) / "spans.jsonl"
    if not path.exists():
        return []
    records = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    if skipped:
        warnings.warn(
            f"skipped {skipped} torn/corrupt line(s) in {path}",
            RuntimeWarning, stacklevel=2)
    return records


def load_flight_dumps(directory):
    """Load every ``flight-*.json`` payload, in sequence order.

    A dump torn mid-write is skipped with a counted warning — the
    recorder dumps exactly because something is going wrong, so partial
    artifacts are expected, not exceptional.
    """
    dumps = []
    skipped = 0
    for path in sorted(Path(directory).glob("flight-*.json")):
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (ValueError, OSError):
            skipped += 1
            continue
        if not isinstance(payload, dict) or "sequence" not in payload:
            skipped += 1
            continue
        payload["_path"] = path.name
        dumps.append(payload)
    if skipped:
        warnings.warn(
            f"skipped {skipped} torn/corrupt flight dump(s) in {directory}",
            RuntimeWarning, stacklevel=2)
    return dumps


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(int(q * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1)
    return sorted_values[idx]


def _span_table(spans):
    by_name = {}
    for record in spans:
        if record.get("phase") != "span":
            continue
        by_name.setdefault(record["name"], []).append(record["dur_us"])
    if not by_name:
        return ["  (no spans recorded)"]
    lines = [
        f"  {'span':14s} {'count':>7s} {'total ms':>10s} {'mean us':>9s} "
        f"{'p95 us':>9s} {'max us':>9s}"
    ]
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = sorted(by_name[name])
        total = sum(durs)
        lines.append(
            f"  {name:14s} {len(durs):7d} {total / 1000:10.2f} "
            f"{total / len(durs):9.1f} {_percentile(durs, 0.95):9.1f} "
            f"{durs[-1]:9.1f}"
        )
    return lines


def _metric_lines(directory):
    path = Path(directory) / "metrics.json"
    if not path.exists():
        return ["  (no metrics.json)"]
    with open(path) as handle:
        metrics = json.load(handle)
    lines = []
    for name in sorted(metrics):
        family = metrics[name]
        if family["type"] == "histogram":
            for sample in family["values"]:
                labels = _fmt_labels(sample["labels"])
                count = sample["count"]
                mean = sample["sum"] / count * 1e3 if count else 0.0
                lines.append(
                    f"  {name}{labels} count={count} mean={mean:.3f} ms"
                )
        else:
            for sample in family["values"]:
                labels = _fmt_labels(sample["labels"])
                value = sample["value"]
                value = int(value) if float(value).is_integer() else round(value, 6)
                lines.append(f"  {name}{labels} = {value}")
    return lines or ["  (empty registry)"]


def _fmt_labels(labels):
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _flight_lines(dumps):
    if not dumps:
        return ["  (no flight-recorder dumps)"]
    lines = []
    for payload in dumps:
        snaps = payload.get("snapshots", [])
        window = ""
        times = [s.get("time") for s in snaps if isinstance(s.get("time"), (int, float))]
        if times:
            window = f" t=[{min(times):.1f}s..{max(times):.1f}s]"
        states = {
            s.get("supervisor_state") for s in snaps if s.get("supervisor_state")
        }
        state_note = f" states={sorted(states)}" if states else ""
        lines.append(
            f"  #{payload['sequence']:02d} {payload['reason']}: "
            f"{len(snaps)} period(s){window}{state_note}  [{payload['_path']}]"
        )
    return lines


def summarize_dir(directory):
    """Render the full report for one telemetry directory."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a telemetry directory: {directory}")
    spans = load_spans(directory)
    dumps = load_flight_dumps(directory)
    if not spans and not dumps and not (directory / "metrics.json").exists():
        raise FileNotFoundError(
            f"no telemetry artifacts (spans.jsonl / metrics.json / "
            f"flight-*.json) in {directory}")
    n_periods = max((r.get("trace_id", 0) for r in spans), default=0)
    n_spans = sum(1 for r in spans if r.get("phase") == "span")
    n_instants = len(spans) - n_spans
    faults = [r for r in spans if r.get("cat") == "fault"]
    lines = [
        f"telemetry summary: {directory}",
        f"  periods traced: {n_periods}   spans: {n_spans}   "
        f"instant events: {n_instants}",
        "",
        "control-loop time by span",
    ]
    lines.extend(_span_table(spans))
    if faults:
        lines.append("")
        lines.append("fault-injection events")
        for record in faults:
            kind = record.get("kind", "?")
            lines.append(
                f"  period {record.get('trace_id', '?')}: {record['name']} "
                f"kind={kind}"
            )
    lines.append("")
    lines.append("flight-recorder dumps")
    lines.extend(_flight_lines(dumps))
    lines.append("")
    lines.append("final metrics")
    lines.extend(_metric_lines(directory))
    if (directory / "trace.json").exists():
        lines.append("")
        lines.append(
            f"chrome trace: load {directory / 'trace.json'} in "
            "chrome://tracing or https://ui.perfetto.dev"
        )
    return "\n".join(lines)
