"""The telemetry session: registry + tracer + flight recorder + exporters.

One :class:`TelemetrySession` owns everything a run emits.  Instrumented
code never imports a concrete sink — it holds a session reference (or
``None``, the default) and guards every touch with ``if tel is not None``,
which keeps the disabled path at a single attribute check per call site.

Sessions can be passed explicitly (``run_workload(...,
telemetry=session)``) or installed process-wide with :func:`activate`;
constructors of instrumented objects fall back to :func:`active_session`
so a CLI ``--telemetry DIR`` flag reaches every layer without threading a
parameter through the whole call graph.

With an output directory, closing the session writes:

* ``metrics.prom`` / ``metrics.json`` — final metrics snapshot;
* ``spans.jsonl`` / ``trace.json`` — the span trace (streamed during the
  run; ``trace.json`` loads in ``chrome://tracing`` / Perfetto);
* ``flight-*.json`` — any triggered flight-recorder dumps.
"""

from __future__ import annotations

from pathlib import Path

from .flight import FlightRecorder
from .registry import MetricsRegistry
from .tracing import NULL_SPAN, Tracer

__all__ = [
    "TelemetrySession",
    "activate",
    "deactivate",
    "active_session",
]

_ACTIVE = None

# Supervisor states as gauge values (docs/OBSERVABILITY.md).
STATE_VALUES = {"NOMINAL": 0, "DEGRADED": 1, "RECOVERING": 2}


def activate(session):
    """Install a session as the process-wide default; returns it."""
    global _ACTIVE
    _ACTIVE = session
    return session


def deactivate():
    """Clear the process-wide session (does not close it)."""
    global _ACTIVE
    _ACTIVE = None


def active_session():
    """The process-wide session, or ``None`` (telemetry disabled)."""
    return _ACTIVE


class TelemetrySession:
    """Everything one instrumented run emits, plus its exporters."""

    def __init__(self, out_dir=None, flight_capacity=64, span_keep=8192,
                 profile=False, profile_sample=1):
        self.out_dir = None
        jsonl = chrome = None
        if out_dir is not None:
            self.out_dir = Path(out_dir)
            self.out_dir.mkdir(parents=True, exist_ok=True)
            jsonl = self.out_dir / "spans.jsonl"
            chrome = self.out_dir / "trace.json"
        self.registry = MetricsRegistry()
        self.tracer = Tracer(jsonl_path=jsonl, chrome_path=chrome,
                             keep=span_keep)
        self.flight = FlightRecorder(capacity=flight_capacity,
                                     out_dir=self.out_dir)
        self.closed = False
        # Optional per-phase control-loop profiler (``--profile``):
        # aggregates span durations into the control_phase_seconds
        # histogram; ``profile_sample=N`` keeps one period in N.
        self.profiler = None
        if profile:
            from ..obs.profiler import PhaseProfiler

            self.profiler = PhaseProfiler(self.registry,
                                          sample_every=profile_sample)
            self.tracer.profiler = self.profiler
        reg = self.registry
        # --- the shared metric families (one handle each, created once) ---
        self.periods = reg.counter(
            "control_periods_total", "control periods executed")
        self.exd_gauge = reg.gauge(
            "exd_proxy", "optimizer ExD proxy (Power / Perf^2), last period")
        self.trips = reg.counter(
            "supervisor_trips_total", "NOMINAL->DEGRADED trips by cause",
            labels=("cause",))
        self.transitions = reg.counter(
            "supervisor_transitions_total",
            "supervisor state-machine transitions", labels=("transition",))
        self.state_gauge = reg.gauge(
            "supervisor_state", "0=NOMINAL 1=DEGRADED 2=RECOVERING")
        self.rejected = reg.counter(
            "actuations_rejected_total",
            "commands rejected or clamped by the board actuation API",
            labels=("kind",))
        self.nonfinite = reg.counter(
            "actuations_nonfinite_total",
            "non-finite commands dropped by the board actuation API",
            labels=("kind",))
        self.tmu_trips = reg.counter(
            "tmu_trips_total", "emergency-firmware trips", labels=("type",))
        self.tmu_throttle = reg.counter(
            "tmu_throttle_periods_total",
            "control periods with the emergency firmware throttling")
        self.opt_moves = reg.counter(
            "optimizer_moves_total", "ExD optimizer target moves",
            labels=("layer",))
        self.opt_reverts = reg.counter(
            "optimizer_reverts_total", "ExD optimizer reverted moves",
            labels=("layer",))
        self.fault_events = reg.counter(
            "fault_events_total", "fault-injector event edges",
            labels=("kind", "phase"))
        self.invariant_violations = reg.counter(
            "invariant_violations_total",
            "runtime invariant-monitor violations", labels=("check",))
        self.flight_dumps = reg.counter(
            "flight_dumps_total", "flight-recorder dumps", labels=("reason",))
        self.bank_windows = reg.counter(
            "bank_windows_total",
            "vectorized lockstep windows executed by BoardBank")
        self.bank_board_ticks = reg.counter(
            "bank_board_ticks_total",
            "board-ticks advanced by the bank's vectorized kernel")
        self.bank_scalar_ticks = reg.counter(
            "bank_scalar_ticks_total",
            "board-ticks finished via the bank's scalar fallback")
        self.bank_events = reg.counter(
            "bank_window_events_total",
            "events that ended or refused a lockstep window",
            labels=("reason",))
        self.cell_retries = reg.counter(
            "cell_retries_total",
            "campaign cell attempts re-queued by the supervised executor",
            labels=("reason",))
        self.cell_failures = reg.counter(
            "cell_failures_total",
            "campaign cells that exhausted their retry budget",
            labels=("reason",))
        self.cell_timeouts = reg.counter(
            "cell_timeouts_total",
            "campaign cells killed for exceeding their wall-clock deadline")
        self.worker_restarts = reg.counter(
            "worker_restarts_total",
            "supervised workers reaped and respawned", labels=("reason",))
        self.checkpoint_cells = reg.counter(
            "checkpoint_cells_total",
            "checkpoint-journal activity by event", labels=("event",))
        self.control_step_hist = reg.histogram(
            "control_step_seconds", "wall-clock time of one control step")
        self.sim_period_hist = reg.histogram(
            "sim_period_seconds",
            "wall-clock time simulating one control period of board steps")

    # ------------------------------------------------------------------
    # Tracing passthroughs
    # ------------------------------------------------------------------
    def begin_period(self, board_time=None):
        """Open the next trace period (correlates spans/flight/metrics)."""
        return self.tracer.begin_period(board_time)

    @property
    def period(self):
        return self.tracer.trace_id

    def span(self, name, cat="control", **attrs):
        if self.closed:
            return NULL_SPAN
        return self.tracer.span(name, cat=cat, **attrs)

    def instant(self, name, cat="event", **attrs):
        if not self.closed:
            self.tracer.instant(name, cat=cat, **attrs)

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------
    def record_period(self, snapshot):
        self.flight.record(snapshot)

    def dump_flight(self, reason, extra=None):
        """Trigger a flight-recorder dump (and count + mark it in the trace)."""
        self.flight_dumps.labels(reason=reason).inc()
        self.instant("flight.dump", cat="flight", reason=reason)
        payload = self.flight.dump(reason, extra=extra)
        self.tracer.flush()  # dumps are rare; persist the lead-up spans too
        return payload

    # ------------------------------------------------------------------
    # Export / lifecycle
    # ------------------------------------------------------------------
    def render_prometheus(self):
        return self.registry.render_prometheus()

    def flush(self):
        """Write the current metrics snapshot (and flush trace sinks)."""
        if self.out_dir is not None:
            # Atomic writes: a run killed mid-flush (worker SIGKILL, chaos
            # harness) must never leave a truncated snapshot behind.
            from ..cache import atomic_write_text

            atomic_write_text(self.out_dir / "metrics.prom",
                              self.registry.render_prometheus(), fsync=False)
            import json

            atomic_write_text(self.out_dir / "metrics.json",
                              json.dumps(self.registry.to_dict(), indent=1),
                              fsync=False)
        self.tracer.flush()

    def close(self):
        """Final metrics snapshot + finalize the trace files."""
        if self.closed:
            return
        self.flush()
        self.tracer.close()
        self.closed = True
        if active_session() is self:
            deactivate()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
