"""Merging per-worker telemetry directories into one coherent session dir.

The parallel experiment engine gives every worker process its own
:class:`~repro.telemetry.TelemetrySession` rooted at
``<parent>/worker-<n>/``: sessions are process-local by design, so workers
never contend on shared files.  When the pool joins, :func:`merge_worker_dirs`
folds the worker outputs back into the parent directory:

* ``metrics.json`` — counters and histograms are *summed* across workers
  (counts, sums, and per-bucket cumulative totals); gauges keep the value
  from the last worker that reported the family (gauges are "last write
  wins" within a process, and the same holds across the merge).
* ``spans.jsonl`` — concatenated in worker order, each span annotated with
  a ``worker`` attribute so interleaved timelines stay attributable.
* ``metrics.prom`` — re-rendered from the merged JSON snapshot in
  Prometheus text exposition format.

Worker directories are left in place (they are the ground truth for
debugging a single worker); the merged artifacts land next to them.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["merge_worker_dirs", "merge_metrics_dicts"]


def _merge_values(kind, base_values, new_values):
    """Fold one family's value list from a worker into the accumulator."""
    by_labels = {
        json.dumps(v["labels"], sort_keys=True): v for v in base_values
    }
    for value in new_values:
        key = json.dumps(value["labels"], sort_keys=True)
        seen = by_labels.get(key)
        if seen is None:
            by_labels[key] = json.loads(json.dumps(value))
            continue
        if kind == "histogram":
            seen["sum"] += value["sum"]
            seen["count"] += value["count"]
            mine = {b["le"]: b for b in seen["buckets"]}
            for bucket in value["buckets"]:
                if bucket["le"] in mine:
                    mine[bucket["le"]]["cumulative"] += bucket["cumulative"]
                else:
                    seen["buckets"].append(dict(bucket))
        elif kind == "counter":
            seen["value"] += value["value"]
        else:  # gauge: last writer wins
            seen["value"] = value["value"]
    return list(by_labels.values())


def merge_metrics_dicts(dicts):
    """Merge several ``MetricsRegistry.to_dict()`` snapshots into one."""
    merged = {}
    for snapshot in dicts:
        for name, family in snapshot.items():
            seen = merged.get(name)
            if seen is None:
                merged[name] = json.loads(json.dumps(family))
                continue
            seen["values"] = _merge_values(
                family.get("type", "counter"), seen["values"],
                family["values"],
            )
    # Quantile summaries cannot be merged sample-wise; re-estimate them
    # from the merged cumulative buckets.
    from .registry import quantiles_from_buckets

    for family in merged.values():
        if family.get("type") != "histogram":
            continue
        for value in family["values"]:
            if "quantiles" in value:
                value["quantiles"] = quantiles_from_buckets(
                    value.get("buckets", ()), value.get("count", 0))
    return dict(sorted(merged.items()))


def _render_prometheus(merged):
    """Prometheus text exposition of a merged metrics dict."""
    lines = []
    for name, family in merged.items():
        if family.get("help"):
            help_text = family["help"].replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family.get('type', 'counter')}")
        for value in family["values"]:
            label_str = _label_str(value["labels"])
            if family.get("type") == "histogram":
                for bucket in value["buckets"]:
                    bl = _label_str({**value["labels"], "le": bucket["le"]})
                    lines.append(f"{name}_bucket{bl} {bucket['cumulative']}")
                lines.append(f"{name}_sum{label_str} {value['sum']}")
                lines.append(f"{name}_count{label_str} {value['count']}")
                for key, quantile in value.get("quantiles", {}).items():
                    lines.append(f"{name}_{key}{label_str} {quantile}")
            else:
                lines.append(f"{name}{label_str} {value['value']}")
    return "\n".join(lines) + "\n"


def _label_str(labels):
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def merge_worker_dirs(parent_dir, worker_dirs=None):
    """Merge worker telemetry into ``parent_dir``; returns the merged dict.

    ``worker_dirs`` defaults to every ``worker-*`` subdirectory of the
    parent, sorted by name (deterministic merge order).  Missing or
    unparsable worker artifacts are skipped — a crashed worker must not
    take the merged report down with it.
    """
    parent = Path(parent_dir)
    if worker_dirs is None:
        worker_dirs = sorted(p for p in parent.glob("worker-*") if p.is_dir())
    else:
        worker_dirs = [Path(p) for p in worker_dirs]

    snapshots = []
    span_lines = []
    for worker in worker_dirs:
        metrics_path = worker / "metrics.json"
        if metrics_path.is_file():
            try:
                snapshots.append(json.loads(metrics_path.read_text()))
            except (json.JSONDecodeError, OSError):
                pass
        spans_path = worker / "spans.jsonl"
        if spans_path.is_file():
            try:
                for line in spans_path.read_text().splitlines():
                    if not line.strip():
                        continue
                    try:
                        span = json.loads(line)
                        span["worker"] = worker.name
                        span_lines.append(json.dumps(span))
                    except json.JSONDecodeError:
                        continue
            except OSError:
                pass

    merged = merge_metrics_dicts(snapshots)
    from ..cache import atomic_write_text

    atomic_write_text(parent / "metrics.json", json.dumps(merged, indent=1),
                      fsync=False)
    atomic_write_text(parent / "metrics.prom", _render_prometheus(merged),
                      fsync=False)
    if span_lines:
        atomic_write_text(parent / "spans.jsonl",
                          "\n".join(span_lines) + "\n", fsync=False)
    return merged
