"""Process-local metrics registry (counters, gauges, histograms).

A zero-dependency, Prometheus-shaped metrics store.  Instrumented code
registers *families* (``registry.counter("supervisor_trips_total",
labels=("cause",))``) and updates *children* obtained via
:meth:`MetricFamily.labels`; unlabeled families expose ``inc``/``set``/
``observe`` directly.  Snapshots export as Prometheus text exposition
format (:meth:`MetricsRegistry.render_prometheus`) or plain JSON-able
dicts (:meth:`MetricsRegistry.to_dict`) — no client library required.

Registration is idempotent: asking for an existing family with the same
kind and label names returns the cached family, so call sites do not need
to coordinate.  Re-registering under a different kind or label set is a
programming error and raises.
"""

from __future__ import annotations

import bisect

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "EXPORT_QUANTILES",
    "quantiles_from_buckets",
]

# Quantile summaries attached to every exported histogram, as
# ``<name>_p50``/``_p90``/``_p99`` samples (Prometheus) and a
# ``"quantiles"`` dict (JSON).
EXPORT_QUANTILES = (0.5, 0.9, 0.99)

# Latency buckets (seconds) sized for a software control loop: 100 us
# resolution at the bottom, multi-second synthesis phases at the top.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Freely settable value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount


class Histogram:
    """Bucketed distribution with sum and count."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets=DEFAULT_TIME_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self):
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        total = 0
        out = []
        for bound, n in zip(self.buckets + (float("inf"),), self.counts):
            total += n
            out.append((bound, total))
        return out

    def quantile(self, q):
        """Estimated ``q``-quantile by bucket interpolation.

        Prometheus ``histogram_quantile`` semantics: linear interpolation
        inside the bucket the rank falls into, the lowest bucket
        interpolates from 0, and a rank in the +Inf bucket returns the
        highest finite bound (the estimate cannot exceed what the buckets
        resolve — heavy tails saturate there).  Empty histograms return
        0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in self.cumulative():
            if cum >= rank:
                if bound == float("inf"):
                    return self.buckets[-1]
                width = cum - prev_cum
                if width == 0:
                    return bound
                frac = (rank - prev_cum) / width
                return prev_bound + (bound - prev_bound) * frac
            prev_bound, prev_cum = bound, cum
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more label dimensions."""

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_kwargs")

    def __init__(self, name, kind, help="", labelnames=(), **kwargs):
        _validate_name(name)
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self._children = {}
        self._kwargs = kwargs
        if not self.labelnames:
            self._children[()] = _KINDS[kind](**kwargs)

    def labels(self, **labelvalues):
        """The child metric for one label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _KINDS[self.kind](**self._kwargs)
        return child

    @property
    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self._children[()]

    # Unlabeled convenience passthroughs.
    def inc(self, amount=1.0):
        self._default.inc(amount)

    def dec(self, amount=1.0):
        self._default.dec(amount)

    def set(self, value):
        self._default.set(value)

    def observe(self, value):
        self._default.observe(value)

    @property
    def value(self):
        return self._default.value

    def samples(self):
        """Iterate ``(label_dict, child)`` pairs in insertion order."""
        for key, child in self._children.items():
            yield dict(zip(self.labelnames, key)), child


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self):
        self._families = {}

    # -- registration --------------------------------------------------
    def counter(self, name, help="", labels=()):
        return self._register(name, "counter", help, labels)

    def gauge(self, name, help="", labels=()):
        return self._register(name, "gauge", help, labels)

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_TIME_BUCKETS):
        return self._register(name, "histogram", help, labels, buckets=buckets)

    def _register(self, name, kind, help, labels, **kwargs):
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}"
                )
            return family
        family = MetricFamily(name, kind, help=help, labelnames=labels, **kwargs)
        self._families[name] = family
        return family

    def get(self, name):
        return self._families[name]

    def __contains__(self, name):
        return name in self._families

    def families(self):
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name, **labelvalues):
        """Test/convenience accessor: current value of one child."""
        family = self._families[name]
        child = family.labels(**labelvalues) if labelvalues else family._default
        return child.value if family.kind != "histogram" else child.count

    # -- export --------------------------------------------------------
    def render_prometheus(self):
        """The registry in Prometheus text exposition format."""
        lines = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.samples():
                base = _label_str(labels)
                if family.kind == "histogram":
                    for bound, cum in child.cumulative():
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        bl = _label_str({**labels, "le": le})
                        lines.append(f"{family.name}_bucket{bl} {cum}")
                    lines.append(f"{family.name}_sum{base} {_fmt(child.sum)}")
                    lines.append(f"{family.name}_count{base} {child.count}")
                    for q in EXPORT_QUANTILES:
                        lines.append(
                            f"{family.name}_p{int(q * 100)}{base} "
                            f"{_fmt(child.quantile(q))}"
                        )
                else:
                    lines.append(f"{family.name}{base} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self):
        """The registry as a JSON-able dict."""
        out = {}
        for family in self.families():
            values = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    values.append({
                        "labels": labels,
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": [
                            {"le": b, "cumulative": c}
                            for b, c in child.cumulative()
                            if b != float("inf")
                        ],
                        "quantiles": {
                            f"p{int(q * 100)}": child.quantile(q)
                            for q in EXPORT_QUANTILES
                        },
                    })
                else:
                    values.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return out


def quantiles_from_buckets(buckets, count, quantiles=EXPORT_QUANTILES):
    """Quantile estimates from exported bucket dicts (offline path).

    ``buckets`` is the JSON form — ``[{"le": bound, "cumulative": n},
    ...]`` with finite bounds only — and ``count`` the total sample
    count; same interpolation as :meth:`Histogram.quantile`.  Used to
    (re)compute summaries for merged or historical ``metrics.json``
    snapshots.
    """
    pairs = sorted((float(b["le"]), int(b["cumulative"])) for b in buckets)
    out = {}
    for q in quantiles:
        key = f"p{int(q * 100)}"
        if count == 0 or not pairs:
            out[key] = 0.0
            continue
        rank = q * count
        prev_bound, prev_cum = 0.0, 0
        value = pairs[-1][0]  # +Inf-bucket ranks saturate at the top bound
        for bound, cum in pairs:
            if cum >= rank:
                width = cum - prev_cum
                frac = (rank - prev_cum) / width if width else 1.0
                value = prev_bound + (bound - prev_bound) * frac
                break
            prev_bound, prev_cum = bound, cum
        out[key] = value
    return out


def _validate_name(name):
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric/label name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric/label name cannot start with a digit: {name!r}")


def _fmt(value):
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text):
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(text):
    return (
        str(text).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_str(labels):
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return "{" + inner + "}"
