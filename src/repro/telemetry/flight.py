"""The flight recorder: a bounded ring buffer of recent loop state.

Every control period the instrumented coordinator pushes a snapshot of the
board + controller state (signals, actuations, targets, ExD proxy,
actuation-health counters) into a fixed-capacity ring.  When something
interesting happens — a supervisor DEGRADED/RECOVERING transition, a fault
injection — the recorder *dumps*: the last N periods are serialized to a
JSON file named after the trigger, preserving the lead-up to the event the
way an aircraft flight recorder preserves the approach, not just the
impact.

Snapshots carry the period ``trace_id``, so a dump cross-references the
span trace and metrics emitted for the same periods.
"""

from __future__ import annotations

import json
import re
from collections import deque
from pathlib import Path

import numpy as np

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-capacity snapshot ring with triggered dumps."""

    def __init__(self, capacity=64, out_dir=None):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.capacity = int(capacity)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._ring = deque(maxlen=self.capacity)
        self.dumps = []  # payload dicts, in trigger order
        self.dump_paths = []  # files written (when out_dir is set)

    def __len__(self):
        return len(self._ring)

    @property
    def last(self):
        """The most recent snapshot (mutable: late annotation is allowed)."""
        return self._ring[-1] if self._ring else None

    def record(self, snapshot):
        """Push one period's snapshot (a dict) into the ring."""
        self._ring.append(snapshot)

    def dump(self, reason, extra=None):
        """Serialize the ring; returns the JSON-able payload."""
        payload = {
            "reason": reason,
            "sequence": len(self.dumps),
            "capacity": self.capacity,
            "snapshots": jsonable(list(self._ring)),
        }
        if extra is not None:
            payload["extra"] = jsonable(extra)
        self.dumps.append(payload)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            slug = re.sub(r"[^A-Za-z0-9_.]+", "-", reason).strip("-") or "dump"
            path = self.out_dir / f"flight-{payload['sequence']:04d}-{slug}.json"
            from ..cache import atomic_write_text

            atomic_write_text(path, json.dumps(payload, indent=1),
                              fsync=False)
            self.dump_paths.append(path)
        return payload


def jsonable(value):
    """Recursively convert numpy/scalar containers to JSON-able types."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.bool_, bool)):  # before int: bool <: int
        return bool(value)
    if isinstance(value, (np.floating, float)):
        value = float(value)
        return value if np.isfinite(value) else repr(value)  # 'nan'/'inf'
    if isinstance(value, (np.integer, int)):
        return int(value)
    if value is None or isinstance(value, str):
        return value
    return str(value)
