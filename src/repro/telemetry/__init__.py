"""Telemetry: control-loop tracing, metrics, and the flight recorder.

The observability substrate for the whole runtime stack (board, TMU
firmware, coordinator, supervisor, optimizer, fault injector, experiment
harness).  Three cooperating pieces, owned by one
:class:`TelemetrySession`:

* :mod:`~repro.telemetry.registry` — a zero-dependency metrics registry
  (counters / gauges / histograms with labels) exporting Prometheus text
  and JSON;
* :mod:`~repro.telemetry.tracing` — span-based tracing of each control
  period (``sample → optimize → hw.step → actuate.hw → sw.step →
  actuate.sw``, plus the per-period ``sim`` span), emitted as JSONL and
  Chrome ``trace_event`` JSON (Perfetto-loadable);
* :mod:`~repro.telemetry.flight` — a bounded ring buffer of per-period
  state snapshots, dumped automatically on supervisor transitions and
  fault-injection events.

Telemetry is **off by default**: instrumented call sites hold a session
reference that is ``None`` and guard with a single ``is not None`` check,
so the uninstrumented loop pays (nearly) nothing —
``benchmarks/bench_telemetry.py`` holds that bound at <5 %.  Enable it by
passing a session explicitly or installing one process-wide::

    from repro.telemetry import TelemetrySession, activate

    with activate(TelemetrySession("telemetry-out")) as tel:
        run_workload("yukta-hwssv-osssv", "gamess", context)

or from the CLI with ``python -m repro <cmd> --telemetry DIR``; inspect a
finished directory with ``python -m repro trace DIR``.
"""

from .flight import FlightRecorder, jsonable
from .merge import merge_metrics_dicts, merge_worker_dirs
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .session import (
    TelemetrySession,
    activate,
    active_session,
    deactivate,
)
from .summarize import load_flight_dumps, load_spans, summarize_dir
from .tracing import NULL_SPAN, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Tracer",
    "NULL_SPAN",
    "FlightRecorder",
    "jsonable",
    "TelemetrySession",
    "activate",
    "deactivate",
    "active_session",
    "load_spans",
    "load_flight_dumps",
    "summarize_dir",
    "merge_worker_dirs",
    "merge_metrics_dicts",
]
