"""ARX (AutoRegressive with eXogenous input) identification.

The paper's models predict each output at time T from all outputs at
T-1..T-4 and all inputs at T..T-3 (dimension four, Sec. IV-C).  That is a
MIMO ARX structure; fitting it is a linear least-squares problem, which
makes ARX both the workhorse model and the initializer for the iterative
Box-Jenkins-style refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lti import StateSpace
from .experiment import ExperimentData

__all__ = ["ARXModel", "fit_arx", "build_regression"]


@dataclass
class ARXModel:
    """y[t] = sum_i A_i y[t-i] + sum_j B_j u[t-j] + e[t].

    ``A_coeffs`` has shape (na, n_y, n_y); ``B_coeffs`` has shape
    (nb, n_y, n_u) with lags ``delay .. delay+nb-1``.
    """

    A_coeffs: np.ndarray
    B_coeffs: np.ndarray
    delay: int
    dt: float
    noise_variance: np.ndarray = None

    @property
    def na(self):
        return self.A_coeffs.shape[0]

    @property
    def nb(self):
        return self.B_coeffs.shape[0]

    @property
    def n_outputs(self):
        return self.A_coeffs.shape[1]

    @property
    def n_inputs(self):
        return self.B_coeffs.shape[2]

    def predict_one_step(self, y_history, u_history):
        """One-step-ahead prediction.

        ``y_history[i]`` is y[t-1-i]; ``u_history[j]`` is u[t-delay-j].
        """
        y_hat = np.zeros(self.n_outputs)
        for i in range(self.na):
            y_hat += self.A_coeffs[i] @ y_history[i]
        for j in range(self.nb):
            y_hat += self.B_coeffs[j] @ u_history[j]
        return y_hat

    def simulate(self, u_sequence, y0=None):
        """Free-run simulation (predictions fed back as outputs)."""
        u_sequence = np.atleast_2d(np.asarray(u_sequence, dtype=float))
        steps = u_sequence.shape[0]
        ys = np.zeros((steps, self.n_outputs))
        start = max(self.na, self.delay + self.nb - 1)
        if y0 is not None:
            y0 = np.atleast_2d(y0)
            ys[: y0.shape[0]] = y0
            start = max(start, y0.shape[0])
        for t in range(start, steps):
            y_hist = [ys[t - 1 - i] for i in range(self.na)]
            u_hist = [u_sequence[t - self.delay - j] for j in range(self.nb)]
            ys[t] = self.predict_one_step(y_hist, u_hist)
        return ys

    def to_statespace(self):
        """Observer-style companion realization of the ARX deterministic part.

        State is the stacked lagged outputs and inputs; the realization is
        exact for the deterministic input/output map.
        """
        n_y, n_u = self.n_outputs, self.n_inputs
        na, nb, delay = self.na, self.nb, self.delay
        # Direct feed-through exists only when delay == 0.
        d_gain = self.B_coeffs[0] if delay == 0 else np.zeros((n_y, n_u))
        # Input lags that must live in the state: u[t-1] .. u[t-(delay+nb-1)].
        n_u_lags = delay + nb - 1 if nb > 0 else 0
        n_u_lags = max(n_u_lags, 0)
        n = na * n_y + n_u_lags * n_u
        A = np.zeros((n, n))
        B = np.zeros((n, n_u))
        C = np.zeros((n_y, n))
        # Output-lag block occupies the first na*n_y states:
        # x_y = [y[t-1]; ...; y[t-na]].
        for i in range(na):
            C[:, i * n_y : (i + 1) * n_y] = self.A_coeffs[i]
        # Input-lag block: x_u = [u[t-1]; ...; u[t-n_u_lags]].
        off = na * n_y
        for j in range(nb):
            lag = delay + j
            if lag == 0:
                continue
            C[:, off + (lag - 1) * n_u : off + lag * n_u] += self.B_coeffs[j]
        # State update: new y[t] enters the first output-lag slot.
        if na > 0:
            A[:n_y, :] = C
            B[:n_y, :] = d_gain
            for i in range(1, na):
                A[i * n_y : (i + 1) * n_y, (i - 1) * n_y : i * n_y] = np.eye(n_y)
        if n_u_lags > 0:
            B[off : off + n_u, :] = np.eye(n_u)
            for k in range(1, n_u_lags):
                A[off + k * n_u : off + (k + 1) * n_u,
                  off + (k - 1) * n_u : off + k * n_u] = np.eye(n_u)
        return StateSpace(A, B, C, d_gain, dt=self.dt)


def build_regression(data: ExperimentData, na, nb, delay, boundaries=None):
    """Assemble the ARX least-squares regression matrices.

    Rows whose lag window would cross a segment boundary (from
    :func:`~repro.sysid.experiment.merge_experiments`) are dropped.
    Returns ``(Phi, Y)`` with one row per usable sample.
    """
    y = data.outputs
    u = data.inputs
    steps = data.n_samples
    start_lag = max(na, delay + nb - 1)
    boundaries = sorted(boundaries or [0])
    segment_starts = np.zeros(steps, dtype=int)
    for b in boundaries:
        segment_starts[b:] = b
    rows_phi = []
    rows_y = []
    for t in range(start_lag, steps):
        if t - start_lag < segment_starts[t]:
            continue  # lag window crosses a run boundary
        lags = [y[t - 1 - i] for i in range(na)]
        lags += [u[t - delay - j] for j in range(nb)]
        rows_phi.append(np.concatenate(lags))
        rows_y.append(y[t])
    if not rows_phi:
        raise ValueError("not enough samples for the requested model orders")
    return np.asarray(rows_phi), np.asarray(rows_y)


def fit_arx(data: ExperimentData, na=4, nb=4, delay=1, boundaries=None, ridge=1e-8):
    """Fit a MIMO ARX model by (ridge-regularized) least squares.

    The default orders (na=4, nb=4, delay=1) match the paper's dimension-4
    Box-Jenkins structure: outputs at T-1..T-4 and inputs at T-1..T-4.
    """
    Phi, Y = build_regression(data, na, nb, delay, boundaries)
    n_y, n_u = data.n_outputs, data.n_inputs
    gram = Phi.T @ Phi + ridge * np.eye(Phi.shape[1])
    theta = np.linalg.solve(gram, Phi.T @ Y)  # (n_params, n_y)
    A_coeffs = np.zeros((na, n_y, n_y))
    B_coeffs = np.zeros((nb, n_y, n_u))
    offset = 0
    for i in range(na):
        A_coeffs[i] = theta[offset : offset + n_y, :].T
        offset += n_y
    for j in range(nb):
        B_coeffs[j] = theta[offset : offset + n_u, :].T
        offset += n_u
    residuals = Y - Phi @ theta
    noise_var = residuals.var(axis=0)
    return ARXModel(A_coeffs, B_coeffs, delay, data.dt, noise_var)
